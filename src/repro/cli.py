"""Command-line interface.

Subcommands::

    repro-failures generate --machine tsubame2 --seed 42 --out t2.csv
    repro-failures analyze t2.csv [--format csv|jsonl] [--lenient]
    repro-failures report [--seed 42] [--out report.txt]
    repro-failures simulate --machine tsubame3 --horizon 2000 \
        --technicians 4
    repro-failures monitor t2.csv [--window 720] [--report-every 200]
    repro-failures monitor --live --machine tsubame2 --horizon 5000
    repro-failures serve --port 8080 --datasets t2=synth:tsubame2:42
    repro-failures store init events.store --machine tsubame3
    repro-failures store append events.store t3.csv
    repro-failures store query events.store --as-of 2014-03-01T00:00:00
    repro-failures trace record --machine tsubame2 --horizon 2000 \
        --out run.trace.jsonl
    repro-failures trace replay run.trace.jsonl [--to-store PATH]
    repro-failures trace whatif run.trace.jsonl --technicians 2
    repro-failures trace info run.trace.jsonl
    repro-failures train simulate --machine a100 --nodes 64 \
        --replications 8
    repro-failures train compare --machines tsubame2,tsubame3,a100,h100

``generate`` writes a calibrated synthetic log; ``analyze`` prints the
headline metrics of an existing log file (format inferred from the
extension, ``--format`` overrides); ``report`` regenerates every table
and figure for both machines; ``simulate`` runs the discrete-event
cluster simulation and prints its operational report; ``monitor``
streams a log (or a live simulation) through the online estimators of
:mod:`repro.stream`, printing rolling metrics, alerts, and — for
replays — an online-vs-batch parity check; ``serve`` runs the
:mod:`repro.serve` analytics service (HTTP/JSON over asyncio, with
result caching, request coalescing, and backpressure — see
docs/SERVING.md); ``store`` manages a persistent columnar event store
with incrementally materialized analytics (``init``/``append``/
``info``/``compact``/``query --as-of`` — see docs/STORAGE.md);
``trace`` records a simulation run as a replayable JSONL trace,
replays one bit-exactly (exit 1 with a first-divergence diagnosis if
it does not reproduce), and re-runs a recorded failure history under
counterfactual repair/checkpoint policies (see docs/REPLAY.md);
``train`` models gang-scheduled LLM training jobs — a single
simulated run or Monte-Carlo ensemble of ETTF/goodput outcomes on one
machine, and the cross-machine comparative study generalizing the
paper's performance-error proportionality (see docs/TRAINING.md).

``--lenient`` (on ``analyze`` and ``monitor``) quarantines malformed
log rows instead of aborting and prints the quarantine summary.  Exit
codes: 0 success, 1 domain error, 2 usage/environment error, 130
interrupted (see docs/ROBUSTNESS.md).
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from datetime import datetime
from pathlib import Path

from repro.core import metrics
from repro.core.breakdown import category_breakdown
from repro.core.report import full_report
from repro.errors import ReproError
from repro.io import KNOWN_FORMATS, read_log, sniff_format, write_log
from repro.machines.specs import known_machines
from repro.sim import ClusterSimulator, RepairPolicy
from repro.synth import GeneratorConfig, TraceGenerator, profile_for

__all__ = [
    "main",
    "build_parser",
    "EXIT_OK",
    "EXIT_ERROR",
    "EXIT_USAGE",
    "EXIT_INTERRUPT",
]


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-failures",
        description="Failure/repair analysis toolkit for multi-GPU "
                    "supercomputers (DSN 2021 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser(
        "generate", help="generate a calibrated synthetic failure log"
    )
    generate.add_argument(
        "--machine", choices=known_machines(), required=True
    )
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--failures", type=int, default=None,
                          help="override the log size")
    generate.add_argument("--out", type=Path, required=True,
                          help="output path (.csv or .jsonl)")

    analyze = sub.add_parser(
        "analyze", help="print headline metrics of a log file"
    )
    analyze.add_argument("path", type=Path)
    analyze.add_argument(
        "--format", choices=KNOWN_FORMATS, default=None,
        help="input format (default: inferred from the file extension)",
    )
    analyze.add_argument(
        "--lenient", action="store_true",
        help="quarantine malformed rows instead of aborting, and "
             "print the quarantine summary",
    )

    report = sub.add_parser(
        "report", help="regenerate every table and figure"
    )
    report.add_argument("--seed", type=int, default=42)
    report.add_argument("--out", type=Path, default=None,
                        help="write the report here instead of stdout")

    simulate = sub.add_parser(
        "simulate", help="run the failure/repair cluster simulation"
    )
    simulate.add_argument(
        "--machine", choices=known_machines(), required=True
    )
    simulate.add_argument("--horizon", type=float, default=2000.0,
                          help="simulated hours")
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--technicians", type=int, default=4)
    simulate.add_argument("--lead-time", type=float, default=168.0,
                          help="spare procurement lead time in hours")
    simulate.add_argument(
        "--replications", type=int, default=1,
        help="run a Monte-Carlo ensemble of this many seeded "
             "replications (1 = single run, the default)",
    )
    simulate.add_argument(
        "--ci", type=float, default=0.95,
        help="confidence level of the ensemble percentile intervals",
    )
    simulate.add_argument(
        "--workers", type=int, default=None,
        help="worker processes for the ensemble (default: "
             "REPRO_WORKERS if set, else the schedulable CPU count; "
             "results are identical at any worker count)",
    )

    compare = sub.add_parser(
        "compare", help="cross-generation comparison of two log files"
    )
    compare.add_argument("older", type=Path,
                         help="older machine's log (.csv or .jsonl)")
    compare.add_argument("newer", type=Path,
                         help="newer machine's log (.csv or .jsonl)")

    fit = sub.add_parser(
        "fit", help="fit TBF/TTR distributions of a log file"
    )
    fit.add_argument("path", type=Path)

    spares = sub.add_parser(
        "spares", help="size a spare-part inventory from a log file"
    )
    spares.add_argument("path", type=Path)
    spares.add_argument("--lead-time", type=float, default=168.0)
    spares.add_argument("--stockout", type=float, default=0.05,
                        help="target stockout probability")

    trends = sub.add_parser(
        "trends", help="reliability-growth and windowed trends of a log"
    )
    trends.add_argument("path", type=Path)
    trends.add_argument("--window", type=float, default=720.0,
                        help="window length in hours (default 30 days)")

    monitor = sub.add_parser(
        "monitor",
        help="stream a log (or live simulation) through the online "
             "failure monitor",
    )
    monitor.add_argument(
        "path", type=Path, nargs="?", default=None,
        help="log file to replay (.csv or .jsonl); omit with --live",
    )
    monitor.add_argument(
        "--format", choices=KNOWN_FORMATS, default=None,
        help="input format (default: inferred from the file extension)",
    )
    monitor.add_argument(
        "--live", action="store_true",
        help="drive a live simulation instead of replaying a file",
    )
    monitor.add_argument(
        "--trace", action="store_true",
        help="treat the path as a recorded simulation trace "
             "(repro-failures trace record) instead of a log file",
    )
    monitor.add_argument(
        "--machine", choices=known_machines(), default=None,
        help="machine to simulate (required with --live)",
    )
    monitor.add_argument("--horizon", type=float, default=5000.0,
                         help="simulated hours for --live")
    monitor.add_argument("--seed", type=int, default=0)
    monitor.add_argument("--window", type=float, default=720.0,
                         help="rolling-window length in hours")
    monitor.add_argument(
        "--report-every", type=int, default=0, metavar="N",
        help="print a rolling snapshot every N failures (0 = only "
             "the final snapshot)",
    )
    monitor.add_argument(
        "--no-parity", action="store_true",
        help="skip the online-vs-batch parity check on replays",
    )
    monitor.add_argument(
        "--lenient", action="store_true",
        help="quarantine malformed log rows instead of aborting, and "
             "print the quarantine summary",
    )
    monitor.add_argument(
        "--quiet-alerts", action="store_true",
        help="do not print alerts as they fire",
    )

    serve = sub.add_parser(
        "serve",
        help="run the HTTP analytics service (see docs/SERVING.md)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080,
                       help="bind port (0 picks an ephemeral port)")
    serve.add_argument(
        "--datasets",
        default="t2=synth:tsubame2:42,t3=synth:tsubame3:42",
        help="comma-separated NAME=PATH, "
             "NAME=synth:MACHINE[:SEED[:FAILURES]], or "
             "NAME=store:PATH specs "
             "(empty string starts with no datasets)",
    )
    serve.add_argument(
        "--workers", type=int, default=None,
        help="worker threads/processes for CPU-bound requests "
             "(default: REPRO_WORKERS if set, else the schedulable "
             "CPU count)",
    )
    serve.add_argument("--cache-size", type=int, default=256,
                       help="result-cache capacity in entries")
    serve.add_argument(
        "--cache-ttl", type=float, default=300.0,
        help="result-cache TTL in seconds (0 = no expiry)",
    )
    serve.add_argument("--max-inflight", type=int, default=8,
                       help="concurrent backend executions")
    serve.add_argument(
        "--max-queue", type=int, default=32,
        help="requests queued beyond --max-inflight before shedding",
    )
    serve.add_argument(
        "--rate-limit", type=float, default=None, metavar="RPS",
        help="per-client requests/second budget (default: unlimited)",
    )
    serve.add_argument("--burst", type=float, default=20.0,
                       help="token-bucket depth for --rate-limit")
    serve.add_argument(
        "--shards", type=int, default=0, metavar="N",
        help="scale-out mode: front N shard worker processes with a "
             "consistent-hashing router (0 = single process)",
    )

    store = sub.add_parser(
        "store",
        help="manage a persistent columnar event store "
             "(see docs/STORAGE.md)",
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)

    store_init = store_sub.add_parser(
        "init", help="create an empty store directory"
    )
    store_init.add_argument("path", type=Path)
    store_init.add_argument(
        "--machine", choices=known_machines(), required=True
    )
    store_init.add_argument(
        "--lenient", action="store_true",
        help="accept categories outside the paper taxonomy",
    )

    store_append = store_sub.add_parser(
        "append", help="append a log file's events to a store"
    )
    store_append.add_argument("path", type=Path)
    store_append.add_argument("log", type=Path,
                              help="log file to append (.csv or .jsonl)")
    store_append.add_argument(
        "--format", choices=KNOWN_FORMATS, default=None,
        help="input format (default: inferred from the file extension)",
    )
    store_append.add_argument(
        "--reindex", action="store_true",
        help="renumber the batch's record ids after the store's "
             "committed ids instead of rejecting collisions",
    )

    store_info = store_sub.add_parser(
        "info", help="print a store's identity, lineage, and health"
    )
    store_info.add_argument("path", type=Path)

    store_compact = store_sub.add_parser(
        "compact", help="merge a store's segments into one"
    )
    store_compact.add_argument("path", type=Path)

    store_query = store_sub.add_parser(
        "query",
        help="print headline metrics from the materialized views",
    )
    store_query.add_argument("path", type=Path)
    store_query.add_argument(
        "--as-of", type=datetime.fromisoformat, default=None,
        metavar="ISO8601",
        help="query the store's state as of this event time "
             "(time travel)",
    )

    trace = sub.add_parser(
        "trace",
        help="record, replay, and counterfactually re-run simulation "
             "traces (see docs/REPLAY.md)",
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)

    trace_record = trace_sub.add_parser(
        "record", help="run a simulation and record it as a trace"
    )
    trace_record.add_argument(
        "--machine", choices=known_machines(), required=True
    )
    trace_record.add_argument("--horizon", type=float, default=2000.0,
                              help="simulated hours")
    trace_record.add_argument("--seed", type=int, default=0)
    trace_record.add_argument("--technicians", type=int, default=4)
    trace_record.add_argument(
        "--lead-time", type=float, default=168.0,
        help="spare procurement lead time in hours",
    )
    trace_record.add_argument(
        "--intensity", type=float, default=1.0,
        help="failure-rate multiplier",
    )
    trace_record.add_argument(
        "--health-tests", type=float, default=0.0, metavar="P",
        help="probability a multi-GPU failure is contained to one GPU",
    )
    trace_record.add_argument(
        "--workload", action="store_true",
        help="run the batch scheduler under a default synthetic "
             "workload",
    )
    trace_record.add_argument(
        "--checkpoint-interval", type=float, default=None, metavar="H",
        help="checkpoint interval in hours (enables checkpointing; "
             "requires --workload)",
    )
    trace_record.add_argument(
        "--checkpoint-cost", type=float, default=0.2, metavar="H",
        help="cost of one checkpoint in hours",
    )
    trace_record.add_argument("--out", type=Path, required=True,
                              help="trace output path (.jsonl)")

    trace_replay = trace_sub.add_parser(
        "replay",
        help="re-execute a trace and verify it reproduces bit-exactly",
    )
    trace_replay.add_argument("path", type=Path)
    trace_replay.add_argument(
        "--to-store", type=Path, default=None, metavar="STORE",
        help="persist the replayed failure history to this event "
             "store (created if missing)",
    )

    trace_whatif = trace_sub.add_parser(
        "whatif",
        help="replay a recorded failure history under different "
             "operational policies and diff the outcomes",
    )
    trace_whatif.add_argument("path", type=Path)
    trace_whatif.add_argument(
        "--technicians", type=int, default=None,
        help="override the number of concurrent repairs",
    )
    trace_whatif.add_argument(
        "--lead-time", type=float, default=None,
        help="override the spare procurement lead time in hours",
    )
    trace_whatif.add_argument(
        "--spares", default=None, metavar="CAT=N[,CAT=N...]",
        help="override the starting spare inventory",
    )
    trace_whatif.add_argument(
        "--checkpoint-interval", type=float, default=None, metavar="H",
        help="override the checkpoint interval in hours",
    )
    trace_whatif.add_argument(
        "--backfill-depth", type=int, default=None,
        help="override the scheduler's backfill depth",
    )
    trace_whatif.add_argument(
        "--all-fields", action="store_true",
        help="print unchanged outcome fields too",
    )
    trace_whatif.add_argument(
        "--json", action="store_true",
        help="emit the diff as JSON instead of text",
    )

    trace_info = trace_sub.add_parser(
        "info", help="summarize a trace file"
    )
    trace_info.add_argument("path", type=Path)
    trace_info.add_argument(
        "--lenient", action="store_true",
        help="quarantine malformed trace lines instead of aborting, "
             "and print the quarantine summary",
    )

    train = sub.add_parser(
        "train",
        help="gang-scheduled LLM training reliability: per-machine "
             "ETTF ensembles and the cross-machine study "
             "(see docs/TRAINING.md)",
    )
    train_sub = train.add_subparsers(dest="train_command", required=True)

    train_simulate = train_sub.add_parser(
        "simulate",
        help="simulate a gang-scheduled training job on one machine",
    )
    train_simulate.add_argument(
        "--machine", choices=known_machines(), required=True
    )
    train_simulate.add_argument(
        "--nodes", type=int, default=64,
        help="gang size in nodes (clamped to the fleet)",
    )
    train_simulate.add_argument(
        "--step-hours", type=float, default=0.01, metavar="H",
        help="duration of one synchronous training step",
    )
    train_simulate.add_argument(
        "--detection-delay", type=float, default=0.05, metavar="H",
        help="hours between a member failure and the restart attempt",
    )
    train_simulate.add_argument(
        "--total-work", type=float, default=None, metavar="H",
        help="total useful work the job needs; default runs "
             "open-ended to the horizon",
    )
    train_simulate.add_argument("--horizon", type=float, default=720.0,
                                help="simulated hours")
    train_simulate.add_argument("--seed", type=int, default=0)
    train_simulate.add_argument(
        "--intensity", type=float, default=1.0,
        help="failure-rate multiplier",
    )
    train_simulate.add_argument(
        "--checkpoint-interval", type=float, default=None, metavar="H",
        help="checkpoint interval in hours; default is the "
             "Young/Daly optimum for the gang's MTBF",
    )
    train_simulate.add_argument(
        "--checkpoint-cost", type=float, default=0.25, metavar="H",
        help="cost of one checkpoint in hours",
    )
    train_simulate.add_argument(
        "--restart-cost", type=float, default=0.5, metavar="H",
        help="hours to reload the last checkpoint on restart",
    )
    train_simulate.add_argument(
        "--replications", type=int, default=1,
        help="Monte-Carlo ensemble size (1 = single run)",
    )
    train_simulate.add_argument(
        "--workers", type=int, default=None,
        help="worker processes for the ensemble (default: auto)",
    )
    train_simulate.add_argument(
        "--record", type=Path, default=None, metavar="PATH",
        help="record the (single) run as a replayable trace",
    )
    train_simulate.add_argument(
        "--json", action="store_true",
        help="emit the result as JSON instead of text",
    )

    train_compare = train_sub.add_parser(
        "compare",
        help="cross-machine training study: synth -> sim -> analyze, "
             "generalizing the paper's performance-error "
             "proportionality",
    )
    train_compare.add_argument(
        "--machines", default=",".join(known_machines()),
        metavar="M[,M...]",
        help="comma-separated machine names (default: all registered)",
    )
    train_compare.add_argument(
        "--nodes", type=int, default=64,
        help="gang size in nodes (clamped per machine)",
    )
    train_compare.add_argument("--horizon", type=float, default=720.0,
                               help="simulated hours per replication")
    train_compare.add_argument(
        "--replications", type=int, default=8,
        help="Monte-Carlo replications per machine",
    )
    train_compare.add_argument("--seed", type=int, default=0)
    train_compare.add_argument(
        "--checkpoint-cost", type=float, default=0.25, metavar="H",
        help="cost of one checkpoint in hours",
    )
    train_compare.add_argument(
        "--workers", type=int, default=None,
        help="worker processes per ensemble (default: auto)",
    )
    train_compare.add_argument(
        "--json", action="store_true",
        help="emit the study as JSON instead of a table",
    )
    return parser


def _read_log(path: Path, format: str | None = None):
    return read_log(path, format=format)


def _cmd_generate(args: argparse.Namespace) -> int:
    profile = profile_for(args.machine)
    config = GeneratorConfig(seed=args.seed, num_failures=args.failures)
    log = TraceGenerator(profile, config).generate()
    write_log(log, args.out, format=sniff_format(args.out) or "csv")
    print(f"wrote {len(log)} failures for {args.machine} to {args.out}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    if args.lenient:
        report = read_log(
            args.path, format=args.format, on_error="collect"
        )
        for line in report.summary_lines():
            print(line)
        log = report.log
    else:
        log = _read_log(args.path, format=args.format)
    breakdown = category_breakdown(log)
    print(f"machine:          {log.machine}")
    print(f"failures:         {len(log)}")
    print(f"window:           {log.window_start} .. {log.window_end}")
    print(f"MTBF:             {metrics.mtbf(log):.1f} h")
    print(f"MTTR:             {metrics.mttr(log):.1f} h")
    print(f"dominant:         {breakdown.dominant_category} "
          f"({100 * breakdown.shares[0].share:.1f}%)")
    print("top categories:")
    for entry in breakdown.top(5):
        print(f"  {entry.category:<16} {entry.count:>5} "
              f"({100 * entry.share:.2f}%)")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.synth import generate_log

    t2 = generate_log("tsubame2", seed=args.seed)
    t3 = generate_log("tsubame3", seed=args.seed)
    text = full_report(t2, t3)
    if args.out is not None:
        args.out.write_text(text + "\n")
        print(f"wrote report to {args.out}")
    else:
        print(text)
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    if args.replications > 1:
        from repro.parallel import default_processes
        from repro.sim.montecarlo import run_replications

        workers = (
            args.workers if args.workers is not None
            else default_processes()
        )
        ensemble = run_replications(
            args.machine,
            replications=args.replications,
            horizon_hours=args.horizon,
            seed=args.seed,
            ci=args.ci,
            max_workers=workers,
            num_technicians=args.technicians,
            spare_lead_time_hours=args.lead_time,
        )
        print(ensemble.summary())
        return 0
    simulator = ClusterSimulator(
        args.machine,
        repair_policy=RepairPolicy(
            num_technicians=args.technicians,
            spare_lead_time_hours=args.lead_time,
        ),
        seed=args.seed,
    )
    report = simulator.run(args.horizon)
    print(f"machine:            {report.machine}")
    print(f"horizon:            {report.horizon_hours:.0f} h")
    print(f"failures injected:  {report.failures_injected}")
    print(f"repairs completed:  {report.repairs_completed}")
    print(f"effective MTTR:     {report.effective_mttr_hours:.1f} h")
    print(f"  waiting share:    {100 * report.waiting_share_of_mttr:.1f}%")
    print(f"availability:       {100 * report.availability:.3f}%")
    print(f"spare stockouts:    {report.spare_stockouts}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.core.compare import compare_generations

    older = _read_log(args.older)
    newer = _read_log(args.newer)
    comparison = compare_generations(older, newer)
    for line in comparison.summary_lines():
        print(line)
    return 0


def _cmd_fit(args: argparse.Namespace) -> int:
    from repro.core.metrics import tbf_series_hours, ttr_series_hours
    from repro.stats.fitting import fit_best

    log = _read_log(args.path)
    tbf = fit_best([gap for gap in tbf_series_hours(log) if gap > 0])
    ttr = fit_best([t for t in ttr_series_hours(log) if t > 0])
    for label, fit in (("TBF", tbf), ("TTR", ttr)):
        shape = fit.shape_parameter()
        shape_text = f", shape {shape:.3f}" if shape is not None else ""
        print(f"{label}: {fit.name}{shape_text}, mean "
              f"{fit.mean():.1f} h, KS {fit.ks_statistic:.3f} "
              f"(p={fit.ks_pvalue:.3f}, n={fit.n})")
    return 0


def _cmd_spares(args: argparse.Namespace) -> int:
    from repro.predict.provisioning import plan_spares

    log = _read_log(args.path)
    plan = plan_spares(
        log,
        lead_time_hours=args.lead_time,
        target_stockout_probability=args.stockout,
    )
    print(f"machine: {plan.machine}; lead time "
          f"{plan.lead_time_hours:.0f} h; target stockout "
          f"{100 * plan.target_stockout_probability:.1f}%")
    for entry in plan.entries:
        print(f"  {entry.category:<16} stock {entry.recommended_stock:>3} "
              f"(demand {entry.lead_time_demand:.2f}, "
              f"P(stockout) {100 * entry.stockout_probability:.2f}%)")
    print(f"total spares: {plan.total_stock}")
    return 0


def _cmd_trends(args: argparse.Namespace) -> int:
    from repro.core.trends import crow_amsaa_fit, windowed_mtbf, windowed_mttr

    log = _read_log(args.path)
    growth = crow_amsaa_fit(log)
    direction = "improving" if growth.is_improving else "deteriorating"
    print(f"Crow-AMSAA: beta {growth.beta:.3f} ({direction}), "
          f"lambda {growth.lam:.4g}, n={growth.n}")
    print(f"{'window (h)':<22} {'failures':>8} {'MTBF (h)':>10} "
          f"{'MTTR (h)':>10}")
    mtbf_points = windowed_mtbf(log, args.window)
    mttr_points = windowed_mttr(log, args.window)
    for mtbf_point, mttr_point in zip(mtbf_points, mttr_points):
        window = (f"{mtbf_point.window_start_hours:.0f}-"
                  f"{mtbf_point.window_end_hours:.0f}")
        mttr_text = (
            f"{mttr_point.value_hours:>10.1f}"
            if mttr_point.num_failures else f"{'-':>10}"
        )
        print(f"{window:<22} {mtbf_point.num_failures:>8} "
              f"{mtbf_point.value_hours:>10.1f} {mttr_text}")
    return 0


def _parity_lines(monitor, log) -> list[str]:
    """Online-vs-batch comparison for a replayed log."""
    from repro.core.metrics import (
        mtbf,
        mtbf_span,
        mttr,
        tbf_series_hours,
    )

    snapshot = monitor.snapshot()
    lines = ["parity check (online vs batch):"]

    def relative(online: float | None, batch: float) -> str:
        if online is None or batch == 0:
            return "-"
        return f"{100.0 * (online - batch) / batch:+.3f}%"

    pairs = [
        ("MTBF (gap mean)", snapshot.mtbf_hours, mtbf(log)),
        ("MTBF (span)", snapshot.mtbf_span_hours, mtbf_span(log)),
        ("MTTR", snapshot.mttr_hours, mttr(log)),
    ]
    for label, online, batch in pairs:
        online_text = f"{online:10.3f}" if online is not None else "-"
        lines.append(
            f"  {label:<16} {online_text} vs {batch:10.3f} h  "
            f"({relative(online, batch)})"
        )
    import bisect
    import math

    gaps = sorted(tbf_series_hours(log))
    epsilon = monitor.sketch_epsilon
    for q in (0.5, 0.99):
        estimate = monitor.tbf_quantile(q)
        if estimate is None:
            continue
        # The sketch targets rank ceil(q*n); the estimate's occurrences
        # span 1-based ranks lo+1 .. hi in the sorted batch series.
        target_rank = max(1, math.ceil(q * len(gaps)))
        lo = bisect.bisect_left(gaps, estimate)
        hi = bisect.bisect_right(gaps, estimate)
        if lo + 1 <= target_rank <= hi:
            rank_error = 0
        else:
            rank_error = min(
                abs(target_rank - (lo + 1)), abs(target_rank - hi)
            )
        lines.append(
            f"  TBF p{int(q * 100):<14} {estimate:10.3f} h  "
            f"(rank error {rank_error} <= "
            f"{epsilon * len(gaps):.1f} allowed)"
        )
    return lines


def _cmd_monitor(args: argparse.Namespace) -> int:
    from repro.stream import FailureMonitor, FileSource, PrintSink

    if args.live == (args.path is not None):
        print(
            "error: pass a log file to replay, or --live with "
            "--machine (not both)",
            file=sys.stderr,
        )
        return 2

    sinks = [] if args.quiet_alerts else [PrintSink()]
    monitor = FailureMonitor(window_hours=args.window, sinks=sinks)

    if args.live:
        if args.machine is None:
            print("error: --live requires --machine", file=sys.stderr)
            return 2
        simulator = ClusterSimulator(args.machine, seed=args.seed)
        monitor.attach(simulator.engine)
        report = simulator.run(args.horizon)
        monitor.finalize(args.horizon)
        print(f"live simulation: {args.machine}, "
              f"{report.horizon_hours:.0f} h horizon, "
              f"{report.failures_injected} failures injected")
        for line in monitor.snapshot().format_lines():
            print(line)
        return 0

    if args.trace:
        from repro.stream import TraceSource

        source = TraceSource(
            args.path,
            include_repairs=True,
            on_error="quarantine" if args.lenient else "raise",
        )
        if source.quarantined:
            print(f"quarantined {len(source.quarantined)} malformed "
                  f"trace lines")
    else:
        source = FileSource(
            args.path,
            format=args.format,
            on_error="collect" if args.lenient else "raise",
        )
        if source.read_report is not None:
            for line in source.read_report.summary_lines():
                print(line)
    every = args.report_every
    for event in source:
        monitor.observe(event)
        if every and event.is_failure and (
            monitor.failures_seen % every == 0
        ):
            for line in monitor.snapshot().format_lines():
                print(line)
    monitor.finalize(source.span_hours)
    print(f"replayed {source.path} ({source.machine}, "
          f"{monitor.failures_seen} failures)")
    for line in monitor.snapshot().format_lines():
        print(line)
    # Parity needs the batch log; a trace replay has only events.
    if not args.no_parity and not args.trace:
        for line in _parity_lines(monitor, source.log):
            print(line)
    return 0


async def _serve_async(args: argparse.Namespace) -> int:
    """Run the service until stopped; 130 on SIGINT/SIGTERM."""
    import signal

    from repro.serve import (
        DatasetRegistry,
        ReproApp,
        ReproServer,
        register_from_spec,
    )

    registry = DatasetRegistry()
    for spec in filter(None, args.datasets.split(",")):
        dataset = register_from_spec(registry, spec.strip())
        print(f"registered dataset {dataset.name!r}: "
              f"{dataset.source} "
              f"({dataset.describe()['failures']} failures)")

    app = ReproApp(
        registry,
        workers=args.workers,
        cache_size=args.cache_size,
        cache_ttl_seconds=args.cache_ttl or None,
        max_inflight=args.max_inflight,
        max_queue=args.max_queue,
        rate_per_second=args.rate_limit,
        burst=args.burst,
    )
    server = ReproServer(app, host=args.host, port=args.port)
    await server.start()
    print(f"serving on http://{args.host}:{server.port} "
          f"(Ctrl-C to stop)", flush=True)

    loop = asyncio.get_running_loop()
    interrupted = asyncio.Event()
    installed: list[signal.Signals] = []
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, interrupted.set)
            installed.append(signum)
        except (NotImplementedError, RuntimeError):
            pass
    try:
        waiters = [
            asyncio.ensure_future(interrupted.wait()),
            asyncio.ensure_future(server.wait_stopped()),
        ]
        done, pending = await asyncio.wait(
            waiters, return_when=asyncio.FIRST_COMPLETED
        )
        for task in pending:
            task.cancel()
        if interrupted.is_set():
            print("shutting down (draining in-flight requests)...",
                  flush=True)
            await server.stop()
            return EXIT_INTERRUPT
        return EXIT_OK
    finally:
        for signum in installed:
            loop.remove_signal_handler(signum)


async def _serve_sharded_async(args: argparse.Namespace) -> int:
    """Run the router + shard fleet until stopped; 130 on signals."""
    import signal

    from repro.serve import ReproServer, RouterApp

    specs = tuple(
        spec.strip() for spec in filter(None, args.datasets.split(","))
    )
    router = RouterApp(
        args.shards,
        specs,
        host=args.host,
        workers=args.workers,
        cache_size=args.cache_size,
        cache_ttl_seconds=args.cache_ttl or None,
        max_inflight=args.max_inflight,
        max_queue=args.max_queue,
        rate_per_second=args.rate_limit,
        burst=args.burst,
    )
    await router.start()
    for index in sorted(router._shards):
        shard = router._shards[index]
        print(f"shard {index} ready on port {shard.port} "
              f"(pid {shard.process.pid})", flush=True)
    server = ReproServer(router, host=args.host, port=args.port)
    try:
        await server.start()
    except BaseException:
        await router.close()
        raise
    print(f"routing http://{args.host}:{server.port} across "
          f"{args.shards} shards (Ctrl-C to stop)", flush=True)

    loop = asyncio.get_running_loop()
    interrupted = asyncio.Event()
    installed: list[signal.Signals] = []
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, interrupted.set)
            installed.append(signum)
        except (NotImplementedError, RuntimeError):
            pass
    try:
        waiters = [
            asyncio.ensure_future(interrupted.wait()),
            asyncio.ensure_future(server.wait_stopped()),
        ]
        done, pending = await asyncio.wait(
            waiters, return_when=asyncio.FIRST_COMPLETED
        )
        for task in pending:
            task.cancel()
        if interrupted.is_set():
            print("shutting down (draining router and shards)...",
                  flush=True)
            await server.stop()
            return EXIT_INTERRUPT
        return EXIT_OK
    finally:
        for signum in installed:
            loop.remove_signal_handler(signum)


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.errors import ValidationError

    if args.shards < 0:
        raise ValidationError(
            f"--shards must be >= 0, got {args.shards}"
        )
    if args.shards:
        return asyncio.run(_serve_sharded_async(args))
    return asyncio.run(_serve_async(args))


def _store_info_lines(info: dict) -> list[str]:
    lines = [
        f"machine:          {info['machine']}",
        f"rows:             {info['rows']}",
        f"segments:         {info['segments']} "
        f"(generation {info['generation']}, "
        f"{info['appends']} appends)",
        f"schema version:   {info['schema_version']}",
        f"strict taxonomy:  {info['strict_taxonomy']}",
        f"fingerprint:      {info['fingerprint']}",
    ]
    if "window_start" in info:
        lines.append(f"window:           {info['window_start']} .. "
                     f"{info['window_end']}")
    if "watermark" in info:
        lines.append(f"watermark:        {info['watermark']}")
    if "as_of" in info:
        lines.append(f"as of:            {info['as_of']}")
    if info["recovered"]:
        lines.append("recovered:        yes (a torn tail was dropped)")
    if info["quarantined"]:
        lines.append("quarantined:      "
                     + ", ".join(info["quarantined"]))
    return lines


def _cmd_store(args: argparse.Namespace) -> int:
    from repro.store import init_store, open_store

    if args.store_command == "init":
        store = init_store(
            args.path, args.machine,
            strict_taxonomy=not args.lenient,
        )
        print(f"initialized {args.machine} store at {args.path}")
        del store
        return 0

    if args.store_command == "append":
        log = _read_log(args.log, format=args.format)
        store = open_store(args.path)
        summary = store.append(log, reindex=args.reindex)
        print(f"appended {summary['rows']} failures to {args.path} "
              f"({summary['rows_total']} total, "
              f"segment {summary['segment']})")
        return 0

    if args.store_command == "info":
        for line in _store_info_lines(open_store(args.path).info()):
            print(line)
        return 0

    if args.store_command == "compact":
        summary = open_store(args.path).compact()
        if not summary["compacted"]:
            print(f"nothing to compact: {summary['reason']}")
            return 0
        print(f"compacted {summary['segments']} segments into "
              f"{summary['segment']} "
              f"(generation {summary['generation']}, "
              f"{summary['rows']} rows)")
        return 0

    # query: headline metrics straight from the materialized views —
    # O(1) in the store's size for a full handle.
    store = open_store(args.path, as_of=args.as_of)
    payloads = store.payloads()
    info = store.info()
    when = info.get("as_of", "latest")
    print(f"machine:          {store.machine}")
    print(f"state:            {when} ({store.rows} failures)")
    if "window_start" in info:
        print(f"window:           {info['window_start']} .. "
              f"{info['window_end']}")
    metrics_payload = payloads.get("metrics")
    if metrics_payload is not None:
        print(f"MTBF:             {metrics_payload['mtbf_hours']:.1f} h")
        print(f"MTTR:             {metrics_payload['mttr_hours']:.1f} h")
        print(f"availability:     "
              f"{100 * metrics_payload['availability']:.3f}%")
    breakdown_payload = payloads.get("breakdown")
    if breakdown_payload is not None:
        print(f"dominant:         "
              f"{breakdown_payload['dominant_category']}")
        print("top categories:")
        for entry in breakdown_payload["categories"][:5]:
            print(f"  {entry['category']:<16} {entry['count']:>5} "
                  f"({100 * entry['share']:.2f}%)")
    return 0


def _parse_spares(text: str) -> dict[str, int]:
    from repro.errors import ValidationError

    spares: dict[str, int] = {}
    for item in filter(None, text.split(",")):
        name, _, count = item.partition("=")
        if not name or not count:
            raise ValidationError(
                f"--spares entries must be CAT=N, got {item!r}"
            )
        try:
            spares[name.strip()] = int(count)
        except ValueError:
            raise ValidationError(
                f"--spares count for {name.strip()!r} must be an "
                f"integer, got {count!r}"
            ) from None
    return spares


def _trace_report_lines(report: dict) -> list[str]:
    lines = [
        f"failures injected:  {report['failures_injected']}",
        f"repairs completed:  {report['repairs_completed']}",
        f"effective MTTR:     {report['effective_mttr_hours']:.1f} h",
        f"availability:       {100 * report['availability']:.3f}%",
        f"spare stockouts:    {report['spare_stockouts']}",
    ]
    scheduler = report.get("scheduler")
    if scheduler is not None:
        lines.append(
            f"jobs:               {scheduler['jobs_completed']}"
            f"/{scheduler['jobs_submitted']} completed, "
            f"{scheduler['jobs_killed_by_failures']} killed"
        )
    return lines


def _cmd_trace(args: argparse.Namespace) -> int:
    import json as _json

    from repro.trace import (
        WhatIf,
        read_trace,
        record_run,
        replay,
        report_to_dict,
        run_whatif,
        write_trace,
    )

    if args.trace_command == "record":
        from repro.errors import ValidationError
        from repro.sim import CheckpointPolicy, WorkloadConfig

        checkpoint = None
        if args.checkpoint_interval is not None:
            if not args.workload:
                raise ValidationError(
                    "--checkpoint-interval requires --workload"
                )
            checkpoint = CheckpointPolicy(
                interval_hours=args.checkpoint_interval,
                cost_hours=args.checkpoint_cost,
            )
        simulator = ClusterSimulator(
            args.machine,
            repair_policy=RepairPolicy(
                num_technicians=args.technicians,
                spare_lead_time_hours=args.lead_time,
            ),
            seed=args.seed,
            intensity=args.intensity,
            health_test_effectiveness=args.health_tests,
            workload=WorkloadConfig() if args.workload else None,
            checkpoint_policy=checkpoint,
        )
        report, trace = record_run(simulator, args.horizon)
        write_trace(trace, args.out)
        print(f"recorded {args.machine} x {args.horizon:.0f} h to "
              f"{args.out} ({len(trace.events)} events, "
              f"{report.failures_injected} failures)")
        return 0

    if args.trace_command == "replay":
        trace, _ = read_trace(args.path)
        result = replay(trace)  # raises ReplayDivergenceError on drift
        report = report_to_dict(result.report)
        print(f"replayed {args.path} bit-exactly "
              f"({len(result.trace.events)} events)")
        for line in _trace_report_lines(report):
            print(line)
        if args.to_store is not None:
            summary = result.simulator.to_store(args.to_store)
            print(f"stored {summary['rows']} failures in "
                  f"{args.to_store} ({summary['rows_total']} total)")
        return 0

    if args.trace_command == "whatif":
        trace, _ = read_trace(args.path)
        overrides = WhatIf(
            num_technicians=args.technicians,
            spare_lead_time_hours=args.lead_time,
            initial_spares=(
                _parse_spares(args.spares)
                if args.spares is not None
                else None
            ),
            checkpoint_interval_hours=args.checkpoint_interval,
            backfill_depth=args.backfill_depth,
        )
        result = run_whatif(trace, overrides)
        if args.json:
            print(_json.dumps(result.diff.to_dict(), indent=2,
                              sort_keys=True))
        else:
            print(f"counterfactual replay of {args.path}:")
            print(result.diff.format_text(
                changed_only=not args.all_fields
            ))
        return 0

    # info
    trace, quarantined = read_trace(
        args.path, on_error="quarantine" if args.lenient else "raise"
    )
    config = trace.config
    counts: dict[str, int] = {}
    for event in trace.events:
        counts[event["t"]] = counts.get(event["t"], 0) + 1
    print(f"machine:            {config.machine}")
    print(f"horizon:            {trace.horizon_hours:.0f} h")
    print(f"seed:               {config.seed}")
    if trace.events:
        breakdown = ", ".join(
            f"{kind}={counts[kind]}" for kind in sorted(counts)
        )
        print(f"events:             {len(trace.events)} ({breakdown})")
    else:
        print("events:             0")
    print(f"workload:           "
          f"{'yes' if config.workload is not None else 'no'}")
    print(f"checkpointing:      "
          f"{'yes' if config.checkpoint_policy is not None else 'no'}")
    if config.train is not None:
        print(f"training gang:      {config.train.num_nodes} nodes")
    if trace.report is not None:
        for line in _trace_report_lines(trace.report):
            print(line)
    if quarantined:
        print(f"quarantined lines:  {len(quarantined)}")
        for entry in quarantined[:5]:
            print(f"  line {entry.line_number}: {entry.reason}")
    return 0


def _train_stats_lines(stats) -> list[str]:
    """Single-run TrainStats rendered for the terminal."""
    lines = [
        f"gang nodes:         {stats.job_nodes}",
        f"ETTR:               {stats.ettr:.4f}",
        f"work committed:     {stats.work_committed_hours:.2f} h "
        f"({stats.steps_committed} steps)",
        f"interrupts:         {stats.interrupts} "
        f"({stats.interrupts_per_day:.3f}/day)",
        f"restarts:           {stats.restarts}",
        f"lost work:          {stats.lost_work_hours:.2f} h",
        f"stall:              {stats.stall_hours:.2f} h",
        f"restart overhead:   {stats.restart_overhead_hours:.2f} h",
        f"checkpoint cost:    {stats.checkpoint_overhead_hours:.2f} h",
        f"blast radius:       {stats.blast_radius_node_hours:.1f} "
        f"node-hours",
    ]
    if stats.completed:
        lines.append(
            f"completed at:       {stats.completed_at_hours:.2f} h"
        )
    if stats.lost_work_by_category:
        lines.append("lost work by category:")
        ranked = sorted(
            stats.lost_work_by_category.items(),
            key=lambda item: (-item[1], item[0]),
        )
        lines.extend(
            f"  {category:<16} {hours:>8.2f} h"
            for category, hours in ranked[:8]
        )
    return lines


def _cmd_train(args: argparse.Namespace) -> int:
    import json as _json

    from repro.errors import ValidationError
    from repro.machines.specs import get_machine
    from repro.sim import CheckpointPolicy, young_daly_policy
    from repro.train import (
        TrainingJobConfig,
        compare_training,
        run_train_replications,
        train_ensemble_payload,
    )

    if args.train_command == "compare":
        machines = tuple(
            name.strip()
            for name in args.machines.split(",")
            if name.strip()
        )
        comparison = compare_training(
            machines,
            gang_nodes=args.nodes,
            horizon_hours=args.horizon,
            replications=args.replications,
            seed=args.seed,
            checkpoint_cost_hours=args.checkpoint_cost,
            max_workers=args.workers,
        )
        if args.json:
            print(_json.dumps(comparison.to_dict(), indent=2,
                              sort_keys=True))
            return 0
        print(comparison.table())
        if "tsubame2" in machines and "tsubame3" in machines:
            ratio = comparison.proportionality_ratio(
                "tsubame3", "tsubame2"
            )
            print(
                f"tsubame3/tsubame2 proportionality: "
                f"goodput x{ratio['goodput_pflops']:.2f}, "
                f"PFLOP-hours/interrupt "
                f"x{ratio['pflop_hours_between_interrupts']:.2f}"
            )
        return 0

    # simulate
    spec = get_machine(args.machine)
    gang = min(args.nodes, spec.num_nodes)
    if args.checkpoint_interval is not None:
        policy = CheckpointPolicy(
            interval_hours=args.checkpoint_interval,
            cost_hours=args.checkpoint_cost,
            restart_cost_hours=args.restart_cost,
        )
    else:
        # Young/Daly at the gang's MTBF, estimated from the machine's
        # reported failure rate thinned by gang / fleet.
        system_mtbf = (
            spec.log_span_hours
            / (spec.reported_failures * args.intensity)
        )
        job_mtbf = system_mtbf * spec.num_nodes / gang
        policy = young_daly_policy(
            args.checkpoint_cost, job_mtbf,
            restart_cost_hours=args.restart_cost,
        )
    train = TrainingJobConfig(
        num_nodes=gang,
        step_time_hours=args.step_hours,
        detection_delay_hours=args.detection_delay,
        total_work_hours=args.total_work,
    )
    if args.record is not None and args.replications != 1:
        raise ValidationError("--record implies --replications 1")
    if args.replications > 1:
        ensemble = run_train_replications(
            args.machine,
            replications=args.replications,
            horizon_hours=args.horizon,
            checkpoint_policy=policy,
            train=train,
            seed=args.seed,
            intensity=args.intensity,
            max_workers=args.workers,
        )
        if args.json:
            print(_json.dumps(train_ensemble_payload(ensemble),
                              indent=2, sort_keys=True))
        else:
            print(ensemble.summary())
        return 0
    simulator = ClusterSimulator(
        args.machine,
        seed=args.seed,
        intensity=args.intensity,
        checkpoint_policy=policy,
        train=train,
    )
    if args.record is not None:
        from repro.trace import record_run, write_trace

        report, trace = record_run(simulator, args.horizon)
        write_trace(trace, args.record)
        print(f"recorded {args.machine} x {args.horizon:.0f} h to "
              f"{args.record} ({len(trace.events)} events, "
              f"{report.failures_injected} failures)")
    else:
        report = simulator.run(args.horizon)
    stats = report.train
    if args.json:
        payload = {
            "machine": args.machine,
            "horizon_hours": args.horizon,
            "checkpoint_interval_hours": policy.interval_hours,
            "ettr": stats.ettr,
            "interrupts": stats.interrupts,
            "restarts": stats.restarts,
            "steps_committed": stats.steps_committed,
            "work_committed_hours": stats.work_committed_hours,
            "lost_work_hours": stats.lost_work_hours,
            "lost_work_by_category": stats.lost_work_by_category,
            "stall_hours": stats.stall_hours,
            "restart_overhead_hours": stats.restart_overhead_hours,
            "checkpoint_overhead_hours": (
                stats.checkpoint_overhead_hours
            ),
            "blast_radius_node_hours": stats.blast_radius_node_hours,
            "completed": stats.completed,
            "completed_at_hours": stats.completed_at_hours,
        }
        print(_json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"machine:            {args.machine}")
    print(f"horizon:            {args.horizon:.0f} h")
    print(f"checkpoint every:   {policy.interval_hours:.2f} h "
          f"(cost {policy.cost_hours:.2f} h, restart "
          f"{policy.restart_cost_hours:.2f} h)")
    for line in _train_stats_lines(stats):
        print(line)
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "analyze": _cmd_analyze,
    "report": _cmd_report,
    "simulate": _cmd_simulate,
    "compare": _cmd_compare,
    "fit": _cmd_fit,
    "spares": _cmd_spares,
    "trends": _cmd_trends,
    "monitor": _cmd_monitor,
    "serve": _cmd_serve,
    "store": _cmd_store,
    "trace": _cmd_trace,
    "train": _cmd_train,
}


#: Exit codes: 0 ok, 1 domain error (ReproError), 2 usage/environment
#: (unreadable path, permissions, full disk), 130 interrupted
#: (128 + SIGINT, the shell convention).
EXIT_OK = 0
EXIT_ERROR = 1
EXIT_USAGE = 2
EXIT_INTERRUPT = 130


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code.

    Failures map to clean one-line stderr messages, never raw
    tracebacks: :class:`~repro.errors.ReproError` exits 1,
    environment problems (``OSError``: missing/unreadable paths, full
    disks) exit 2, and Ctrl-C exits 130.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_ERROR
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_USAGE
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return EXIT_INTERRUPT


if __name__ == "__main__":
    sys.exit(main())
