"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by this library derive from :class:`ReproError`, so
callers can catch a single base class at an API boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ValidationError(ReproError):
    """A record, log, or configuration value failed validation."""


class TaxonomyError(ReproError):
    """An unknown failure category, class, or root locus was referenced."""


class MachineError(ReproError):
    """An unknown machine was referenced or a topology is inconsistent."""


class CalibrationError(ReproError):
    """A synthetic-trace profile could not be calibrated to its targets."""


class AnalysisError(ReproError):
    """An analysis was asked to operate on data it cannot interpret."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class SerializationError(ReproError):
    """A failure log could not be read from or written to disk."""


class SweepError(ReproError):
    """A multi-seed sweep failed: a work item raised, or the worker
    pool died and the unfinished tail could not be recovered."""


class StreamError(ReproError):
    """A live event stream violated an invariant (e.g. time went
    backwards) or a streaming component was misconfigured."""


class ServeError(ReproError):
    """The analytics service was misconfigured (bad dataset spec,
    unknown dataset handle, invalid server parameters)."""


class TraceError(ReproError):
    """An execution trace could not be recorded, parsed, or replayed
    (unknown schema, missing header, malformed line)."""


class ReplayDivergenceError(TraceError):
    """A replay did not reproduce the recorded execution bit-exactly;
    carries the first mismatching event for diagnosis."""

    def __init__(self, message: str, divergence=None) -> None:
        super().__init__(message)
        self.divergence = divergence


class StoreError(ReproError):
    """A persistent event store rejected an operation (out-of-order
    append, colliding record ids, schema mismatch, unknown path)."""


class StoreCorruptError(StoreError):
    """A persistent event store's on-disk state failed verification
    (torn segment, bad checksum, unreadable manifest) in a way
    recovery could not repair without losing non-tail data."""
