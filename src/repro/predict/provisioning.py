"""Spare-part provisioning.

RQ5's closing point: long recovery tails (SSD ~290 h on Tsubame-2,
power board ~230 h on Tsubame-3) "highlight the need for appropriate
spare provisioning of parts."  This module sizes per-category spare
inventories: failures of category c arrive (approximately) Poisson at
rate n_c / span; during one procurement lead time L the demand is
Poisson(lambda_c * L), and the stock level s_c needed to keep the
stockout probability below a target is the corresponding Poisson
quantile.
"""

from __future__ import annotations

from dataclasses import dataclass

from scipy import stats as sps

from repro.core import taxonomy
from repro.core.breakdown import category_breakdown
from repro.core.records import FailureLog
from repro.core.taxonomy import FailureClass
from repro.errors import ValidationError

__all__ = ["SparePlanEntry", "SparePlan", "plan_spares"]


@dataclass(frozen=True)
class SparePlanEntry:
    """Recommended stock for one hardware category."""

    category: str
    failure_rate_per_hour: float
    lead_time_demand: float
    recommended_stock: int
    stockout_probability: float


@dataclass(frozen=True)
class SparePlan:
    """A full per-category provisioning plan."""

    machine: str
    lead_time_hours: float
    target_stockout_probability: float
    entries: tuple[SparePlanEntry, ...]

    @property
    def total_stock(self) -> int:
        """Total spares across categories."""
        return sum(entry.recommended_stock for entry in self.entries)

    def stock_for(self, category: str) -> int:
        """Recommended stock for one category (0 if not planned)."""
        for entry in self.entries:
            if entry.category == category:
                return entry.recommended_stock
        return 0

    def as_mapping(self) -> dict[str, int]:
        """Plan as a category -> stock dict (feeds the simulator)."""
        return {
            entry.category: entry.recommended_stock
            for entry in self.entries
        }


def plan_spares(
    log: FailureLog,
    lead_time_hours: float = 168.0,
    target_stockout_probability: float = 0.05,
) -> SparePlan:
    """Size spare inventories from observed failure rates.

    Only hardware categories are planned (software repairs consume no
    parts).  For each, the recommended stock is the smallest s with
    P[Poisson(rate x lead_time) > s] <= target.

    Raises:
        ValidationError: On invalid parameters or an empty log.
    """
    if lead_time_hours <= 0:
        raise ValidationError(
            f"lead_time_hours must be positive, got {lead_time_hours}"
        )
    if not 0.0 < target_stockout_probability < 1.0:
        raise ValidationError(
            f"target_stockout_probability must be in (0, 1), got "
            f"{target_stockout_probability}"
        )
    if len(log) == 0:
        raise ValidationError("cannot plan spares from an empty log")

    breakdown = category_breakdown(log)
    span = log.span_hours
    entries = []
    for share in breakdown.shares:
        if (
            taxonomy.failure_class(log.machine, share.category)
            is not FailureClass.HARDWARE
        ):
            continue
        rate = share.count / span
        demand = rate * lead_time_hours
        # Smallest s with P[Poisson(demand) > s] <= target, i.e. the
        # (1 - target) quantile.
        stock = int(sps.poisson.ppf(1.0 - target_stockout_probability,
                                    demand))
        stockout = float(sps.poisson.sf(stock, demand))
        entries.append(
            SparePlanEntry(
                category=share.category,
                failure_rate_per_hour=rate,
                lead_time_demand=demand,
                recommended_stock=stock,
                stockout_probability=stockout,
            )
        )
    return SparePlan(
        machine=log.machine,
        lead_time_hours=lead_time_hours,
        target_stockout_probability=target_stockout_probability,
        entries=tuple(
            sorted(entries, key=lambda e: (-e.recommended_stock,
                                           e.category))
        ),
    )
