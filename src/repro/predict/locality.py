"""Temporal-locality predictor for multi-GPU failures.

Figure 8's finding — a multi-GPU failure is likely to be followed by
another multi-GPU failure soon — directly suggests a predictor: after
seeing a failure that involved several GPUs, alarm the *system's*
GPU-heavy nodes for a window.  Because the follow-up failure can land
on a different node, the predictor alarms the recently-GPU-failing
node set rather than only the node just hit.
"""

from __future__ import annotations

from collections import deque

from repro.core.records import FailureRecord
from repro.errors import ValidationError
from repro.predict.base import Alarm, Predictor

__all__ = ["TemporalLocalityPredictor"]


class TemporalLocalityPredictor(Predictor):
    """Alarms GPU-failure-prone nodes right after a multi-GPU failure.

    Args:
        horizon_hours: Validity window of raised alarms.
        memory_hours: How long a node stays in the "recently had a GPU
            failure" set.
        min_gpus: Number of involved GPUs that makes a failure count
            as multi-GPU (2 in the paper's Figure 8).
    """

    def __init__(
        self,
        horizon_hours: float = 168.0,
        memory_hours: float = 720.0,
        min_gpus: int = 2,
    ) -> None:
        if horizon_hours <= 0:
            raise ValidationError(
                f"horizon_hours must be positive, got {horizon_hours}"
            )
        if memory_hours <= 0:
            raise ValidationError(
                f"memory_hours must be positive, got {memory_hours}"
            )
        if min_gpus < 2:
            raise ValidationError(
                f"min_gpus must be >= 2 for a multi-GPU definition, "
                f"got {min_gpus}"
            )
        self._horizon_hours = horizon_hours
        self._memory_hours = memory_hours
        self._min_gpus = min_gpus
        self._recent_gpu_nodes: deque[tuple[float, int]] = deque()

    def observe(
        self, record: FailureRecord, time_hours: float
    ) -> list[Alarm]:
        cutoff = time_hours - self._memory_hours
        while self._recent_gpu_nodes and self._recent_gpu_nodes[0][0] < cutoff:
            self._recent_gpu_nodes.popleft()

        alarms: list[Alarm] = []
        if record.num_gpus_involved >= self._min_gpus:
            # Burst trigger: everything in the recent GPU-failure set
            # (plus the node just hit) is at elevated risk.
            at_risk = {node for _, node in self._recent_gpu_nodes}
            at_risk.add(record.node_id)
            alarms = [
                Alarm(
                    node_id=node,
                    raised_at_hours=time_hours,
                    horizon_hours=self._horizon_hours,
                    score=2.0 if node == record.node_id else 1.0,
                )
                for node in sorted(at_risk)
            ]
        if record.num_gpus_involved > 0:
            self._recent_gpu_nodes.append((time_hours, record.node_id))
        return alarms

    def reset(self) -> None:
        self._recent_gpu_nodes.clear()
