"""Predictor interface.

The paper closes RQ5 with: "lowering the time to recovery requires ...
leveraging failure prediction to initiate recovery proactively where
possible."  A predictor consumes the failure stream record by record
and, at any point, names the nodes it believes will fail within its
prediction horizon.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.core.records import FailureRecord
from repro.errors import ValidationError

__all__ = ["Alarm", "Predictor"]


@dataclass(frozen=True)
class Alarm:
    """A prediction: ``node_id`` is expected to fail soon.

    Attributes:
        node_id: The node at risk.
        raised_at_hours: Time (hours since window start) the alarm was
            raised.
        horizon_hours: How far ahead the alarm claims validity.
        score: Relative confidence (higher = more confident).
    """

    node_id: int
    raised_at_hours: float
    horizon_hours: float
    score: float = 1.0

    def __post_init__(self) -> None:
        if self.horizon_hours <= 0:
            raise ValidationError(
                f"alarm horizon must be positive, got {self.horizon_hours}"
            )

    @property
    def expires_at_hours(self) -> float:
        return self.raised_at_hours + self.horizon_hours

    def covers(self, node_id: int, time_hours: float) -> bool:
        """True when a failure of ``node_id`` at ``time_hours`` counts
        as predicted by this alarm."""
        return (
            node_id == self.node_id
            and self.raised_at_hours < time_hours <= self.expires_at_hours
        )


class Predictor(abc.ABC):
    """Streaming failure predictor.

    Subclasses see each failure via :meth:`observe` (time-ordered) and
    may return alarms; the evaluation harness scores the alarms against
    the subsequent failures.
    """

    @abc.abstractmethod
    def observe(
        self, record: FailureRecord, time_hours: float
    ) -> list[Alarm]:
        """Consume one failure; return any alarms raised by it."""

    def reset(self) -> None:
        """Clear internal state between evaluation runs."""
