"""Time-to-next-failure forecasting.

A spare-provisioning or drain decision needs "when is the next failure
likely?", not just the MTBF.  The forecaster fits a Weibull renewal
model to the observed TBF series and issues quantile forecasts for the
gap to the next failure; :func:`evaluate_forecaster` replays a log and
checks the forecasts' *calibration* — a q-quantile forecast should
cover the realised gap about q of the time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.metrics import tbf_series_hours
from repro.core.records import FailureLog
from repro.errors import AnalysisError
from repro.stats.fitting import FitResult, fit_distribution

__all__ = ["TbfForecaster", "ForecastCalibration", "evaluate_forecaster"]


class TbfForecaster:
    """Weibull renewal forecaster for the gap to the next failure."""

    def __init__(self, min_history: int = 30) -> None:
        if min_history < 5:
            raise AnalysisError(
                f"min_history must be >= 5, got {min_history}"
            )
        self._min_history = min_history
        self._gaps: list[float] = []
        self._fit: FitResult | None = None
        self._dirty = False

    @property
    def ready(self) -> bool:
        """True once enough history has been observed to forecast."""
        return len(self._gaps) >= self._min_history

    @property
    def num_observed(self) -> int:
        """Gaps observed so far."""
        return len(self._gaps)

    def observe_gap(self, gap_hours: float) -> None:
        """Feed one realised inter-failure gap.

        Zero gaps (simultaneous failures) are floored to a minute; the
        Weibull support is (0, inf).

        Raises:
            AnalysisError: On a negative gap.
        """
        if gap_hours < 0:
            raise AnalysisError(f"gap must be >= 0, got {gap_hours}")
        self._gaps.append(max(gap_hours, 1.0 / 60.0))
        self._dirty = True

    def _current_fit(self) -> FitResult:
        if not self.ready:
            raise AnalysisError(
                f"forecaster needs {self._min_history} gaps, has "
                f"{len(self._gaps)}"
            )
        if self._fit is None or self._dirty:
            self._fit = fit_distribution(self._gaps, "weibull")
            self._dirty = False
        return self._fit

    def quantile_hours(self, q: float) -> float:
        """Forecast the q-quantile of the gap to the next failure."""
        return self._current_fit().quantile(q)

    def expected_hours(self) -> float:
        """Forecast the mean gap to the next failure."""
        return self._current_fit().mean()

    def probability_within(self, hours: float) -> float:
        """Forecast P[next failure within ``hours``].

        Raises:
            AnalysisError: On a negative horizon.
        """
        if hours < 0:
            raise AnalysisError(f"hours must be >= 0, got {hours}")
        fit = self._current_fit()
        from scipy import stats as sps

        return float(sps.weibull_min.cdf(hours, *fit.params))


@dataclass(frozen=True)
class ForecastCalibration:
    """Calibration of quantile forecasts over a replayed log.

    ``coverage[q]`` is the fraction of realised gaps that fell below
    the q-quantile forecast issued before them; a calibrated
    forecaster has coverage ~= q.
    """

    num_forecasts: int
    coverage: dict[float, float]
    mean_absolute_error_hours: float

    def is_calibrated(self, tolerance: float = 0.1) -> bool:
        """True when every quantile's coverage is within tolerance."""
        if not 0.0 < tolerance < 1.0:
            raise AnalysisError(
                f"tolerance must be in (0, 1), got {tolerance}"
            )
        return all(
            abs(observed - q) <= tolerance
            for q, observed in self.coverage.items()
        )


def evaluate_forecaster(
    log: FailureLog,
    quantiles: tuple[float, ...] = (0.25, 0.5, 0.75, 0.9),
    min_history: int = 30,
) -> ForecastCalibration:
    """Replay a log through a forecaster and score calibration.

    At each failure (once warmed up), the forecaster predicts the gap
    to the next failure from history only, then observes the truth.

    Raises:
        AnalysisError: If the log leaves no room for held-out
            forecasts.
    """
    for q in quantiles:
        if not 0.0 < q < 1.0:
            raise AnalysisError(f"quantiles must be in (0, 1), got {q}")
    gaps = tbf_series_hours(log)
    if len(gaps) <= min_history + 5:
        raise AnalysisError(
            f"log with {len(gaps)} gaps leaves no held-out forecasts "
            f"after a warm-up of {min_history}"
        )
    forecaster = TbfForecaster(min_history=min_history)
    hits = {q: 0 for q in quantiles}
    errors = []
    scored = 0
    for gap in gaps:
        if forecaster.ready:
            for q in quantiles:
                if gap <= forecaster.quantile_hours(q):
                    hits[q] += 1
            errors.append(abs(gap - forecaster.expected_hours()))
            scored += 1
        forecaster.observe_gap(gap)
    return ForecastCalibration(
        num_forecasts=scored,
        coverage={q: hits[q] / scored for q in quantiles},
        mean_absolute_error_hours=float(np.mean(errors)),
    )
