"""Rate-based predictor: repeat offenders keep offending.

Figure 4 shows failure counts per node are heavily skewed; nodes that
failed recently are disproportionately likely to fail again.  This
predictor raises an alarm for a node whenever its failure count within
a sliding window reaches a threshold.
"""

from __future__ import annotations

from collections import deque

from repro.core.records import FailureRecord
from repro.errors import ValidationError
from repro.predict.base import Alarm, Predictor

__all__ = ["RateBasedPredictor"]


class RateBasedPredictor(Predictor):
    """Alarms on nodes exceeding a failure rate.

    Args:
        window_hours: Length of the sliding observation window.
        threshold: Failures within the window (including the current
            one) needed to raise an alarm.
        horizon_hours: Validity horizon of raised alarms.
    """

    def __init__(
        self,
        window_hours: float = 336.0,
        threshold: int = 2,
        horizon_hours: float = 336.0,
    ) -> None:
        if window_hours <= 0:
            raise ValidationError(
                f"window_hours must be positive, got {window_hours}"
            )
        if threshold < 1:
            raise ValidationError(
                f"threshold must be >= 1, got {threshold}"
            )
        if horizon_hours <= 0:
            raise ValidationError(
                f"horizon_hours must be positive, got {horizon_hours}"
            )
        self._window_hours = window_hours
        self._threshold = threshold
        self._horizon_hours = horizon_hours
        self._recent: dict[int, deque[float]] = {}

    def observe(
        self, record: FailureRecord, time_hours: float
    ) -> list[Alarm]:
        history = self._recent.setdefault(record.node_id, deque())
        history.append(time_hours)
        cutoff = time_hours - self._window_hours
        while history and history[0] < cutoff:
            history.popleft()
        if len(history) >= self._threshold:
            return [
                Alarm(
                    node_id=record.node_id,
                    raised_at_hours=time_hours,
                    horizon_hours=self._horizon_hours,
                    score=float(len(history)),
                )
            ]
        return []

    def reset(self) -> None:
        self._recent.clear()
