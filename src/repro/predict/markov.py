"""Markov chain over failure categories.

A first-order category-transition model of the failure stream: learn
P(next category | current category) with Laplace smoothing, and compare
its held-out log-likelihood against the i.i.d. (multinomial) baseline.
A positive gain means the *sequence* carries signal — the kind of
short-range structure behind Figure 8's clustering — which an operator
can use to anticipate what fails next.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.records import FailureLog
from repro.errors import AnalysisError

__all__ = ["CategoryMarkovModel", "fit_markov_model", "sequence_gain"]


@dataclass(frozen=True)
class CategoryMarkovModel:
    """Smoothed first-order transition model over categories.

    Attributes:
        categories: Sorted category names (model states).
        transition: transition[a][b] = P(next is b | current is a).
        marginal: Overall category distribution (i.i.d. baseline).
        smoothing: Laplace pseudo-count used during fitting.
    """

    categories: tuple[str, ...]
    transition: dict[str, dict[str, float]]
    marginal: dict[str, float]
    smoothing: float

    def next_distribution(self, current: str) -> dict[str, float]:
        """Return P(next | current).

        Raises:
            AnalysisError: On an unknown category.
        """
        if current not in self.transition:
            raise AnalysisError(
                f"unknown category {current!r}; model knows "
                f"{self.categories}"
            )
        return dict(self.transition[current])

    def most_likely_next(self, current: str) -> str:
        """Most probable next category (ties by name)."""
        row = self.next_distribution(current)
        return min(row, key=lambda name: (-row[name], name))

    def sequence_log_likelihood(self, sequence: list[str]) -> float:
        """Log-likelihood of a category sequence under the chain.

        The first element is scored by the marginal.

        Raises:
            AnalysisError: On an empty sequence or unknown category.
        """
        if not sequence:
            raise AnalysisError("cannot score an empty sequence")
        for name in sequence:
            if name not in self.marginal:
                raise AnalysisError(f"unknown category {name!r}")
        total = math.log(self.marginal[sequence[0]])
        for current, nxt in zip(sequence, sequence[1:]):
            total += math.log(self.transition[current][nxt])
        return total

    def iid_log_likelihood(self, sequence: list[str]) -> float:
        """Log-likelihood under the i.i.d. marginal baseline."""
        if not sequence:
            raise AnalysisError("cannot score an empty sequence")
        total = 0.0
        for name in sequence:
            if name not in self.marginal:
                raise AnalysisError(f"unknown category {name!r}")
            total += math.log(self.marginal[name])
        return total


def fit_markov_model(
    log: FailureLog, smoothing: float = 1.0
) -> CategoryMarkovModel:
    """Fit the transition model to a log's category sequence.

    Args:
        log: Failure log (needs at least 2 failures).
        smoothing: Laplace pseudo-count added to every transition cell,
            so unseen transitions keep non-zero probability.

    Raises:
        AnalysisError: On a too-short log or non-positive smoothing.
    """
    if len(log) < 2:
        raise AnalysisError(
            f"Markov fit needs at least 2 failures, got {len(log)}"
        )
    if smoothing <= 0:
        raise AnalysisError(
            f"smoothing must be positive, got {smoothing}"
        )
    sequence = [record.category for record in log]
    categories = tuple(sorted(set(sequence)))

    counts = {
        a: {b: smoothing for b in categories} for a in categories
    }
    for current, nxt in zip(sequence, sequence[1:]):
        counts[current][nxt] += 1.0
    transition = {}
    for a, row in counts.items():
        total = sum(row.values())
        transition[a] = {b: value / total for b, value in row.items()}

    marginal_counts = {name: smoothing for name in categories}
    for name in sequence:
        marginal_counts[name] += 1.0
    marginal_total = sum(marginal_counts.values())
    marginal = {
        name: value / marginal_total
        for name, value in marginal_counts.items()
    }
    return CategoryMarkovModel(
        categories=categories,
        transition=transition,
        marginal=marginal,
        smoothing=smoothing,
    )


def sequence_gain(log: FailureLog, train_fraction: float = 0.7) -> float:
    """Held-out per-transition log-likelihood gain of the chain over
    the i.i.d. baseline.

    The log's category sequence is split chronologically; the model is
    fitted on the head and scored on the tail.  Positive values mean
    the failure sequence is predictable beyond its marginal mix.

    Raises:
        AnalysisError: On an invalid split or a too-short log.
    """
    if not 0.0 < train_fraction < 1.0:
        raise AnalysisError(
            f"train_fraction must be in (0, 1), got {train_fraction}"
        )
    sequence = [record.category for record in log]
    split = int(len(sequence) * train_fraction)
    if split < 2 or len(sequence) - split < 2:
        raise AnalysisError(
            f"log of {len(sequence)} failures is too short for a "
            f"{train_fraction:.0%} split"
        )
    head = FailureLog(
        machine=log.machine,
        records=log.records[:split],
        window_start=log.window_start,
        window_end=log.window_end,
    )
    model = fit_markov_model(head)
    tail = [name for name in sequence[split:] if name in model.marginal]
    if len(tail) < 2:
        raise AnalysisError(
            "held-out tail shares too few categories with the training "
            "head"
        )
    markov = model.sequence_log_likelihood(tail)
    iid = model.iid_log_likelihood(tail)
    return (markov - iid) / (len(tail) - 1)
