"""Predictor evaluation: precision, recall, and lead time.

Replays a failure log through a predictor.  A later failure counts as
*predicted* when some live alarm covers (node, time); an alarm counts
as *useful* when at least one failure lands inside its window.  Lead
time is how far in advance the earliest covering alarm fired — the
budget a proactive action (draining the node, pre-staging a spare)
would have had.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.records import FailureLog
from repro.errors import AnalysisError
from repro.predict.base import Alarm, Predictor

__all__ = ["PredictionOutcome", "evaluate_predictor"]


@dataclass(frozen=True)
class PredictionOutcome:
    """Scores from replaying a log through a predictor."""

    total_failures: int
    predicted_failures: int
    total_alarms: int
    useful_alarms: int
    lead_times_hours: tuple[float, ...]

    @property
    def recall(self) -> float:
        """Fraction of failures some alarm covered."""
        if self.total_failures == 0:
            return 0.0
        return self.predicted_failures / self.total_failures

    @property
    def precision(self) -> float:
        """Fraction of alarms that covered at least one failure."""
        if self.total_alarms == 0:
            return 0.0
        return self.useful_alarms / self.total_alarms

    @property
    def mean_lead_time_hours(self) -> float:
        """Mean warning margin over predicted failures (nan if none)."""
        if not self.lead_times_hours:
            return float("nan")
        return float(np.mean(self.lead_times_hours))


def evaluate_predictor(
    predictor: Predictor, log: FailureLog
) -> PredictionOutcome:
    """Replay ``log`` through ``predictor`` and score it.

    The predictor observes failures in time order; each failure is
    first scored against the alarms raised by *earlier* failures, then
    fed to the predictor (no peeking).

    Raises:
        AnalysisError: On an empty log.
    """
    if len(log) == 0:
        raise AnalysisError("cannot evaluate a predictor on an empty log")
    predictor.reset()
    live_alarms: list[Alarm] = []
    alarm_was_useful: list[bool] = []
    predicted = 0
    lead_times: list[float] = []
    total_alarms = 0

    for record in log:
        time_hours = log.hours_since_start(record)
        # Score this failure against previously raised alarms.
        covering = [
            index
            for index, alarm in enumerate(live_alarms)
            if alarm.covers(record.node_id, time_hours)
        ]
        if covering:
            predicted += 1
            earliest = min(
                live_alarms[index].raised_at_hours for index in covering
            )
            lead_times.append(time_hours - earliest)
            for index in covering:
                alarm_was_useful[index] = True
        # Then let the predictor see it.
        new_alarms = predictor.observe(record, time_hours)
        total_alarms += len(new_alarms)
        live_alarms.extend(new_alarms)
        alarm_was_useful.extend([False] * len(new_alarms))

    useful = sum(alarm_was_useful)
    return PredictionOutcome(
        total_failures=len(log),
        predicted_failures=predicted,
        total_alarms=total_alarms,
        useful_alarms=useful,
        lead_times_hours=tuple(lead_times),
    )
