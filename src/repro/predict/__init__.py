"""Failure prediction and proactive provisioning.

Implements the paper's RQ5 recommendation — "leveraging failure
prediction to initiate recovery proactively" — as runnable components:
streaming predictors, an evaluation harness (precision / recall / lead
time), and a Poisson spare-provisioning planner.
"""

from repro.predict.base import Alarm, Predictor
from repro.predict.evaluation import PredictionOutcome, evaluate_predictor
from repro.predict.forecast import (
    ForecastCalibration,
    TbfForecaster,
    evaluate_forecaster,
)
from repro.predict.locality import TemporalLocalityPredictor
from repro.predict.markov import (
    CategoryMarkovModel,
    fit_markov_model,
    sequence_gain,
)
from repro.predict.provisioning import SparePlan, SparePlanEntry, plan_spares
from repro.predict.rate import RateBasedPredictor
from repro.predict.tuning import SweepPoint, best_by_f1, sweep_rate_predictor

__all__ = [
    "Alarm",
    "CategoryMarkovModel",
    "ForecastCalibration",
    "PredictionOutcome",
    "Predictor",
    "TbfForecaster",
    "RateBasedPredictor",
    "SparePlan",
    "SparePlanEntry",
    "SweepPoint",
    "TemporalLocalityPredictor",
    "best_by_f1",
    "evaluate_forecaster",
    "evaluate_predictor",
    "fit_markov_model",
    "plan_spares",
    "sequence_gain",
    "sweep_rate_predictor",
]
