"""Predictor hyperparameter sweeps.

A predictor is only operationally useful at the right point on its
precision/recall trade-off: too many alarms waste staging budget, too
few miss the failures.  :func:`sweep_rate_predictor` maps that frontier
for the rate-based predictor by sweeping window/threshold pairs over a
log.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.records import FailureLog
from repro.errors import AnalysisError
from repro.parallel import sweep
from repro.predict.evaluation import PredictionOutcome, evaluate_predictor
from repro.predict.rate import RateBasedPredictor

__all__ = ["SweepPoint", "sweep_rate_predictor", "best_by_f1"]


@dataclass(frozen=True)
class SweepPoint:
    """One configuration's scores."""

    window_hours: float
    threshold: int
    outcome: PredictionOutcome

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall (0 when both are 0)."""
        precision = self.outcome.precision
        recall = self.outcome.recall
        if precision + recall == 0.0:
            return 0.0
        return 2.0 * precision * recall / (precision + recall)


def _evaluate_pair(
    task: tuple[float, int], log: FailureLog
) -> SweepPoint:
    """Score one (window, threshold) pair — module-level so the
    parallel sweep can ship it to worker processes.  The log arrives
    as the sweep's ``shared=`` payload: one shared-memory export for
    the whole grid instead of a pickled copy per task."""
    window, threshold = task
    predictor = RateBasedPredictor(
        window_hours=window,
        threshold=threshold,
        horizon_hours=window,
    )
    return SweepPoint(
        window_hours=window,
        threshold=threshold,
        outcome=evaluate_predictor(predictor, log),
    )


def sweep_rate_predictor(
    log: FailureLog,
    window_grid: tuple[float, ...] = (336.0, 1000.0, 3000.0, 8000.0),
    threshold_grid: tuple[int, ...] = (2, 3, 4),
    processes: int | None = None,
) -> list[SweepPoint]:
    """Evaluate every (window, threshold) pair on ``log``.

    The alarm horizon is tied to the window (a node hot over the last
    W hours is flagged for the next W hours).

    ``processes > 1`` spreads the grid over the warm worker pool via
    :func:`repro.parallel.sweep`, handing the log to workers once over
    shared memory (``shared=log``) rather than pickling it into every
    task; results are identical to the serial run, in the same
    (window-major) order.

    Raises:
        AnalysisError: On empty grids or an empty log.
    """
    if not window_grid or not threshold_grid:
        raise AnalysisError("sweep grids must be non-empty")
    if len(log) == 0:
        raise AnalysisError("cannot sweep on an empty log")
    tasks = [
        (window, threshold)
        for window in window_grid
        for threshold in threshold_grid
    ]
    return sweep(_evaluate_pair, tasks, processes=processes, shared=log)


def best_by_f1(points: list[SweepPoint]) -> SweepPoint:
    """Return the sweep point with the highest F1 score.

    Ties break toward fewer alarms (cheaper operationally).

    Raises:
        AnalysisError: On an empty sweep.
    """
    if not points:
        raise AnalysisError("best_by_f1 needs at least one sweep point")
    return max(
        points,
        key=lambda point: (point.f1, -point.outcome.total_alarms),
    )
