"""repro.serve — asyncio reliability-analytics service.

A dependency-free service layer over the analysis core: named datasets
(:mod:`~repro.serve.registry`), an HTTP/1.1 request pipeline with
result caching (:mod:`~repro.serve.cache`), request coalescing
(:mod:`~repro.serve.coalesce`), and admission control
(:mod:`~repro.serve.admission`), served by ``asyncio.start_server``
(:mod:`~repro.serve.server`).  Scale-out mode fronts N shard worker
processes with a consistent-hashing router (:mod:`~repro.serve.shard`,
:mod:`~repro.serve.router`) and queues expensive simulations through a
priority job queue (:mod:`~repro.serve.jobs`).  See ``docs/SERVING.md``
for endpoint schemas and operational semantics.

Quick start::

    from repro.serve import DatasetRegistry, ReproApp, run_in_thread

    registry = DatasetRegistry()
    registry.synthesize("t2", "tsubame2", seed=42)
    with run_in_thread(ReproApp(registry)) as handle:
        ...  # http://127.0.0.1:{handle.port}/analyze/t2/breakdown
"""

from repro.serve.admission import (
    AdmissionController,
    RateLimiter,
    TokenBucket,
)
from repro.serve.app import ANALYSES, ReproApp, SimulateJob
from repro.serve.cache import ResultCache, canonical_key
from repro.serve.coalesce import MicroBatcher, SingleFlight
from repro.serve.http import HttpError, HttpRequest, Response
from repro.serve.jobs import JOB_STATES, Job, JobConflict, JobQueue
from repro.serve.registry import (
    Dataset,
    DatasetRegistry,
    fingerprint_file,
    fingerprint_log,
    parse_dataset_spec,
    register_from_spec,
)
from repro.serve.router import BackendPool, RouterApp, run_router_in_thread
from repro.serve.server import ReproServer, ServerHandle, run_in_thread
from repro.serve.shard import HashRing, ShardConfig, spawn_shard
from repro.serve.stats import (
    ServerStats,
    merge_counter_dicts,
    merge_server_snapshots,
)

__all__ = [
    "ANALYSES",
    "AdmissionController",
    "BackendPool",
    "Dataset",
    "DatasetRegistry",
    "HashRing",
    "HttpError",
    "HttpRequest",
    "JOB_STATES",
    "Job",
    "JobConflict",
    "JobQueue",
    "MicroBatcher",
    "RateLimiter",
    "ReproApp",
    "ReproServer",
    "ResultCache",
    "Response",
    "RouterApp",
    "ServerHandle",
    "ServerStats",
    "ShardConfig",
    "SimulateJob",
    "SingleFlight",
    "TokenBucket",
    "canonical_key",
    "fingerprint_file",
    "fingerprint_log",
    "merge_counter_dicts",
    "merge_server_snapshots",
    "parse_dataset_spec",
    "register_from_spec",
    "run_in_thread",
    "run_router_in_thread",
    "spawn_shard",
]
