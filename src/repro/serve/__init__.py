"""repro.serve — asyncio reliability-analytics service.

A dependency-free service layer over the analysis core: named datasets
(:mod:`~repro.serve.registry`), an HTTP/1.1 request pipeline with
result caching (:mod:`~repro.serve.cache`), request coalescing
(:mod:`~repro.serve.coalesce`), and admission control
(:mod:`~repro.serve.admission`), served by ``asyncio.start_server``
(:mod:`~repro.serve.server`).  See ``docs/SERVING.md`` for endpoint
schemas and operational semantics.

Quick start::

    from repro.serve import DatasetRegistry, ReproApp, run_in_thread

    registry = DatasetRegistry()
    registry.synthesize("t2", "tsubame2", seed=42)
    with run_in_thread(ReproApp(registry)) as handle:
        ...  # http://127.0.0.1:{handle.port}/analyze/t2/breakdown
"""

from repro.serve.admission import (
    AdmissionController,
    RateLimiter,
    TokenBucket,
)
from repro.serve.app import ANALYSES, ReproApp, SimulateJob
from repro.serve.cache import ResultCache, canonical_key
from repro.serve.coalesce import MicroBatcher, SingleFlight
from repro.serve.http import HttpError, HttpRequest, Response
from repro.serve.registry import (
    Dataset,
    DatasetRegistry,
    fingerprint_file,
    fingerprint_log,
    parse_dataset_spec,
    register_from_spec,
)
from repro.serve.server import ReproServer, ServerHandle, run_in_thread
from repro.serve.stats import ServerStats

__all__ = [
    "ANALYSES",
    "AdmissionController",
    "Dataset",
    "DatasetRegistry",
    "HttpError",
    "HttpRequest",
    "MicroBatcher",
    "RateLimiter",
    "ReproApp",
    "ReproServer",
    "ResultCache",
    "Response",
    "ServerHandle",
    "ServerStats",
    "SimulateJob",
    "SingleFlight",
    "TokenBucket",
    "canonical_key",
    "fingerprint_file",
    "fingerprint_log",
    "parse_dataset_spec",
    "register_from_spec",
    "run_in_thread",
]
