"""Result cache: LRU + TTL over canonical request keys.

Responses are cached as the exact bytes that went over the wire, keyed
by a SHA-256 over ``(endpoint, dataset fingerprint, normalized
params)``.  Two consequences the test suite leans on:

* a hit returns the *byte-identical* payload of the cold miss (the
  body is canonical JSON, so equality is meaningful), and
* re-registering a dataset under the same handle changes its
  fingerprint and therefore silently invalidates every cached result
  computed from the old data — no explicit purge protocol needed.

The cache never stores errors; a failed computation leaves no entry.
"""

from __future__ import annotations

import hashlib
import json
import time
from collections import OrderedDict
from typing import Any, Callable

from repro.errors import ServeError

__all__ = ["canonical_key", "ResultCache"]


def canonical_key(
    endpoint: str,
    params: dict[str, Any],
    fingerprint: str | None = None,
) -> str:
    """Stable cache key for one logical request.

    ``params`` must be JSON-serializable; key order is irrelevant
    (the encoding sorts keys), so semantically identical requests map
    to the same key however the client spelled them.

    Non-serializable params are rejected rather than coerced.  A
    ``default=str`` fallback here would be a cache-poisoning bug, in
    both directions: objects whose ``str()`` embeds ``id()`` (the
    ``repr`` of any plain object) give the same request a *different*
    key per instance, and distinct params with equal ``str()`` (e.g.
    ``2`` vs ``Decimal(2)`` wrapped in a container, or two exceptions
    with the same message) *collide* and serve each other's cached
    bytes.

    Raises:
        ServeError: If ``params`` is not JSON-serializable (maps to a
            400 at the HTTP boundary).
    """
    try:
        payload = json.dumps(
            {
                "endpoint": endpoint,
                "fingerprint": fingerprint,
                "params": params,
            },
            sort_keys=True,
            separators=(",", ":"),
            allow_nan=False,
        )
    except (TypeError, ValueError) as exc:
        raise ServeError(
            f"request params for {endpoint!r} are not "
            f"JSON-serializable: {exc}"
        ) from exc
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ResultCache:
    """Bounded LRU cache with per-entry TTL and hit/miss accounting.

    Args:
        max_entries: Capacity; the least-recently-used entry is
            evicted on overflow.  0 disables caching (every ``get``
            is a miss and ``put`` is a no-op).
        ttl_seconds: Entry lifetime; ``None`` means entries never
            expire (LRU eviction only).
        clock: Injectable monotonic clock (tests pass a fake).
    """

    def __init__(
        self,
        max_entries: int = 256,
        ttl_seconds: float | None = 300.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_entries < 0:
            raise ServeError(
                f"max_entries must be >= 0, got {max_entries}"
            )
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ServeError(
                f"ttl_seconds must be positive or None, got {ttl_seconds}"
            )
        self.max_entries = max_entries
        self.ttl_seconds = ttl_seconds
        self._clock = clock
        self._entries: OrderedDict[str, tuple[float, bytes]] = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> bytes | None:
        """Return the cached bytes, or ``None`` (and count a miss)."""
        entry = self._entries.get(key)
        if entry is not None:
            stored_at, value = entry
            if (
                self.ttl_seconds is not None
                and self._clock() - stored_at > self.ttl_seconds
            ):
                del self._entries[key]
                self.expirations += 1
            else:
                self._entries.move_to_end(key)
                self.hits += 1
                return value
        self.misses += 1
        return None

    def put(self, key: str, value: bytes) -> None:
        """Store ``value``, evicting the LRU entry on overflow."""
        if self.max_entries == 0:
            return
        if key in self._entries:
            del self._entries[key]
        elif len(self._entries) >= self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1
        self._entries[key] = (self._clock(), value)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 before any)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict[str, Any]:
        """Accounting snapshot for ``/statsz``."""
        return {
            "entries": len(self._entries),
            "max_entries": self.max_entries,
            "ttl_seconds": self.ttl_seconds,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "hit_rate": round(self.hit_rate, 6),
        }
