"""Request coalescing: single-flight dedup and micro-batching.

Two independent mechanisms collapse redundant backend work:

* :class:`SingleFlight` deduplicates *identical* concurrent requests:
  the first caller for a key becomes the leader and actually executes;
  everyone else arriving before it finishes awaits the leader's result.
  N identical concurrent requests therefore trigger exactly one
  backend execution — the property the e2e suite and ``BENCH_serve``
  assert.  Errors propagate to every waiter and are never cached.

* :class:`MicroBatcher` collapses *compatible but distinct* requests:
  submissions are parked for a short linger window (or until the batch
  fills) and then executed as one batch — the server's simulate
  endpoint drains a batch through
  :func:`repro.parallel.sweep_iter`, so M concurrent what-if
  simulations cost one pool dispatch instead of M.  That dispatch
  lands on the process-wide *warm* worker pool
  (:mod:`repro.parallel.pool`): the worker processes are spawned once
  per server lifetime and reused by every batch, so batch latency no
  longer includes a pool cold start.
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable

from repro.errors import ServeError

__all__ = ["SingleFlight", "MicroBatcher"]


class SingleFlight:
    """Deduplicate identical in-flight computations by key."""

    def __init__(self) -> None:
        self._inflight: dict[str, asyncio.Future] = {}
        self.executions = 0
        self.coalesced = 0

    @property
    def inflight_keys(self) -> int:
        return len(self._inflight)

    async def run(
        self, key: str, thunk: Callable[[], Awaitable[Any]]
    ) -> tuple[Any, bool]:
        """Execute ``thunk`` once per key among concurrent callers.

        Returns:
            ``(value, coalesced)`` — ``coalesced`` is True when this
            caller joined a leader instead of executing.

        Raises:
            Whatever the leader's ``thunk`` raised, to every waiter.
        """
        existing = self._inflight.get(key)
        if existing is not None:
            self.coalesced += 1
            return await asyncio.shield(existing), True

        future: asyncio.Future = (
            asyncio.get_running_loop().create_future()
        )
        self._inflight[key] = future
        self.executions += 1
        try:
            value = await thunk()
        except BaseException as error:
            if not future.cancelled():
                future.set_exception(error)
                # Mark retrieved so a waiterless failure does not log
                # an "exception was never retrieved" warning.
                future.exception()
            raise
        else:
            if not future.cancelled():
                future.set_result(value)
            return value, False
        finally:
            self._inflight.pop(key, None)

    def stats(self) -> dict[str, Any]:
        return {
            "executions": self.executions,
            "coalesced": self.coalesced,
            "inflight_keys": len(self._inflight),
        }


class MicroBatcher:
    """Collect submissions briefly and execute them as one batch.

    Args:
        execute_batch: ``async`` callable receiving the batched items;
            must return one result per item, in order.  A returned
            item that is an ``Exception`` instance is raised to that
            item's submitter alone; a raised exception fails the whole
            batch.
        max_batch: Execute immediately once this many items are
            pending.
        linger_seconds: How long the first item of a batch waits for
            company before the batch executes anyway.
    """

    def __init__(
        self,
        execute_batch: Callable[[list[Any]], Awaitable[list[Any]]],
        max_batch: int = 16,
        linger_seconds: float = 0.005,
    ) -> None:
        if max_batch < 1:
            raise ServeError(f"max_batch must be >= 1, got {max_batch}")
        if linger_seconds < 0:
            raise ServeError(
                f"linger_seconds must be >= 0, got {linger_seconds}"
            )
        self._execute = execute_batch
        self.max_batch = max_batch
        self.linger_seconds = linger_seconds
        self._pending: list[tuple[Any, asyncio.Future]] = []
        self._full = asyncio.Event()
        self._runner: asyncio.Task | None = None
        self._tasks: set[asyncio.Task] = set()
        self._closed = False
        self.batches = 0
        self.items = 0
        self.largest_batch = 0

    async def submit(self, item: Any) -> Any:
        """Park ``item`` for the next batch and await its result."""
        if self._closed:
            raise ServeError("batcher is closed")
        future: asyncio.Future = (
            asyncio.get_running_loop().create_future()
        )
        self._pending.append((item, future))
        if self._runner is None:
            self._full = asyncio.Event()
            self._runner = asyncio.create_task(self._run_soon())
            self._tasks.add(self._runner)
            self._runner.add_done_callback(self._tasks.discard)
        if len(self._pending) >= self.max_batch:
            self._full.set()
        return await future

    async def _run_soon(self) -> None:
        """Wait out the linger window (or a full batch), then run."""
        if self.linger_seconds > 0:
            try:
                await asyncio.wait_for(
                    self._full.wait(), timeout=self.linger_seconds
                )
            except asyncio.TimeoutError:
                pass
        batch, self._pending = self._pending, []
        self._runner = None
        if not batch:
            return
        self.batches += 1
        self.items += len(batch)
        self.largest_batch = max(self.largest_batch, len(batch))
        items = [item for item, _ in batch]
        try:
            results = await self._execute(items)
            if len(results) != len(items):
                raise ServeError(
                    f"batch executor returned {len(results)} results "
                    f"for {len(items)} items"
                )
        except Exception as error:
            for _, future in batch:
                if not future.done():
                    future.set_exception(error)
            return
        for (_, future), result in zip(batch, results):
            if future.done():
                continue
            if isinstance(result, Exception):
                future.set_exception(result)
            else:
                future.set_result(result)

    async def close(self) -> None:
        """Flush pending work and refuse further submissions."""
        self._closed = True
        self._full.set()
        while self._tasks:
            await asyncio.gather(*list(self._tasks))

    @property
    def batching_factor(self) -> float:
        """Mean items per executed batch (1.0 = no batching win)."""
        return self.items / self.batches if self.batches else 0.0

    def stats(self) -> dict[str, Any]:
        return {
            "batches": self.batches,
            "items": self.items,
            "largest_batch": self.largest_batch,
            "batching_factor": round(self.batching_factor, 4),
            "pending": len(self._pending),
        }
