"""Shard topology: consistent hashing + worker process lifecycle.

A sharded deployment runs N independent **shard** processes, each a
complete single-process service (its own :class:`~repro.serve.app.ReproApp`,
result cache, warm :mod:`repro.parallel` pool), fronted by one router
(:mod:`repro.serve.router`).  Every shard registers *all* datasets —
routing is about **cache affinity**, not data partitioning: the router
hashes each request's dataset fingerprint onto the ring so repeated
requests for the same data land on the same shard's warm cache.

:class:`HashRing` is a classic consistent-hash ring over SHA-256 with
virtual nodes.  Two properties the tests pin down:

* **Determinism** — the mapping is a pure function of
  ``(num_shards, vnodes, key)``; independent processes (router and a
  respawned replacement) agree without coordination, regardless of
  ``PYTHONHASHSEED``.
* **Minimal movement** — growing the ring from N to N+1 shards only
  adds the new shard's points, so the only keys that move are the
  ones now owned by the new shard (≈1/(N+1) of the space); no key
  moves *between* surviving shards.

:func:`shard_main` is the child-process entry point: it builds the
registry from pickled CLI specs, serves on an ephemeral port, reports
``("ready", port)`` to the parent over a pipe, drains gracefully on
SIGTERM/SIGINT, and exits if its parent disappears (a supervisor that
died cannot reap orphans).
"""

from __future__ import annotations

import asyncio
import bisect
import hashlib
import multiprocessing
import os
import signal
from dataclasses import dataclass, field
from multiprocessing.connection import Connection
from typing import Any

from repro.errors import ServeError

__all__ = ["HashRing", "ShardConfig", "ShardProcess", "shard_main", "spawn_shard"]


# --------------------------------------------------------------------------
# Consistent hashing
# --------------------------------------------------------------------------

def _ring_point(label: str) -> int:
    """Position of ``label`` on the 2**64 ring (SHA-256 prefix)."""
    digest = hashlib.sha256(label.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Consistent-hash ring mapping string keys onto shard indices.

    Args:
        num_shards: Shards on the ring (indices ``0..num_shards-1``).
        vnodes: Virtual nodes per shard.  More vnodes smooth the load
            split between shards at the cost of a larger (still tiny)
            sorted table; 64 keeps the max/min shard-load ratio close
            to 1 for realistic key counts.
    """

    def __init__(self, num_shards: int, vnodes: int = 64) -> None:
        if num_shards < 1:
            raise ServeError(
                f"num_shards must be >= 1, got {num_shards}"
            )
        if vnodes < 1:
            raise ServeError(f"vnodes must be >= 1, got {vnodes}")
        self.num_shards = num_shards
        self.vnodes = vnodes
        points: list[tuple[int, int]] = []
        for shard in range(num_shards):
            for vnode in range(vnodes):
                points.append(
                    (_ring_point(f"shard={shard}/vnode={vnode}"), shard)
                )
        points.sort()
        self._points = [point for point, _ in points]
        self._owners = [shard for _, shard in points]

    def shard_for(self, key: str) -> int:
        """Owning shard for ``key`` (first ring point at/after it)."""
        point = _ring_point(key)
        index = bisect.bisect_left(self._points, point)
        if index == len(self._points):
            index = 0  # Wrap past the top of the ring.
        return self._owners[index]

    def spread(self, keys: list[str]) -> dict[int, int]:
        """Keys-per-shard histogram (diagnostics and tests)."""
        counts: dict[int, int] = {
            shard: 0 for shard in range(self.num_shards)
        }
        for key in keys:
            counts[self.shard_for(key)] += 1
        return counts


# --------------------------------------------------------------------------
# Shard worker processes
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class ShardConfig:
    """Everything a shard child process needs, picklable for spawn.

    Mirrors the knobs of :class:`~repro.serve.app.ReproApp` plus the
    dataset specs (the CLI ``--datasets`` grammar) the child replays
    through :func:`~repro.serve.registry.register_from_spec`.
    """

    index: int
    dataset_specs: tuple[str, ...] = ()
    host: str = "127.0.0.1"
    workers: int | None = None
    cache_size: int = 256
    cache_ttl_seconds: float | None = 300.0
    max_inflight: int = 8
    max_queue: int = 32
    rate_per_second: float | None = None
    burst: float = 20.0
    max_replications: int = 512
    drain_timeout: float = 10.0
    parent_poll_seconds: float = 1.0


def shard_main(config: ShardConfig, conn: Connection) -> None:
    """Child-process entry point: serve one shard until told to stop.

    Protocol on ``conn``: exactly one message is sent — ``("ready",
    port)`` once the socket is bound, or ``("error", message)`` if
    startup failed — then the pipe is closed and all further control
    is via signals (SIGTERM/SIGINT → graceful drain → exit 0).
    """
    # Imports happen here, not at module top, so the parent can spawn
    # without the child re-importing the world before it forks… under
    # the spawn start method the child pays them exactly once either way,
    # but keeping them local documents what the child actually needs.
    from repro.serve.app import ReproApp
    from repro.serve.registry import DatasetRegistry, register_from_spec
    from repro.serve.server import ReproServer

    try:
        registry = DatasetRegistry()
        for spec in config.dataset_specs:
            register_from_spec(registry, spec)
        app = ReproApp(
            registry,
            workers=config.workers,
            cache_size=config.cache_size,
            cache_ttl_seconds=config.cache_ttl_seconds,
            max_inflight=config.max_inflight,
            max_queue=config.max_queue,
            rate_per_second=config.rate_per_second,
            burst=config.burst,
            max_replications=config.max_replications,
            shard_index=config.index,
        )
    except BaseException as error:
        conn.send(("error", f"{type(error).__name__}: {error}"))
        conn.close()
        raise SystemExit(1)

    async def serve() -> int:
        server = ReproServer(
            app,
            host=config.host,
            port=0,
            drain_timeout=config.drain_timeout,
        )
        try:
            await server.start()
        except BaseException as error:
            conn.send(("error", f"{type(error).__name__}: {error}"))
            conn.close()
            return 1
        conn.send(("ready", server.port))
        conn.close()

        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, stop.set)

        async def watchdog() -> None:
            # A shard must not outlive its supervisor: if the parent
            # dies (kill -9, OOM) the child is re-parented and getppid
            # changes — drain and exit instead of leaking.
            parent = os.getppid()
            while os.getppid() == parent:
                await asyncio.sleep(config.parent_poll_seconds)
            stop.set()

        watchdog_task = asyncio.ensure_future(watchdog())
        await stop.wait()
        watchdog_task.cancel()
        await server.stop()
        # Idle keep-alive connections (the router's pool) observe the
        # close asynchronously; one settle tick lets their handler
        # tasks exit cleanly instead of being cancelled mid-read when
        # asyncio.run tears the loop down.
        await asyncio.sleep(0.05)
        return 0

    raise SystemExit(asyncio.run(serve()))


@dataclass
class ShardProcess:
    """A live (or once-live) shard child, as the router sees it."""

    index: int
    config: ShardConfig
    process: Any
    port: int
    respawns: int = 0
    generation: int = 0
    _extra: dict[str, Any] = field(default_factory=dict)

    @property
    def alive(self) -> bool:
        return self.process.is_alive()

    @property
    def sentinel(self) -> int:
        """Selectable fd that becomes ready when the child exits."""
        return self.process.sentinel


def spawn_shard(
    config: ShardConfig, ready_timeout: float = 60.0
) -> ShardProcess:
    """Spawn one shard child and wait for its port handshake.

    Uses the ``spawn`` start method unconditionally: the router runs
    inside a (potentially threaded) asyncio process, and forking a
    threaded parent is a deadlock lottery.  ``daemon=False`` because
    shards spawn their own warm-pool children.

    Raises:
        ServeError: If the child reports a startup error, dies before
            the handshake, or times out.
    """
    context = multiprocessing.get_context("spawn")
    parent_conn, child_conn = context.Pipe(duplex=False)
    process = context.Process(
        target=shard_main,
        args=(config, child_conn),
        name=f"repro-shard-{config.index}",
        daemon=False,
    )
    process.start()
    child_conn.close()  # Parent keeps only the read end.
    try:
        if not parent_conn.poll(ready_timeout):
            process.terminate()
            raise ServeError(
                f"shard {config.index} did not report ready within "
                f"{ready_timeout:g}s"
            )
        message = parent_conn.recv()
    except EOFError:
        raise ServeError(
            f"shard {config.index} exited before reporting ready "
            f"(exit code {process.exitcode})"
        ) from None
    finally:
        parent_conn.close()
    kind, payload = message
    if kind == "error":
        process.join(timeout=5.0)
        raise ServeError(
            f"shard {config.index} failed to start: {payload}"
        )
    return ShardProcess(
        index=config.index,
        config=config,
        process=process,
        port=int(payload),
    )
