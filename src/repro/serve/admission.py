"""Admission control: rate limiting, bounded queueing, load shedding.

The service degrades *predictably* under overload instead of letting
latency grow without bound:

* :class:`RateLimiter` — per-client token buckets.  A client over its
  budget is shed with **429** and a ``Retry-After`` telling it when
  the next token lands.
* :class:`AdmissionController` — at most ``max_inflight`` requests
  execute concurrently; up to ``max_queue`` more wait their turn; any
  further arrival is shed immediately with **503** + ``Retry-After``
  (shedding at the door is cheaper than timing out at the back of an
  unbounded queue).

Both raise :class:`~repro.serve.http.HttpError`, which the app layer
renders; neither ever blocks the event loop.
"""

from __future__ import annotations

import asyncio
import math
import time
from collections import OrderedDict
from typing import Any, Callable

from repro.errors import ServeError
from repro.serve.http import HttpError

__all__ = ["TokenBucket", "RateLimiter", "AdmissionController"]


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, ``burst`` deep."""

    def __init__(
        self,
        rate_per_second: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
        initial_tokens: float | None = None,
    ) -> None:
        if rate_per_second <= 0:
            raise ServeError(
                f"rate_per_second must be positive, got {rate_per_second}"
            )
        if burst < 1:
            raise ServeError(f"burst must be >= 1, got {burst}")
        self.rate = rate_per_second
        self.burst = float(burst)
        self._clock = clock
        if initial_tokens is None:
            self._tokens = float(burst)
        else:
            self._tokens = min(float(burst), max(0.0, initial_tokens))
        self._last = clock()

    def try_acquire(self) -> tuple[bool, float]:
        """Take one token if available.

        Returns:
            ``(True, 0.0)`` on success, else ``(False, wait_seconds)``
            where ``wait_seconds`` is until the next token matures.
        """
        now = self._clock()
        self._tokens = min(
            self.burst, self._tokens + (now - self._last) * self.rate
        )
        self._last = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True, 0.0
        return False, (1.0 - self._tokens) / self.rate


class RateLimiter:
    """Per-client token buckets with bounded client tracking.

    Args:
        rate_per_second: Sustained budget per client.
        burst: Bucket depth (short bursts above the rate are fine).
        max_clients: Buckets kept; least-recently-seen clients are
            forgotten first.  Once any eviction has happened, a
            client without a bucket (new *or* re-admitted — the
            limiter cannot tell them apart) starts with only the
            tokens that could have refilled since the last eviction,
            not a full burst: otherwise rotating through
            ``max_clients + 1`` identities resets every bucket and
            bypasses the rate limit entirely.
    """

    def __init__(
        self,
        rate_per_second: float,
        burst: float = 10.0,
        max_clients: int = 4096,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.rate = rate_per_second
        self.burst = burst
        self.max_clients = max_clients
        self._clock = clock
        self._buckets: OrderedDict[str, TokenBucket] = OrderedDict()
        self._last_evicted_at: float | None = None
        self.allowed = 0
        self.limited = 0
        self.evictions = 0

    def check(self, client_id: str) -> None:
        """Charge one request to ``client_id``.

        Raises:
            HttpError: 429 with ``Retry-After`` when over budget.
        """
        bucket = self._buckets.get(client_id)
        if bucket is None:
            if len(self._buckets) >= self.max_clients:
                self._buckets.popitem(last=False)
                self._last_evicted_at = self._clock()
                self.evictions += 1
            initial_tokens = None
            if self._last_evicted_at is not None:
                # An evicted client may be coming back.  Grant one
                # token (a genuinely new client must not be refused
                # outright) plus the refill accrued since the last
                # eviction, capped at the burst — the most the client
                # could legitimately hold had its bucket survived.
                elapsed = self._clock() - self._last_evicted_at
                initial_tokens = 1.0 + self.rate * elapsed
            bucket = TokenBucket(
                self.rate,
                self.burst,
                self._clock,
                initial_tokens=initial_tokens,
            )
            self._buckets[client_id] = bucket
        else:
            self._buckets.move_to_end(client_id)
        ok, wait_seconds = bucket.try_acquire()
        if ok:
            self.allowed += 1
            return
        self.limited += 1
        raise HttpError(
            429,
            f"client {client_id!r} over its rate budget "
            f"({self.rate:g} requests/s)",
            retry_after_seconds=math.ceil(wait_seconds),
        )

    def stats(self) -> dict[str, Any]:
        return {
            "rate_per_second": self.rate,
            "burst": self.burst,
            "clients_tracked": len(self._buckets),
            "allowed": self.allowed,
            "limited": self.limited,
            "evictions": self.evictions,
        }


class AdmissionController:
    """Bounded concurrency + bounded queue, shedding beyond both.

    Use as an async context manager around the backend work::

        async with admission:   # may raise HttpError(503)
            ... compute ...
    """

    def __init__(
        self,
        max_inflight: int = 8,
        max_queue: int = 32,
        retry_after_seconds: float = 1.0,
    ) -> None:
        if max_inflight < 1:
            raise ServeError(
                f"max_inflight must be >= 1, got {max_inflight}"
            )
        if max_queue < 0:
            raise ServeError(f"max_queue must be >= 0, got {max_queue}")
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self.retry_after_seconds = retry_after_seconds
        self._semaphore = asyncio.Semaphore(max_inflight)
        self._inflight = 0
        self._queued = 0
        self._draining = False
        self.admitted = 0
        self.shed = 0
        self.peak_inflight = 0
        self.peak_queued = 0

    @property
    def inflight(self) -> int:
        return self._inflight

    @property
    def queued(self) -> int:
        return self._queued

    @property
    def draining(self) -> bool:
        return self._draining

    def begin_drain(self) -> None:
        """Shed every *new* admission with 503 from now on.

        Work already admitted (or queued) proceeds — graceful drain
        means in-flight requests complete while arrivals are turned
        away at the door with a ``Retry-After``.
        """
        self._draining = True

    async def __aenter__(self) -> "AdmissionController":
        if self._draining:
            self.shed += 1
            raise HttpError(
                503,
                "server is draining; retry against another instance",
                retry_after_seconds=self.retry_after_seconds,
            )
        if (
            self._inflight >= self.max_inflight
            and self._queued >= self.max_queue
        ):
            self.shed += 1
            raise HttpError(
                503,
                f"server overloaded ({self._inflight} in flight, "
                f"{self._queued} queued); try again later",
                retry_after_seconds=self.retry_after_seconds,
            )
        self._queued += 1
        self.peak_queued = max(self.peak_queued, self._queued)
        try:
            await self._semaphore.acquire()
        finally:
            self._queued -= 1
        self._inflight += 1
        self.peak_inflight = max(self.peak_inflight, self._inflight)
        self.admitted += 1
        return self

    async def __aexit__(self, *exc_info) -> None:
        self._inflight -= 1
        self._semaphore.release()

    def stats(self) -> dict[str, Any]:
        return {
            "max_inflight": self.max_inflight,
            "max_queue": self.max_queue,
            "inflight": self._inflight,
            "queued": self._queued,
            "admitted": self.admitted,
            "shed": self.shed,
            "peak_inflight": self.peak_inflight,
            "peak_queued": self.peak_queued,
            "draining": self._draining,
        }
