"""The front router: one listener, N shard processes behind it.

:class:`RouterApp` duck-types the :class:`~repro.serve.app.ReproApp`
surface the transport uses (``dispatch`` / ``begin_drain`` / ``close``
/ ``draining``), so the existing :class:`~repro.serve.server.ReproServer`
hosts it unchanged.  It owns the shard fleet end to end:

* **Spawn & supervise** — shard children come up via
  :func:`~repro.serve.shard.spawn_shard`; each child's ``sentinel`` fd
  is watched on the event loop and a shard that dies is respawned
  (its ``store:``/``synth:`` datasets re-register from the spec, so
  the replacement's cache re-warms itself).
* **Route** — dataset-addressed requests hash the dataset's SHA-256
  *fingerprint* (not its name) onto the :class:`~repro.serve.shard.HashRing`,
  so the same data always lands on the same shard's warm cache even
  when two names alias one upload.  ``/simulate`` and ``POST /jobs``
  hash their canonical parameter encoding; ``GET``/``DELETE
  /jobs/{id}`` follow the shard index embedded in the job id; dataset
  mutations (upload / generate) broadcast to every shard so the fleet
  stays replicated.
* **Proxy** — persistent keep-alive connections per shard
  (:class:`BackendPool`), bounded per-backend concurrency, and
  honest failure semantics: idempotent ``GET`` is retried once on a
  torn connection, anything else maps a backend failure to **503** +
  ``Retry-After`` rather than risk double-submitting a job.  Shard
  backpressure (429/503 and their ``Retry-After``) passes through
  unchanged — the router adds no second opinion.
* **Aggregate** — ``/statsz?fleet=1`` gathers every shard's
  ``/statsz?states=1`` and merges latency distributions through the
  estimators' own merge algebra (:mod:`repro.serve.stats`); ratio
  fields (``hit_rate``, ``batching_factor``) are recomputed from the
  merged counters, never averaged.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Any, Callable
from urllib.parse import urlencode

from repro.errors import ServeError
from repro.serve.http import (
    HttpError,
    HttpRequest,
    Response,
    error_body,
    json_body,
    read_response,
    render_request,
)
from repro.serve.shard import (
    HashRing,
    ShardConfig,
    ShardProcess,
    spawn_shard,
)
from repro.serve.stats import (
    ServerStats,
    merge_counter_dicts,
    merge_server_snapshots,
)

__all__ = ["BackendPool", "RouterApp", "run_router_in_thread"]

#: Hop-by-hop headers never forwarded in either direction.
_HOP_HEADERS = ("connection", "content-length", "host", "keep-alive")


class BackendPool:
    """Persistent keep-alive connections to one shard.

    Connections are pooled and reused across requests — the fix the
    benchmark satellite demands (a fresh TCP handshake per proxied
    request costs more than the analysis for cached hits).  At most
    ``limit`` requests are in flight to the backend at once; further
    senders queue on the semaphore, which is how shard backpressure
    propagates into the router instead of piling unbounded sockets
    onto a struggling child.
    """

    def __init__(
        self, host: str, port: int, limit: int = 16
    ) -> None:
        self.host = host
        self.port = port
        self.limit = limit
        self._idle: list[
            tuple[asyncio.StreamReader, asyncio.StreamWriter]
        ] = []
        self._semaphore = asyncio.Semaphore(limit)
        self._closed = False
        self.requests = 0
        self.reused = 0
        self.opened = 0
        self.retries = 0

    async def _connect(
        self,
    ) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        self.opened += 1
        return await asyncio.open_connection(self.host, self.port)

    async def request(
        self,
        method: str,
        target: str,
        headers: dict[str, str],
        body: bytes = b"",
    ) -> tuple[int, dict[str, str], bytes]:
        """Proxy one request; returns ``(status, headers, body)``.

        Raises:
            HttpError: 503 if the shard is unreachable or tears the
                connection on a non-idempotent request; 502 if it
                breaks HTTP framing.
        """
        if self._closed:
            raise HttpError(
                503,
                "shard is restarting; retry shortly",
                retry_after_seconds=1.0,
            )
        retriable = method == "GET"
        async with self._semaphore:
            self.requests += 1
            attempts = 0
            while True:
                attempts += 1
                fresh = not self._idle
                try:
                    if self._idle:
                        reader, writer = self._idle.pop()
                        self.reused += 1
                    else:
                        reader, writer = await self._connect()
                except OSError as error:
                    raise HttpError(
                        503,
                        f"shard at :{self.port} unreachable: {error}",
                        retry_after_seconds=1.0,
                    ) from None
                try:
                    writer.write(
                        render_request(
                            method, target, headers, body,
                            keep_alive=True,
                        )
                    )
                    await writer.drain()
                    status, response_headers, payload = (
                        await read_response(reader)
                    )
                except (
                    OSError,
                    asyncio.IncompleteReadError,
                    ConnectionResetError,
                ) as error:
                    writer.close()
                    # A torn *reused* connection usually means the
                    # shard idled it out — one retry on a fresh
                    # connection is safe for idempotent GETs.  A fresh
                    # connection failing, or a non-GET (retrying a
                    # POST /jobs could double-submit), is surfaced.
                    if retriable and not fresh and attempts == 1:
                        self.retries += 1
                        continue
                    raise HttpError(
                        503,
                        f"shard at :{self.port} dropped the "
                        f"connection: {type(error).__name__}",
                        retry_after_seconds=1.0,
                    ) from None
                if (
                    response_headers.get("connection", "keep-alive")
                    .lower()
                    != "close"
                    and not self._closed
                ):
                    self._idle.append((reader, writer))
                else:
                    writer.close()
                return status, response_headers, payload

    def close(self) -> None:
        self._closed = True
        while self._idle:
            _, writer = self._idle.pop()
            writer.close()

    def stats(self) -> dict[str, Any]:
        return {
            "port": self.port,
            "requests": self.requests,
            "connections_opened": self.opened,
            "connections_reused": self.reused,
            "retries": self.retries,
            "idle": len(self._idle),
        }


class RouterApp:
    """Route requests across a fleet of shard worker processes.

    Args:
        num_shards: Shard processes to spawn and keep alive.
        dataset_specs: CLI ``--datasets`` specs every shard registers
            (shards are shared-nothing replicas; routing is cache
            affinity, not partitioning).
        vnodes: Virtual nodes per shard on the hash ring.
        backend_limit: Max in-flight proxied requests per shard.
        ready_timeout: Seconds to wait for a shard's port handshake.
        respawn: Whether a dead shard is automatically replaced.
        shard_kwargs: Extra :class:`~repro.serve.shard.ShardConfig`
            fields (workers, cache_size, rate_per_second, …).
    """

    def __init__(
        self,
        num_shards: int,
        dataset_specs: tuple[str, ...] = (),
        *,
        host: str = "127.0.0.1",
        vnodes: int = 64,
        backend_limit: int = 16,
        ready_timeout: float = 60.0,
        respawn: bool = True,
        clock: Callable[[], float] = time.monotonic,
        **shard_kwargs: Any,
    ) -> None:
        if num_shards < 1:
            raise ServeError(
                f"num_shards must be >= 1, got {num_shards}"
            )
        self.num_shards = num_shards
        self.host = host
        self.ring = HashRing(num_shards, vnodes=vnodes)
        self.backend_limit = backend_limit
        self.ready_timeout = ready_timeout
        self.respawn = respawn
        self.draining = False
        self.stats = ServerStats(clock=clock)
        self._clock = clock
        self._configs = [
            ShardConfig(
                index=index,
                dataset_specs=tuple(dataset_specs),
                host=host,
                **shard_kwargs,
            )
            for index in range(num_shards)
        ]
        self._shards: dict[int, ShardProcess] = {}
        self._pools: dict[int, BackendPool] = {}
        self._respawning: set[int] = set()
        self._fingerprints: dict[str, str] = {}
        self._loop: asyncio.AbstractEventLoop | None = None
        self._started = False
        self._closing = False
        self.respawns_total = 0

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        """Spawn the fleet and learn the dataset fingerprint map."""
        if self._started:
            raise ServeError("router already started")
        self._started = True
        self._loop = asyncio.get_running_loop()
        spawned = await asyncio.gather(
            *(
                self._loop.run_in_executor(
                    None, spawn_shard, config, self.ready_timeout
                )
                for config in self._configs
            )
        )
        for shard in spawned:
            self._adopt(shard)
        await self._refresh_fingerprints()

    def _adopt(self, shard: ShardProcess) -> None:
        self._shards[shard.index] = shard
        self._pools[shard.index] = BackendPool(
            self.host, shard.port, limit=self.backend_limit
        )
        assert self._loop is not None
        self._loop.add_reader(
            shard.sentinel, self._on_shard_exit, shard
        )

    def _on_shard_exit(self, shard: ShardProcess) -> None:
        """Sentinel became readable: the child process exited."""
        assert self._loop is not None
        self._loop.remove_reader(shard.sentinel)
        current = self._shards.get(shard.index)
        if current is not shard or self._closing:
            return
        pool = self._pools.pop(shard.index, None)
        if pool is not None:
            pool.close()
        del self._shards[shard.index]
        if self.respawn and not self.draining:
            self._respawning.add(shard.index)
            self._loop.create_task(self._respawn(shard))

    async def _respawn(self, dead: ShardProcess) -> None:
        assert self._loop is not None
        try:
            replacement = await self._loop.run_in_executor(
                None, spawn_shard, dead.config, self.ready_timeout
            )
        except Exception:
            # The replacement refused to come up (e.g. the store file
            # vanished).  Leave the slot empty — requests for it shed
            # with 503 — rather than crash-loop the supervisor.
            return
        finally:
            self._respawning.discard(dead.index)
        if self._closing or self.draining:
            replacement.process.terminate()
            replacement.process.join(timeout=5.0)
            return
        replacement.respawns = dead.respawns + 1
        replacement.generation = dead.generation + 1
        self.respawns_total += 1
        self._adopt(replacement)

    def begin_drain(self) -> None:
        """Stop accepting compute; shards finish what they hold."""
        self.draining = True

    async def close(self) -> None:
        """Drain every shard (SIGTERM → graceful exit) and clean up."""
        self._closing = True
        self.draining = True
        if self._loop is None:
            return  # Never started; nothing to tear down.
        shards = list(self._shards.values())
        for shard in shards:
            self._loop.remove_reader(shard.sentinel)
            if shard.alive:
                shard.process.terminate()  # SIGTERM → shard drains.
        for pool in self._pools.values():
            pool.close()

        def join_all() -> None:
            for shard in shards:
                shard.process.join(timeout=15.0)
                if shard.process.is_alive():
                    shard.process.kill()
                    shard.process.join(timeout=5.0)

        await self._loop.run_in_executor(None, join_all)
        self._shards.clear()
        self._pools.clear()

    # -- routing ------------------------------------------------------------

    async def dispatch(self, request: HttpRequest) -> Response:
        started = self._clock()
        endpoint = "proxy"
        try:
            endpoint, response = await self._route(request)
        except HttpError as error:
            response = self._error_response(error)
        except ServeError as error:
            response = Response(400, error_body("ServeError", str(error)))
        except Exception as error:  # noqa: BLE001 — router must survive.
            response = Response(
                500, error_body(type(error).__name__, str(error))
            )
        self.stats.observe(
            endpoint, response.status, self._clock() - started
        )
        return response

    @staticmethod
    def _error_response(error: HttpError) -> Response:
        headers = {}
        if error.retry_after_seconds is not None:
            headers["Retry-After"] = (
                f"{max(1, round(error.retry_after_seconds))}"
            )
        return Response(
            error.status,
            error_body("HttpError", str(error)),
            headers,
        )

    async def _route(
        self, request: HttpRequest
    ) -> tuple[str, Response]:
        parts = [part for part in request.path.split("/") if part]
        method = request.method

        if not parts:
            return "index", self._index(request)
        head = parts[0]
        if head == "healthz" and len(parts) == 1:
            return "healthz", self._healthz()
        if head == "shards" and len(parts) == 1:
            return "shards", self._topology()
        if head == "statsz" and len(parts) == 1:
            if request.query.get("fleet") in ("1", "true"):
                return "statsz", await self._fleet_statsz()
            return "statsz", self._router_statsz()

        if self.draining:
            raise HttpError(
                503,
                "router is draining; retry against another instance",
                retry_after_seconds=1.0,
            )

        if head == "datasets" and len(parts) == 2 and method in (
            "POST",
            "PUT",
        ):
            return "datasets", await self._broadcast(request)
        if head == "generate" and len(parts) == 1:
            return "generate", await self._broadcast(request)
        if head == "datasets" and len(parts) == 2:
            name = parts[1]
            return "datasets", await self._proxy(
                self._shard_for_dataset(name), request
            )
        if head == "datasets" and len(parts) == 1:
            return "datasets", await self._proxy(
                self._any_shard(), request
            )
        if head == "analyze" and len(parts) == 3:
            return "analyze", await self._proxy(
                self._shard_for_dataset(parts[1]), request
            )
        if head == "simulate" and len(parts) == 1:
            return "simulate", await self._proxy(
                self._shard_for_body(request), request
            )
        if head == "jobs":
            if len(parts) == 1 and method == "POST":
                return "jobs", await self._proxy(
                    self._shard_for_body(request), request
                )
            if len(parts) == 1 and method == "GET":
                return "jobs", await self._list_jobs(request)
            if len(parts) == 2:
                return "jobs", await self._proxy(
                    self._shard_for_job(parts[1]), request
                )
        # Anything else: let a shard produce its canonical 404/405.
        return "proxy", await self._proxy(self._any_shard(), request)

    # -- shard selection ----------------------------------------------------

    def _alive_indices(self) -> list[int]:
        return sorted(self._shards)

    def _any_shard(self) -> int:
        alive = self._alive_indices()
        if not alive:
            raise HttpError(
                503,
                "no shard available",
                retry_after_seconds=1.0,
            )
        return alive[0]

    def _require_alive(self, index: int) -> int:
        if index not in self._shards:
            raise HttpError(
                503,
                f"shard {index} is restarting; retry shortly",
                retry_after_seconds=1.0,
            )
        return index

    def _shard_for_dataset(self, name: str) -> int:
        # Route by content fingerprint when known — two names bound to
        # the same upload share a shard (and its cache); fall back to
        # the name so unknown datasets still 404 deterministically.
        key = self._fingerprints.get(name, f"name:{name}")
        return self._require_alive(self.ring.shard_for(key))

    def _shard_for_body(self, request: HttpRequest) -> int:
        params = request.json()
        key = json.dumps(
            params, sort_keys=True, separators=(",", ":")
        )
        return self._require_alive(self.ring.shard_for(key))

    def _shard_for_job(self, job_id: str) -> int:
        # Job ids are minted as ``s{shard}-{seq}-{nonce}``.
        if job_id.startswith("s"):
            head = job_id[1:].split("-", 1)[0]
            if head.isdigit():
                index = int(head)
                if 0 <= index < self.num_shards:
                    return self._require_alive(index)
        raise HttpError(404, f"unknown job {job_id!r}")

    # -- proxying -----------------------------------------------------------

    @staticmethod
    def _forward_headers(request: HttpRequest) -> dict[str, str]:
        return {
            name: value
            for name, value in request.headers.items()
            if name not in _HOP_HEADERS
        }

    @staticmethod
    def _target(request: HttpRequest) -> str:
        if request.query:
            return f"{request.path}?{urlencode(request.query)}"
        return request.path

    @staticmethod
    def _to_response(
        status: int, headers: dict[str, str], body: bytes
    ) -> Response:
        passthrough = {}
        for name in ("retry-after", "x-cache", "x-shard"):
            if name in headers:
                # Re-title-case for cosmetic consistency on the wire.
                pretty = "-".join(
                    part.capitalize() for part in name.split("-")
                )
                passthrough[pretty] = headers[name]
        return Response(
            status,
            body,
            passthrough,
            content_type=headers.get(
                "content-type", "application/json"
            ),
        )

    async def _proxy(
        self, index: int, request: HttpRequest
    ) -> Response:
        pool = self._pools.get(index)
        if pool is None:
            raise HttpError(
                503,
                f"shard {index} is restarting; retry shortly",
                retry_after_seconds=1.0,
            )
        status, headers, body = await pool.request(
            request.method,
            self._target(request),
            self._forward_headers(request),
            request.body,
        )
        return self._to_response(status, headers, body)

    async def _broadcast(self, request: HttpRequest) -> Response:
        """Send one mutation to every shard; all must agree.

        Dataset uploads and ``/generate`` must land on the whole fleet
        (shards are replicas).  The slowest shard bounds the latency;
        a partial failure is reported as 502 with per-shard statuses
        so the operator knows the fleet diverged.
        """
        alive = self._alive_indices()
        if not alive:
            raise HttpError(
                503, "no shard available", retry_after_seconds=1.0
            )
        target = self._target(request)
        headers = self._forward_headers(request)
        results = await asyncio.gather(
            *(
                self._pools[index].request(
                    request.method, target, headers, request.body
                )
                for index in alive
            ),
            return_exceptions=True,
        )
        statuses: dict[int, int] = {}
        first: tuple[int, dict[str, str], bytes] | None = None
        for index, result in zip(alive, results):
            if isinstance(result, BaseException):
                statuses[index] = 503
                continue
            status, response_headers, body = result
            statuses[index] = status
            if first is None:
                first = (status, response_headers, body)
        assert first is not None
        agreed = len(set(statuses.values())) == 1
        if not agreed:
            return Response(
                502,
                json_body(
                    {
                        "error": {
                            "type": "BroadcastDiverged",
                            "message": (
                                "shards disagreed on a broadcast "
                                "mutation"
                            ),
                        },
                        "statuses": {
                            str(k): v
                            for k, v in sorted(statuses.items())
                        },
                    }
                ),
            )
        status, response_headers, body = first
        if status in (200, 201):
            self._learn_fingerprint(body)
        response = self._to_response(status, response_headers, body)
        response.headers["X-Broadcast"] = str(len(alive))
        return response

    def _learn_fingerprint(self, body: bytes) -> None:
        try:
            payload = json.loads(body)
        except ValueError:
            return
        name = payload.get("name")
        fingerprint = payload.get("fingerprint")
        if isinstance(name, str) and isinstance(fingerprint, str):
            self._fingerprints[name] = fingerprint

    async def _refresh_fingerprints(self) -> None:
        """Learn the name → fingerprint map from one live shard."""
        alive = self._alive_indices()
        if not alive:
            return
        pool = self._pools[alive[0]]
        status, _, body = await pool.request(
            "GET", "/statsz", {}
        )
        if status != 200:
            return
        try:
            payload = json.loads(body)
        except ValueError:
            return
        datasets = payload.get("datasets")
        if isinstance(datasets, dict):
            self._fingerprints.update(
                {
                    name: fingerprint
                    for name, fingerprint in datasets.items()
                    if isinstance(fingerprint, str)
                }
            )

    # -- aggregation endpoints ---------------------------------------------

    async def _list_jobs(self, request: HttpRequest) -> Response:
        """Fan ``GET /jobs`` out and concatenate per-shard lists."""
        alive = self._alive_indices()
        target = self._target(request)
        headers = self._forward_headers(request)
        results = await asyncio.gather(
            *(
                self._pools[index].request(
                    "GET", target, headers
                )
                for index in alive
            ),
            return_exceptions=True,
        )
        jobs: list[Any] = []
        reachable = 0
        for result in results:
            if isinstance(result, BaseException):
                continue
            status, _, body = result
            if status != 200:
                continue
            try:
                payload = json.loads(body)
            except ValueError:
                continue
            reachable += 1
            jobs.extend(payload.get("jobs", []))
        jobs.sort(key=lambda job: str(job.get("id", "")))
        return Response(
            200,
            json_body({"jobs": jobs, "shards": reachable}),
        )

    async def _fleet_statsz(self) -> Response:
        """Merge every shard's ``/statsz?states=1`` into one view."""
        alive = self._alive_indices()
        results = await asyncio.gather(
            *(
                self._pools[index].request(
                    "GET", "/statsz?states=1", {}
                )
                for index in alive
            ),
            return_exceptions=True,
        )
        payloads: list[dict] = []
        reporting: list[int] = []
        for index, result in zip(alive, results):
            if isinstance(result, BaseException):
                continue
            status, _, body = result
            if status != 200:
                continue
            try:
                payload = json.loads(body)
            except ValueError:
                continue
            payloads.append(payload)
            reporting.append(index)

        def section(key: str) -> list[dict]:
            return [
                p[key]
                for p in payloads
                if isinstance(p.get(key), dict)
            ]

        cache = merge_counter_dicts(section("cache"))
        # Ratio fields are NOT counters: recompute them from the
        # merged numerators/denominators instead of summing ratios.
        hits = cache.get("hits", 0)
        misses = cache.get("misses", 0)
        cache["hit_rate"] = round(
            hits / (hits + misses) if hits + misses else 0.0, 6
        )
        batcher = merge_counter_dicts(section("batcher"))
        batches = batcher.get("batches", 0)
        batcher["batching_factor"] = round(
            batcher.get("items", 0) / batches if batches else 0.0, 4
        )
        fleet = {
            "fleet": True,
            "shards_total": self.num_shards,
            "shards_reporting": reporting,
            "respawns_total": self.respawns_total,
            "server": merge_server_snapshots(section("server")),
            "cache": cache,
            "singleflight": merge_counter_dicts(
                section("singleflight")
            ),
            "batcher": batcher,
            "admission": merge_counter_dicts(section("admission")),
            "jobs": merge_counter_dicts(section("jobs")),
            "datasets": dict(sorted(self._fingerprints.items())),
            "router": self._router_payload(),
        }
        return Response(200, json_body(fleet))

    # -- local endpoints ----------------------------------------------------

    def _router_payload(self) -> dict[str, Any]:
        return {
            "server": self.stats.snapshot(),
            "backends": {
                str(index): pool.stats()
                for index, pool in sorted(self._pools.items())
            },
            "respawns_total": self.respawns_total,
        }

    def _router_statsz(self) -> Response:
        payload = self._router_payload()
        payload["hint"] = (
            "pass ?fleet=1 for the merged per-shard view"
        )
        return Response(200, json_body(payload))

    def _healthz(self) -> Response:
        alive = self._alive_indices()
        degraded = len(alive) < self.num_shards
        status = (
            "draining"
            if self.draining
            else ("degraded" if degraded else "ok")
        )
        return Response(
            200,
            json_body(
                {
                    "status": status,
                    "role": "router",
                    "shards_total": self.num_shards,
                    "shards_alive": alive,
                    "respawning": sorted(self._respawning),
                    "uptime_seconds": self.stats.uptime_seconds,
                    "requests_total": self.stats.requests_total,
                }
            ),
        )

    def _topology(self) -> Response:
        shards = []
        for index in range(self.num_shards):
            shard = self._shards.get(index)
            if shard is None:
                shards.append(
                    {
                        "index": index,
                        "alive": False,
                        "respawning": index in self._respawning,
                    }
                )
            else:
                shards.append(
                    {
                        "index": index,
                        "alive": shard.alive,
                        "port": shard.port,
                        "pid": shard.process.pid,
                        "respawns": shard.respawns,
                        "generation": shard.generation,
                    }
                )
        return Response(
            200,
            json_body(
                {
                    "num_shards": self.num_shards,
                    "vnodes": self.ring.vnodes,
                    "shards": shards,
                }
            ),
        )

    def _index(self, request: HttpRequest) -> Response:
        return Response(
            200,
            json_body(
                {
                    "service": "repro.serve.router",
                    "description": (
                        "consistent-hashing front router over "
                        f"{self.num_shards} analysis shards"
                    ),
                    "endpoints": [
                        "GET /healthz",
                        "GET /statsz",
                        "GET /statsz?fleet=1",
                        "GET /shards",
                        "… every shard endpoint, proxied",
                    ],
                }
            ),
        )


def run_router_in_thread(
    router: RouterApp,
    host: str = "127.0.0.1",
    port: int = 0,
    drain_timeout: float = 10.0,
) -> "ServerHandle":
    """Start router + shard fleet on a daemon thread; return handle.

    The sharded sibling of :func:`repro.serve.server.run_in_thread`:
    the fleet is spawned (and every shard's port handshake completed)
    before this returns, so the handle's port serves immediately.
    Startup failures — a shard that cannot register its datasets, a
    busy port — re-raise in the caller.
    """
    import threading

    from repro.serve.server import ReproServer, ServerHandle

    server = ReproServer(
        router, host=host, port=port, drain_timeout=drain_timeout
    )
    started: "threading.Event" = threading.Event()
    box: dict[str, Any] = {}

    def runner() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        box["loop"] = loop
        try:
            loop.run_until_complete(router.start())
            loop.run_until_complete(server.start())
        except BaseException as error:
            box["error"] = error
            try:
                loop.run_until_complete(router.close())
            except BaseException:
                pass
            started.set()
            loop.close()
            return
        started.set()
        try:
            loop.run_forever()
        finally:
            loop.close()

    thread = threading.Thread(
        target=runner, name="repro-router", daemon=True
    )
    thread.start()
    started.wait()
    if "error" in box:
        raise box["error"]
    return ServerHandle(server=server, loop=box["loop"], thread=thread)
