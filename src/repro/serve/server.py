"""The asyncio transport: sockets in, :class:`ReproApp` verdicts out.

Dependency-free by design — ``asyncio.start_server`` plus the minimal
HTTP/1.1 codec in :mod:`repro.serve.http`.  The server owns connection
lifecycle (keep-alive, malformed-request rejection, quiet handling of
client disconnects) and graceful shutdown: :meth:`ReproServer.stop`
stops accepting, lets in-flight requests finish (bounded by
``drain_timeout``), then closes whatever remains.

:func:`run_in_thread` runs a server on a private event loop in a
daemon thread — how the test-suite, the benchmark, and the example
client stand up a real socket without owning a loop themselves.
"""

from __future__ import annotations

import asyncio
import threading
from dataclasses import dataclass
from typing import Any

from repro.errors import ServeError
from repro.serve.app import ReproApp
from repro.serve.http import (
    HttpError,
    Response,
    error_body,
    read_request,
    render_response,
)

__all__ = ["ReproServer", "ServerHandle", "run_in_thread"]


class ReproServer:
    """Serve a :class:`ReproApp` over TCP.

    Args:
        app: The application to dispatch requests into.
        host: Bind address.
        port: Bind port; ``0`` picks an ephemeral port (read it back
            from :attr:`port` after :meth:`start`).
        drain_timeout: Seconds :meth:`stop` waits for in-flight
            requests before force-closing connections.
    """

    def __init__(
        self,
        app: ReproApp,
        host: str = "127.0.0.1",
        port: int = 0,
        drain_timeout: float = 10.0,
    ) -> None:
        self.app = app
        self.host = host
        self.port = port
        self.drain_timeout = drain_timeout
        self._server: asyncio.Server | None = None
        self._inflight = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._stopped = asyncio.Event()
        self._writers: set[asyncio.StreamWriter] = set()

    async def start(self) -> None:
        """Bind and begin accepting connections.

        Raises:
            OSError: If the address cannot be bound (port in use,
                privileged port, bad interface).
        """
        if self._server is not None:
            raise ServeError("server already started")
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sockets = self._server.sockets or ()
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def wait_stopped(self) -> None:
        """Block until :meth:`stop` has completed."""
        await self._stopped.wait()

    async def stop(self) -> None:
        """Graceful shutdown: drain in-flight work, then close.

        New connections are refused immediately; ``/healthz`` flips to
        ``draining`` for anything already connected; in-flight
        requests get up to ``drain_timeout`` seconds to finish.
        """
        self.app.begin_drain()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        try:
            await asyncio.wait_for(
                self._idle.wait(), timeout=self.drain_timeout
            )
        except asyncio.TimeoutError:
            pass
        await self.app.close()
        for writer in list(self._writers):
            writer.close()
        self._stopped.set()

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self._writers.add(writer)
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HttpError as error:
                    writer.write(
                        render_response(
                            Response(
                                error.status,
                                error_body("HttpError", str(error)),
                            ),
                            keep_alive=False,
                        )
                    )
                    await writer.drain()
                    return
                except asyncio.IncompleteReadError:
                    return  # Client hung up mid-request.
                if request is None:
                    return  # Clean EOF between requests.
                self._inflight += 1
                self._idle.clear()
                try:
                    response = await self.app.dispatch(request)
                finally:
                    self._inflight -= 1
                    if self._inflight == 0:
                        self._idle.set()
                keep = request.keep_alive and not self.app.draining
                writer.write(render_response(response, keep_alive=keep))
                await writer.drain()
                if not keep:
                    return
        except (
            ConnectionResetError,
            BrokenPipeError,
            TimeoutError,
        ):
            pass  # Client went away; nothing to report.
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass


@dataclass
class ServerHandle:
    """A server running on a background thread's private loop."""

    server: ReproServer
    loop: asyncio.AbstractEventLoop
    thread: threading.Thread

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def app(self) -> ReproApp:
        return self.server.app

    def stop(self, timeout: float = 30.0) -> None:
        """Gracefully stop the server and join its thread."""
        if not self.thread.is_alive():
            return
        asyncio.run_coroutine_threadsafe(
            self.server.stop(), self.loop
        ).result(timeout)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


def run_in_thread(
    app: ReproApp,
    host: str = "127.0.0.1",
    port: int = 0,
    drain_timeout: float = 10.0,
) -> ServerHandle:
    """Start a server on a daemon thread and return its handle.

    Blocks until the socket is bound (so :attr:`ServerHandle.port` is
    valid on return) and re-raises any startup failure — a busy port
    surfaces as ``OSError`` in the caller, not a dead thread.
    """
    server = ReproServer(
        app, host=host, port=port, drain_timeout=drain_timeout
    )
    started: "threading.Event" = threading.Event()
    box: dict[str, Any] = {}

    def runner() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        box["loop"] = loop
        try:
            loop.run_until_complete(server.start())
        except BaseException as error:  # Propagate bind failures.
            box["error"] = error
            started.set()
            loop.close()
            return
        started.set()
        try:
            loop.run_forever()
        finally:
            loop.close()

    thread = threading.Thread(
        target=runner, name="repro-serve", daemon=True
    )
    thread.start()
    started.wait()
    if "error" in box:
        raise box["error"]
    return ServerHandle(server=server, loop=box["loop"], thread=thread)
