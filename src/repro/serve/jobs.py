"""Priority job queue for asynchronous ``/simulate`` submissions.

Synchronous ``POST /simulate`` holds the connection open for the whole
ensemble; the job queue decouples submission from execution so a
client can enqueue expensive what-ifs and poll:

* ``POST /jobs`` parks a simulate request and answers **202** with a
  job id immediately.
* Jobs carry an integer **priority** (higher runs first; FIFO within
  a priority level) and drain through the same micro-batcher → warm
  :mod:`repro.parallel` pool path the synchronous endpoint uses, so a
  burst of queued jobs still costs one pool dispatch per batch.
* ``DELETE /jobs/{id}`` cancels a *queued* job; a *running* job is
  past the point of no return (it is executing inside pool workers)
  and the delete is refused with 409.  Every cancellation records who
  asked (``cancel_reason``) — client cancellations and server drains
  are distinguishable in the job's terminal state.
* Results land in the shared result cache under the same key the
  synchronous endpoint would use, so a later ``POST /simulate`` with
  identical parameters is a byte-identical cache hit.

Job ids embed the owning shard (``s{shard}-…``) so a sharded
deployment's router can route ``GET``/``DELETE /jobs/{id}`` back to
the process that holds the job without a shared job store.

Terminal states are exactly one of ``done`` / ``failed`` /
``cancelled``; a job is never lost (executor crashes surface as
``failed`` with the exception attributed) and never duplicated (the
queue pops each entry once) — the chaos suite drives pool-worker
crashes through this contract.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
import os
import time
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable

from repro.errors import ServeError

__all__ = ["JOB_STATES", "Job", "JobConflict", "JobQueue"]

#: Every state a job can report; the last three are terminal.
JOB_STATES = (
    "queued",
    "running",
    "done",
    "failed",
    "cancelled",
)


class JobConflict(ServeError):
    """The requested transition is not legal for the job's state."""


@dataclass
class Job:
    """One asynchronous simulate submission."""

    id: str
    params: dict[str, Any]
    priority: int
    seq: int
    submitted_at: float
    status: str = "queued"
    started_at: float | None = None
    finished_at: float | None = None
    cancel_reason: str | None = None
    error: dict[str, str] | None = None
    result: bytes | None = field(default=None, repr=False)
    cached: bool = False

    @property
    def terminal(self) -> bool:
        return self.status in ("done", "failed", "cancelled")

    def describe(self) -> dict[str, Any]:
        """JSON-friendly job record (without the result payload)."""
        payload: dict[str, Any] = {
            "id": self.id,
            "status": self.status,
            "priority": self.priority,
            "params": self.params,
        }
        if self.started_at is not None:
            payload["queued_seconds"] = (
                self.started_at - self.submitted_at
            )
        if self.finished_at is not None and self.started_at is not None:
            payload["run_seconds"] = (
                self.finished_at - self.started_at
            )
        if self.cancel_reason is not None:
            payload["cancel_reason"] = self.cancel_reason
        if self.error is not None:
            payload["error"] = self.error
        if self.status == "done":
            payload["cached"] = self.cached
        return payload


class JobQueue:
    """Priority queue + runner tasks over an async executor.

    Args:
        execute: Async callable turning one job's params into result
            bytes; receives ``(params, job)`` and may set
            ``job.cached``.  Exceptions mark the job ``failed``.
        shard_index: Embedded in job ids for router affinity.
        concurrency: Runner tasks draining the queue.  More than one
            lets concurrent jobs micro-batch into a single warm-pool
            dispatch; exactly one gives strict priority order.
        retention: Terminal jobs kept for polling; the oldest-finished
            are forgotten beyond this.
        clock: Injectable monotonic clock.
    """

    def __init__(
        self,
        execute: Callable[[dict[str, Any], "Job"], Awaitable[bytes]],
        *,
        shard_index: int = 0,
        concurrency: int = 2,
        retention: int = 512,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if concurrency < 1:
            raise ServeError(
                f"concurrency must be >= 1, got {concurrency}"
            )
        if retention < 1:
            raise ServeError(f"retention must be >= 1, got {retention}")
        self._execute = execute
        self.shard_index = shard_index
        self.concurrency = concurrency
        self.retention = retention
        self._clock = clock
        self._jobs: dict[str, Job] = {}
        self._heap: list[tuple[int, int, str]] = []
        self._finished_order: list[str] = []
        self._seq = itertools.count()
        self._wakeup: asyncio.Event | None = None
        self._runners: list[asyncio.Task] = []
        self._running: set[str] = set()
        self._closed = False
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.cancelled = 0
        self.peak_queued = 0

    # -- submission and lookup ---------------------------------------------

    def submit(self, params: dict[str, Any], priority: int = 0) -> Job:
        """Enqueue one job; returns it in ``queued`` state.

        Raises:
            ServeError: Once the queue is draining/closed.
        """
        if self._closed:
            raise ServeError("job queue is closed (server draining)")
        seq = next(self._seq)
        job = Job(
            id=f"s{self.shard_index}-{seq:06d}-{os.urandom(4).hex()}",
            params=dict(params),
            priority=priority,
            seq=seq,
            submitted_at=self._clock(),
        )
        self._jobs[job.id] = job
        # heapq is a min-heap: negate priority so higher runs first,
        # seq breaks ties FIFO.
        heapq.heappush(self._heap, (-priority, seq, job.id))
        self.submitted += 1
        self.peak_queued = max(self.peak_queued, self.queued)
        self._ensure_runners()
        if self._wakeup is not None:
            self._wakeup.set()
        return job

    def get(self, job_id: str) -> Job:
        """Look a job up.

        Raises:
            ServeError: For an unknown (or forgotten) job id.
        """
        try:
            return self._jobs[job_id]
        except KeyError:
            raise ServeError(f"unknown job {job_id!r}") from None

    def list(
        self, status: str | None = None, limit: int = 100
    ) -> list[Job]:
        """Most-recently-submitted jobs, optionally filtered."""
        jobs = sorted(
            self._jobs.values(), key=lambda job: -job.seq
        )
        if status is not None:
            jobs = [job for job in jobs if job.status == status]
        return jobs[:limit]

    @property
    def queued(self) -> int:
        return sum(
            1 for job in self._jobs.values() if job.status == "queued"
        )

    @property
    def running(self) -> int:
        return len(self._running)

    # -- cancellation -------------------------------------------------------

    def cancel(self, job_id: str, reason: str = "client request") -> Job:
        """Cancel a queued job, attributing the cancellation.

        Raises:
            ServeError: Unknown job id.
            JobConflict: The job is running (execution is already
                inside pool workers) or already terminal.
        """
        job = self.get(job_id)
        if job.status == "running":
            raise JobConflict(
                f"job {job_id!r} is running and cannot be cancelled"
            )
        if job.terminal:
            raise JobConflict(
                f"job {job_id!r} already {job.status}"
            )
        self._finish(job, "cancelled", cancel_reason=reason)
        return job

    def drain(self, reason: str = "server drain") -> int:
        """Refuse new submissions and cancel everything still queued.

        Running jobs are left to finish (:meth:`close` awaits them).
        Returns the number of jobs cancelled.
        """
        self._closed = True
        drained = 0
        for job in list(self._jobs.values()):
            if job.status == "queued":
                self._finish(job, "cancelled", cancel_reason=reason)
                drained += 1
        if self._wakeup is not None:
            self._wakeup.set()
        return drained

    async def close(self, timeout: float = 30.0) -> None:
        """Drain queued jobs, await running ones, stop the runners."""
        self.drain()
        deadline = self._clock() + timeout
        while self._running and self._clock() < deadline:
            await asyncio.sleep(0.01)
        for task in self._runners:
            task.cancel()
        for task in self._runners:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._runners.clear()

    # -- execution ----------------------------------------------------------

    def _ensure_runners(self) -> None:
        loop = asyncio.get_running_loop()
        if self._wakeup is None:
            self._wakeup = asyncio.Event()
        self._runners = [
            task for task in self._runners if not task.done()
        ]
        while len(self._runners) < self.concurrency:
            self._runners.append(loop.create_task(self._run()))

    def _pop_next(self) -> Job | None:
        while self._heap:
            _, _, job_id = heapq.heappop(self._heap)
            job = self._jobs.get(job_id)
            # Cancelled (or forgotten) entries stay in the heap until
            # popped; skip them here.
            if job is not None and job.status == "queued":
                return job
        return None

    async def _run(self) -> None:
        assert self._wakeup is not None
        while True:
            job = self._pop_next()
            if job is None:
                if self._closed:
                    return
                self._wakeup.clear()
                await self._wakeup.wait()
                continue
            job.status = "running"
            job.started_at = self._clock()
            self._running.add(job.id)
            try:
                job.result = await self._execute(job.params, job)
            except asyncio.CancelledError:
                # Runner torn down mid-flight (loop shutdown): the
                # job did not finish — record that, don't lose it.
                self._finish(
                    job, "failed",
                    error={
                        "type": "CancelledError",
                        "message": "server shut down mid-execution",
                    },
                )
                raise
            except Exception as error:
                self._finish(
                    job, "failed",
                    error={
                        "type": type(error).__name__,
                        "message": str(error)[:300],
                    },
                )
            else:
                self._finish(job, "done")
            finally:
                self._running.discard(job.id)

    def _finish(
        self,
        job: Job,
        status: str,
        *,
        error: dict[str, str] | None = None,
        cancel_reason: str | None = None,
    ) -> None:
        job.status = status
        job.finished_at = self._clock()
        job.error = error
        job.cancel_reason = cancel_reason
        if status == "done":
            self.completed += 1
        elif status == "failed":
            self.failed += 1
        elif status == "cancelled":
            self.cancelled += 1
        self._finished_order.append(job.id)
        while len(self._finished_order) > self.retention:
            forgotten = self._finished_order.pop(0)
            stale = self._jobs.get(forgotten)
            if stale is not None and stale.terminal:
                del self._jobs[forgotten]

    def stats(self) -> dict[str, Any]:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "queued": self.queued,
            "running": self.running,
            "peak_queued": self.peak_queued,
            "retention": self.retention,
            "concurrency": self.concurrency,
        }
