"""Dataset registry: named failure logs the service analyzes.

Every query endpoint addresses data by *handle* (``/analyze/t2/...``)
rather than by path, so the service decides once — at registration —
how a log is loaded, validated, and fingerprinted.  Handles come from
four places: files (via :func:`repro.io.read_log`, same tolerant
ingest modes as the CLI), synthesis (:func:`repro.synth.generate_log`,
the calibrated paper logs), persistent stores
(:func:`repro.store.open_store`, opened lazily with materialized
analytics), and uploads (the ``POST /datasets`` endpoint).

The fingerprint keys the result cache, so replacing a handle's data
invalidates its cached results implicitly (old keys simply stop being
generated).  Fingerprints are a function of the *stored* data, never
of process state: file handles hash the file bytes
(:func:`fingerprint_file`), store handles reuse the store's committed
manifest fingerprint, and in-memory logs hash their full content
(:func:`fingerprint_log`) — so the same bytes on disk produce the
same cache keys across restarts, which is what makes warm restarts
byte-identical.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from datetime import datetime
from pathlib import Path
from typing import Any, Callable

from repro.core.records import FailureLog
from repro.errors import ServeError, ValidationError
from repro.io import read_log
from repro.io.tolerant import LogReadReport
from repro.machines.specs import known_machines
from repro.synth import GeneratorConfig, generate_log

__all__ = [
    "fingerprint_file",
    "fingerprint_log",
    "Dataset",
    "DatasetRegistry",
    "parse_dataset_spec",
    "register_from_spec",
]


def fingerprint_log(log: FailureLog) -> str:
    """Content hash of a failure log (hex SHA-256).

    Hashes the machine, observation window, and every record field, so
    two logs fingerprint equal iff they carry the same data — however
    they were loaded.
    """
    digest = hashlib.sha256()
    digest.update(
        f"{log.machine}|{log.window_start.isoformat()}"
        f"|{log.window_end.isoformat()}|{len(log)}\n".encode()
    )
    for record in log:
        digest.update(
            f"{record.record_id}|{record.timestamp.isoformat()}"
            f"|{record.node_id}|{record.category}|{record.ttr_hours!r}"
            f"|{record.gpus_involved}|{record.root_locus}\n".encode()
        )
    return digest.hexdigest()


def fingerprint_file(path: str | Path) -> str:
    """Content hash of a file's raw bytes (hex SHA-256).

    The fingerprint of a file-backed dataset: a pure function of the
    bytes on disk, so restarting the process (or loading the same
    file in another process) yields the same cache keys and therefore
    byte-identical cache behavior.  Parsing does not enter into it —
    what you fingerprint is what you stored.
    """
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


@dataclass(frozen=True)
class Dataset:
    """One registered log: handle + data + provenance.

    The log itself may be lazy: store-backed handles carry a loader
    instead of a materialized :class:`FailureLog`, so registering (and
    describing, and serving materialized analytics for) a store never
    pays an O(rows) read — ``.log`` materializes on first access and
    is cached on the handle.
    """

    name: str
    fingerprint: str
    source: str
    _log: FailureLog | None = field(default=None, repr=False)
    _loader: Callable[[], FailureLog] | None = field(
        default=None, repr=False
    )
    _materialized: Callable[[], dict[str, Any]] | None = field(
        default=None, repr=False
    )
    _summary: dict[str, Any] | None = field(default=None, repr=False)

    @property
    def log(self) -> FailureLog:
        """The dataset's failure log (materialized on first access)."""
        if self._log is None:
            object.__setattr__(self, "_log", self._loader())
        return self._log

    def materialized(self, analysis: str) -> dict[str, Any] | None:
        """Pre-computed payload for ``analysis``, or None.

        Store-backed datasets maintain their analytics incrementally
        on append (:mod:`repro.store.views`); serving reads them here
        instead of re-running the cold kernels.  None means "compute
        it" — either the dataset has no materialized views at all, or
        this one analysis is unavailable (e.g. lenient taxonomy).
        """
        if self._materialized is None:
            return None
        return self._materialized().get(analysis)

    def describe(self) -> dict[str, Any]:
        """JSON-friendly summary for the ``/datasets`` endpoints."""
        if self._summary is not None:
            summary = dict(self._summary)
        else:
            log = self.log
            summary = {
                "machine": log.machine,
                "failures": len(log),
                "window_start": log.window_start.isoformat(),
                "window_end": log.window_end.isoformat(),
                "span_hours": log.span_hours,
            }
        summary["name"] = self.name
        summary["fingerprint"] = self.fingerprint
        summary["source"] = self.source
        return summary


class DatasetRegistry:
    """Named :class:`FailureLog` handles for the service."""

    def __init__(self) -> None:
        self._datasets: dict[str, Dataset] = {}

    def __len__(self) -> int:
        return len(self._datasets)

    def __contains__(self, name: str) -> bool:
        return name in self._datasets

    def names(self) -> list[str]:
        """Registered handles, sorted."""
        return sorted(self._datasets)

    def get(self, name: str) -> Dataset:
        """Look a handle up.

        Raises:
            ServeError: For an unknown handle.
        """
        try:
            return self._datasets[name]
        except KeyError:
            known = ", ".join(self.names()) or "none registered"
            raise ServeError(
                f"unknown dataset {name!r} (known: {known})"
            ) from None

    @staticmethod
    def _check_name(name: str) -> None:
        if not name or "/" in name:
            raise ServeError(
                f"invalid dataset name {name!r} (must be non-empty, "
                f"no '/')"
            )

    def register(
        self,
        name: str,
        log: FailureLog,
        source: str,
        fingerprint: str | None = None,
    ) -> Dataset:
        """Register (or replace) a handle with an in-memory log.

        ``fingerprint`` overrides the default content hash when the
        caller has a cheaper restart-stable identity (file bytes, a
        store manifest).
        """
        self._check_name(name)
        dataset = Dataset(
            name=name,
            fingerprint=fingerprint or fingerprint_log(log),
            source=source,
            _log=log,
        )
        self._datasets[name] = dataset
        return dataset

    def load(
        self,
        name: str,
        path: str | Path,
        format: str | None = None,
        on_error: str = "raise",
    ) -> Dataset:
        """Register a handle from a log file on disk.

        ``format``/``on_error`` have :func:`repro.io.read_log`
        semantics; in ``"collect"`` mode quarantined rows are dropped
        and only the clean log is registered.  The fingerprint hashes
        the file's raw bytes (:func:`fingerprint_file`), so reloading
        the same file — in this process or the next one — reuses every
        cached result.
        """
        loaded = read_log(path, format=format, on_error=on_error)
        log = loaded.log if isinstance(loaded, LogReadReport) else loaded
        return self.register(
            name,
            log,
            source=f"file:{path}",
            fingerprint=fingerprint_file(path),
        )

    def register_store(
        self,
        name: str,
        path: str | Path,
        as_of: datetime | None = None,
    ) -> Dataset:
        """Register a handle backed by a persistent event store.

        The handle is *lazy*: registration opens the store (an O(1)
        manifest read plus checksum verification), adopts the store's
        committed fingerprint, and defers log materialization until a
        caller actually needs records.  Analytics come from the
        store's incrementally-materialized views
        (:meth:`Dataset.materialized`), which is what makes a serve
        restart over a ``store:`` spec warm: same manifest, same
        fingerprint, same payload bytes, no recomputation.

        Raises:
            StoreError: If the path is not a store, is corrupt beyond
                recovery, or ``as_of`` predates the store's window.
        """
        from repro.store import open_store

        self._check_name(name)
        store = open_store(path, as_of=as_of)
        from repro.store.segments import us_to_datetime

        source = f"store:{path}"
        if as_of is not None:
            source += f"@{as_of.isoformat()}"
        start_us = store.manifest["window_start_us"]
        if start_us is None:
            summary: dict[str, Any] = {
                "machine": store.machine,
                "failures": 0,
                "window_start": None,
                "window_end": None,
                "span_hours": 0.0,
            }
        else:
            end_us = store._window_end_us
            summary = {
                "machine": store.machine,
                "failures": store.rows,
                "window_start": us_to_datetime(start_us).isoformat(),
                "window_end": us_to_datetime(end_us).isoformat(),
                "span_hours": (end_us - start_us) / 1e6 / 3600.0,
            }
        dataset = Dataset(
            name=name,
            fingerprint=store.fingerprint,
            source=source,
            _loader=store.log,
            _materialized=store.payloads,
            _summary=summary,
        )
        self._datasets[name] = dataset
        return dataset

    def synthesize(
        self,
        name: str,
        machine: str,
        seed: int = 0,
        failures: int | None = None,
    ) -> Dataset:
        """Register a calibrated synthetic log for ``machine``."""
        if machine not in known_machines():
            raise ServeError(
                f"unknown machine {machine!r} "
                f"(known: {', '.join(known_machines())})"
            )
        config = GeneratorConfig(seed=seed, num_failures=failures)
        log = generate_log(machine, config=config)
        source = f"synth:{machine}:seed={seed}"
        if failures is not None:
            source += f":failures={failures}"
        return self.register(name, log, source=source)


def parse_dataset_spec(spec: str) -> tuple[str, str]:
    """Split one ``--datasets`` item into ``(name, location)``.

    Grammar: ``NAME=LOCATION`` where ``LOCATION`` is a log file path,
    ``synth:MACHINE[:SEED[:FAILURES]]``, or ``store:PATH`` (a
    :mod:`repro.store` directory, registered lazily with warm
    materialized analytics).

    Raises:
        ValidationError: On a malformed spec.
    """
    name, sep, location = spec.partition("=")
    name, location = name.strip(), location.strip()
    if not sep or not name or not location:
        raise ValidationError(
            f"malformed dataset spec {spec!r} (expected NAME=PATH, "
            f"NAME=synth:MACHINE[:SEED[:FAILURES]], or "
            f"NAME=store:PATH)"
        )
    return name, location


def register_from_spec(
    registry: DatasetRegistry, spec: str
) -> Dataset:
    """Register one CLI ``--datasets`` spec into ``registry``.

    Raises:
        ValidationError: On a malformed spec.
        ServeError: On an unknown machine in a synth spec.
        StoreError: On an unopenable ``store:`` location.
        OSError: If a file location cannot be read.
    """
    name, location = parse_dataset_spec(spec)
    if location.startswith("store:"):
        return registry.register_store(
            name, location[len("store:"):]
        )
    if location.startswith("synth:"):
        parts = location.split(":")
        machine = parts[1] if len(parts) > 1 else ""
        try:
            seed = int(parts[2]) if len(parts) > 2 else 0
            failures = int(parts[3]) if len(parts) > 3 else None
        except ValueError:
            raise ValidationError(
                f"malformed synth spec {location!r} (seed and "
                f"failures must be integers)"
            ) from None
        if len(parts) > 4:
            raise ValidationError(
                f"malformed synth spec {location!r} (too many fields)"
            )
        return registry.synthesize(
            name, machine, seed=seed, failures=failures
        )
    return registry.load(name, location)
