"""Dataset registry: named failure logs the service analyzes.

Every query endpoint addresses data by *handle* (``/analyze/t2/...``)
rather than by path, so the service decides once — at registration —
how a log is loaded, validated, and fingerprinted.  Handles come from
three places: files (via :func:`repro.io.read_log`, same tolerant
ingest modes as the CLI), synthesis (:func:`repro.synth.generate_log`,
the calibrated paper logs), and uploads (the ``POST /datasets``
endpoint).

The fingerprint is a SHA-256 over the log's full content; it keys the
result cache, so replacing a handle's data invalidates its cached
results implicitly (old keys simply stop being generated).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.core.records import FailureLog
from repro.errors import ServeError, ValidationError
from repro.io import read_log
from repro.io.tolerant import LogReadReport
from repro.machines.specs import known_machines
from repro.synth import GeneratorConfig, generate_log

__all__ = [
    "fingerprint_log",
    "Dataset",
    "DatasetRegistry",
    "parse_dataset_spec",
    "register_from_spec",
]


def fingerprint_log(log: FailureLog) -> str:
    """Content hash of a failure log (hex SHA-256).

    Hashes the machine, observation window, and every record field, so
    two logs fingerprint equal iff they carry the same data — however
    they were loaded.
    """
    digest = hashlib.sha256()
    digest.update(
        f"{log.machine}|{log.window_start.isoformat()}"
        f"|{log.window_end.isoformat()}|{len(log)}\n".encode()
    )
    for record in log:
        digest.update(
            f"{record.record_id}|{record.timestamp.isoformat()}"
            f"|{record.node_id}|{record.category}|{record.ttr_hours!r}"
            f"|{record.gpus_involved}|{record.root_locus}\n".encode()
        )
    return digest.hexdigest()


@dataclass(frozen=True)
class Dataset:
    """One registered log: handle + data + provenance."""

    name: str
    log: FailureLog
    fingerprint: str
    source: str

    def describe(self) -> dict[str, Any]:
        """JSON-friendly summary for the ``/datasets`` endpoints."""
        log = self.log
        return {
            "name": self.name,
            "machine": log.machine,
            "failures": len(log),
            "window_start": log.window_start.isoformat(),
            "window_end": log.window_end.isoformat(),
            "span_hours": log.span_hours,
            "fingerprint": self.fingerprint,
            "source": self.source,
        }


class DatasetRegistry:
    """Named :class:`FailureLog` handles for the service."""

    def __init__(self) -> None:
        self._datasets: dict[str, Dataset] = {}

    def __len__(self) -> int:
        return len(self._datasets)

    def __contains__(self, name: str) -> bool:
        return name in self._datasets

    def names(self) -> list[str]:
        """Registered handles, sorted."""
        return sorted(self._datasets)

    def get(self, name: str) -> Dataset:
        """Look a handle up.

        Raises:
            ServeError: For an unknown handle.
        """
        try:
            return self._datasets[name]
        except KeyError:
            known = ", ".join(self.names()) or "none registered"
            raise ServeError(
                f"unknown dataset {name!r} (known: {known})"
            ) from None

    def register(
        self, name: str, log: FailureLog, source: str
    ) -> Dataset:
        """Register (or replace) a handle with an in-memory log."""
        if not name or "/" in name:
            raise ServeError(
                f"invalid dataset name {name!r} (must be non-empty, "
                f"no '/')"
            )
        dataset = Dataset(
            name=name,
            log=log,
            fingerprint=fingerprint_log(log),
            source=source,
        )
        self._datasets[name] = dataset
        return dataset

    def load(
        self,
        name: str,
        path: str | Path,
        format: str | None = None,
        on_error: str = "raise",
    ) -> Dataset:
        """Register a handle from a log file on disk.

        ``format``/``on_error`` have :func:`repro.io.read_log`
        semantics; in ``"collect"`` mode quarantined rows are dropped
        and only the clean log is registered.
        """
        loaded = read_log(path, format=format, on_error=on_error)
        log = loaded.log if isinstance(loaded, LogReadReport) else loaded
        return self.register(name, log, source=f"file:{path}")

    def synthesize(
        self,
        name: str,
        machine: str,
        seed: int = 0,
        failures: int | None = None,
    ) -> Dataset:
        """Register a calibrated synthetic log for ``machine``."""
        if machine not in known_machines():
            raise ServeError(
                f"unknown machine {machine!r} "
                f"(known: {', '.join(known_machines())})"
            )
        config = GeneratorConfig(seed=seed, num_failures=failures)
        log = generate_log(machine, config=config)
        source = f"synth:{machine}:seed={seed}"
        if failures is not None:
            source += f":failures={failures}"
        return self.register(name, log, source=source)


def parse_dataset_spec(spec: str) -> tuple[str, str]:
    """Split one ``--datasets`` item into ``(name, location)``.

    Grammar: ``NAME=LOCATION`` where ``LOCATION`` is either a log file
    path or ``synth:MACHINE[:SEED[:FAILURES]]``.

    Raises:
        ValidationError: On a malformed spec.
    """
    name, sep, location = spec.partition("=")
    name, location = name.strip(), location.strip()
    if not sep or not name or not location:
        raise ValidationError(
            f"malformed dataset spec {spec!r} (expected NAME=PATH or "
            f"NAME=synth:MACHINE[:SEED[:FAILURES]])"
        )
    return name, location


def register_from_spec(
    registry: DatasetRegistry, spec: str
) -> Dataset:
    """Register one CLI ``--datasets`` spec into ``registry``.

    Raises:
        ValidationError: On a malformed spec.
        ServeError: On an unknown machine in a synth spec.
        OSError: If a file location cannot be read.
    """
    name, location = parse_dataset_spec(spec)
    if location.startswith("synth:"):
        parts = location.split(":")
        machine = parts[1] if len(parts) > 1 else ""
        try:
            seed = int(parts[2]) if len(parts) > 2 else 0
            failures = int(parts[3]) if len(parts) > 3 else None
        except ValueError:
            raise ValidationError(
                f"malformed synth spec {location!r} (seed and "
                f"failures must be integers)"
            ) from None
        if len(parts) > 4:
            raise ValidationError(
                f"malformed synth spec {location!r} (too many fields)"
            )
        return registry.synthesize(
            name, machine, seed=seed, failures=failures
        )
    return registry.load(name, location)
