"""The analytics application: routing, handlers, and the serving stack.

:class:`ReproApp` is transport-agnostic — it maps one
:class:`~repro.serve.http.HttpRequest` to one
:class:`~repro.serve.http.Response` and never touches a socket, so the
whole request pipeline is unit-testable without a server.  Every
request runs through the same stages, in order:

1. **rate limiting** (per client token bucket, 429 when over budget),
2. **result cache** (hits return the byte-identical cold payload),
3. **admission** (bounded concurrency + queue, 503 when saturated),
4. **single-flight** (identical concurrent requests share one
   execution),
5. **backend** — CPU-bound analysis in the worker executor; simulate
   requests additionally micro-batch through
   :func:`repro.parallel.sweep_iter`.

``/healthz`` and ``/statsz`` bypass stages 1-4 so operators can always
see in.  Handler failures are rendered as JSON errors (type + message,
never a traceback) and leave the server running — the chaos suite
feeds this layer deliberately broken handlers to prove it.
"""

from __future__ import annotations

import asyncio
import json
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from functools import partial
from pathlib import Path
from typing import Any, Callable

from repro.core.breakdown import category_breakdown
from repro.core.metrics import availability, mtbf, mtbf_span, mttr
from repro.core.multigpu import multi_gpu_clustering, multi_gpu_involvement
from repro.core.records import FailureLog
from repro.core.seasonal import monthly_failure_counts, monthly_ttr
from repro.core.spatial import node_failure_distribution
from repro.errors import ReproError, ServeError
from repro.io import KNOWN_FORMATS, read_log
from repro.io.formats import format_for_media_type
from repro.io.tolerant import ON_ERROR_MODES, LogReadReport
from repro.machines.specs import get_machine, known_machines
from repro.parallel import default_processes, sweep_iter
from repro.serve.admission import AdmissionController, RateLimiter
from repro.serve.cache import ResultCache, canonical_key
from repro.serve.coalesce import MicroBatcher, SingleFlight
from repro.serve.http import (
    HttpError,
    HttpRequest,
    Response,
    error_body,
    json_body,
)
from repro.serve.jobs import JOB_STATES, Job, JobConflict, JobQueue
from repro.serve.registry import DatasetRegistry
from repro.serve.stats import ServerStats
from repro.sim.montecarlo import EnsembleReport, run_replications
from repro.synth import GeneratorConfig, generate_log
from repro.train.metrics import ettf_payload

__all__ = ["ANALYSES", "ReproApp", "SimulateJob"]


# --------------------------------------------------------------------------
# Analysis payloads (pure: FailureLog -> JSON-friendly dict)
# --------------------------------------------------------------------------

def breakdown_payload(log: FailureLog) -> dict[str, Any]:
    """Category breakdown (the paper's Figure 2 / RQ1)."""
    breakdown = category_breakdown(log)
    return {
        "machine": log.machine,
        "failures": len(log),
        "dominant_category": breakdown.dominant_category,
        "categories": [
            {
                "category": share.category,
                "count": share.count,
                "share": share.share,
                "class": share.failure_class.name,
            }
            for share in breakdown.shares
        ],
    }


def metrics_payload(log: FailureLog) -> dict[str, Any]:
    """Headline MTBF/MTTR/availability metrics."""
    spec = get_machine(log.machine)
    return {
        "machine": log.machine,
        "failures": len(log),
        "span_hours": log.span_hours,
        "mtbf_hours": mtbf(log),
        "mtbf_span_hours": mtbf_span(log),
        "mttr_hours": mttr(log),
        "availability": availability(log, spec.num_nodes),
        "num_nodes": spec.num_nodes,
    }


def spatial_payload(log: FailureLog) -> dict[str, Any]:
    """Per-node failure concentration (Figure 3 / RQ3)."""
    distribution = node_failure_distribution(log)
    return {
        "machine": log.machine,
        "affected_nodes": distribution.num_affected_nodes,
        "total_failures": distribution.total_failures,
        "top_nodes": [
            [node_id, count]
            for node_id, count in distribution.top_nodes(10)
        ],
        "cdf": [
            [k, fraction] for k, fraction in distribution.cdf_points()
        ],
    }


def seasonal_payload(log: FailureLog) -> dict[str, Any]:
    """Monthly failure counts and TTR seasonality (Figures 11-12)."""
    counts = monthly_failure_counts(log)
    ttr = monthly_ttr(log)
    return {
        "machine": log.machine,
        "monthly_failures": counts.series(),
        "peak_month": counts.peak_month(),
        "monthly_ttr_means_hours": ttr.means(),
    }


def multigpu_payload(log: FailureLog) -> dict[str, Any]:
    """Multi-GPU involvement and clustering (Table III / Figure 8)."""
    spec = get_machine(log.machine)
    involvement = multi_gpu_involvement(log, spec.gpus_per_node)
    clustering = multi_gpu_clustering(log)
    return {
        "machine": log.machine,
        "multi_gpu_share": involvement.multi_gpu_share,
        "involvement": [
            {"gpus": gpus, "count": count, "share": share}
            for gpus, count, share in involvement.rows()
        ],
        "clustering_ratio": clustering.clustering_ratio,
        "is_clustered": clustering.is_clustered(),
    }


#: Analysis endpoints served under ``/analyze/{dataset}/{name}``.
#: Apps copy this table, so tests can swap a single instance's
#: handler (e.g. for a chaos wrapper) without touching the module.
ANALYSES: dict[str, Callable[[FailureLog], dict[str, Any]]] = {
    "breakdown": breakdown_payload,
    "metrics": metrics_payload,
    "spatial": spatial_payload,
    "seasonal": seasonal_payload,
    "multigpu": multigpu_payload,
    "ettf": ettf_payload,
}


# --------------------------------------------------------------------------
# Simulation jobs (picklable: they may cross process boundaries)
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class SimulateJob:
    """Normalized parameters of one ``POST /simulate`` request."""

    machine: str
    horizon_hours: float
    replications: int
    seed: int
    intensity: float
    ci: float
    num_technicians: int | None
    spare_lead_time_hours: float | None

    def params(self) -> dict[str, Any]:
        """Canonical parameter dict (the cache/coalescing identity)."""
        return {
            "machine": self.machine,
            "horizon_hours": self.horizon_hours,
            "replications": self.replications,
            "seed": self.seed,
            "intensity": self.intensity,
            "ci": self.ci,
            "num_technicians": self.num_technicians,
            "spare_lead_time_hours": self.spare_lead_time_hours,
        }


def ensemble_payload(ensemble: EnsembleReport) -> dict[str, Any]:
    """JSON-friendly view of a Monte-Carlo ensemble."""
    return {
        "machine": ensemble.machine,
        "horizon_hours": ensemble.horizon_hours,
        "replications": ensemble.replications,
        "failed_replications": ensemble.failed_replications,
        "ci": ensemble.ci,
        "metrics": {
            name: {
                "mean": stats.mean,
                "std": stats.std,
                "stderr": stats.stderr,
                "ci_lower": stats.ci_lower,
                "ci_upper": stats.ci_upper,
            }
            for name, stats in ensemble.metrics.items()
        },
    }


def execute_simulate_job(job: SimulateJob) -> dict[str, Any]:
    """Run one simulate job to completion (worker entry point).

    Replications inside a job run serially; parallelism comes from
    batching across jobs, so nested pools never happen.
    """
    ensemble = run_replications(
        job.machine,
        replications=job.replications,
        horizon_hours=job.horizon_hours,
        seed=job.seed,
        intensity=job.intensity,
        ci=job.ci,
        num_technicians=job.num_technicians,
        spare_lead_time_hours=job.spare_lead_time_hours,
    )
    return ensemble_payload(ensemble)


# --------------------------------------------------------------------------
# The application
# --------------------------------------------------------------------------

class ReproApp:
    """Request pipeline + handler table for the analytics service.

    Args:
        registry: Pre-loaded dataset registry (a fresh empty one by
            default).
        workers: Executor threads for CPU-bound work, and the process
            count used to drain multi-job simulate batches on the warm
            worker pool.  ``None`` resolves via
            :func:`repro.parallel.default_processes` (``REPRO_WORKERS``
            if set, else the schedulable CPU count).
        cache_size: Result-cache capacity (entries).
        cache_ttl_seconds: Result-cache TTL (``None`` = LRU only).
        max_inflight: Concurrent backend executions admitted.
        max_queue: Requests allowed to wait for admission; beyond
            this the request is shed with 503.
        rate_per_second: Per-client token-bucket rate; ``None``
            disables rate limiting.
        burst: Token-bucket depth.
        batch_max: Simulate micro-batch size cap.
        batch_linger_seconds: How long a lone simulate job waits for
            batch company.
        max_replications: Per-request ensemble-size ceiling
            (admission control for the most expensive endpoint).
        shard_index: This instance's position in a sharded
            deployment; ``None`` for a standalone server.  When set,
            every response carries an ``X-Shard`` header (affinity is
            observable) and job ids embed the shard for routing.
        job_concurrency: Runner tasks draining the ``/jobs`` queue.
            More than one lets concurrent jobs micro-batch into one
            warm-pool dispatch; exactly one gives strict priority
            order.  ``None`` sizes to the worker count.
        job_retention: Finished jobs kept for polling.
        clock: Injectable monotonic clock for cache/limiter/stats.
    """

    def __init__(
        self,
        registry: DatasetRegistry | None = None,
        *,
        workers: int | None = None,
        cache_size: int = 256,
        cache_ttl_seconds: float | None = 300.0,
        max_inflight: int = 8,
        max_queue: int = 32,
        rate_per_second: float | None = None,
        burst: float = 20.0,
        batch_max: int = 16,
        batch_linger_seconds: float = 0.005,
        max_replications: int = 512,
        shard_index: int | None = None,
        job_concurrency: int | None = None,
        job_retention: int = 512,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.registry = registry if registry is not None else DatasetRegistry()
        self.workers = workers if workers is not None else default_processes()
        self.cache = ResultCache(
            cache_size, cache_ttl_seconds, clock=clock
        )
        self.singleflight = SingleFlight()
        self.admission = AdmissionController(max_inflight, max_queue)
        self.limiter = (
            RateLimiter(rate_per_second, burst, clock=clock)
            if rate_per_second is not None
            else None
        )
        self.stats = ServerStats(clock=clock)
        self.analyses = dict(ANALYSES)
        self.max_replications = max_replications
        self.shard_index = shard_index
        self.draining = False
        self._clock = clock
        self._executor = ThreadPoolExecutor(
            max_workers=max(2, self.workers),
            thread_name_prefix="repro-serve",
        )
        self.batcher = MicroBatcher(
            self._run_simulate_batch,
            max_batch=batch_max,
            linger_seconds=batch_linger_seconds,
        )
        self.jobs = JobQueue(
            self._execute_job,
            shard_index=shard_index if shard_index is not None else 0,
            concurrency=(
                job_concurrency
                if job_concurrency is not None
                else max(2, min(8, self.workers))
            ),
            retention=job_retention,
            clock=clock,
        )
        self._warm_cache()

    def _warm_cache(self) -> None:
        """Seed the result cache from materialized analytics.

        Datasets that carry incrementally-maintained views (the
        ``store:`` specs) have every analysis payload available at
        registration time for O(1); caching them up front means the
        first request after a restart is a cache *hit* — the warm
        restart the store exists to provide.
        """
        for name in self.registry.names():
            dataset = self.registry.get(name)
            for analysis in self.analyses:
                payload = dataset.materialized(analysis)
                if payload is None:
                    continue
                key = canonical_key(
                    f"analyze/{analysis}", {}, dataset.fingerprint
                )
                self.cache.put(key, json_body(payload))

    # -- lifecycle ---------------------------------------------------------

    def begin_drain(self) -> None:
        """Start a graceful drain.

        ``/healthz`` flips to ``draining``; new data requests are shed
        with 503 + ``Retry-After``; queued jobs are cancelled with
        drain attribution (running jobs finish — :meth:`close` awaits
        them); requests already in flight complete normally.
        """
        self.draining = True
        self.admission.begin_drain()
        self.jobs.drain(reason="server drain")

    async def close(self) -> None:
        """Drain jobs, flush the batcher, release the executor."""
        self.draining = True
        await self.jobs.close()
        await self.batcher.close()
        self._executor.shutdown(wait=False)

    async def _offload(self, fn: Callable, *args: Any) -> Any:
        """Run CPU-bound work in the worker executor."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._executor, partial(fn, *args)
        )

    # -- dispatch ----------------------------------------------------------

    async def dispatch(self, request: HttpRequest) -> Response:
        """Map one request to a response; never raises."""
        start = self._clock()
        label = "unrouted"
        try:
            label, response = await self._route(request)
        except HttpError as error:
            label, response = label, self._error_response(error)
        except ReproError as error:
            response = Response(
                400, error_body(type(error).__name__, str(error))
            )
        except asyncio.CancelledError:
            raise
        except Exception as error:
            # A broken or chaos-injected handler: answer with the
            # exception type and message only — no traceback crosses
            # the wire — and keep serving.
            response = Response(
                500, error_body(type(error).__name__, str(error))
            )
        self.stats.observe(
            label, response.status, self._clock() - start
        )
        if self.shard_index is not None:
            response.headers.setdefault(
                "X-Shard", str(self.shard_index)
            )
        return response

    @staticmethod
    def _error_response(error: HttpError) -> Response:
        headers = {}
        if error.retry_after_seconds is not None:
            headers["Retry-After"] = (
                f"{max(1, round(error.retry_after_seconds))}"
            )
        return Response(
            error.status,
            error_body("HttpError", str(error)),
            headers,
        )

    async def _route(
        self, request: HttpRequest
    ) -> tuple[str, Response]:
        parts = [part for part in request.path.split("/") if part]
        method = request.method

        if not parts:
            return "index", self._index(request)
        head = parts[0]
        if head == "healthz" and len(parts) == 1:
            self._require(method, "GET")
            return "healthz", self._healthz()
        if head == "statsz" and len(parts) == 1:
            self._require(method, "GET")
            return "statsz", self._statsz(request)

        # Everything below is a data/compute endpoint.  During a
        # drain, arrivals are turned away at the door — in-flight
        # requests finish, new ones go elsewhere.
        if self.draining:
            raise HttpError(
                503,
                "server is draining; retry against another instance",
                retry_after_seconds=1.0,
            )
        # Rate-limited from here on.
        if self.limiter is not None:
            self.limiter.check(request.client_id)

        if head == "datasets":
            if len(parts) == 1:
                self._require(method, "GET")
                return "datasets", self._list_datasets()
            if len(parts) == 2:
                if method == "GET":
                    return "datasets", self._describe_dataset(parts[1])
                if method in ("POST", "PUT"):
                    return "datasets", await self._upload(
                        request, parts[1]
                    )
                raise HttpError(
                    405, f"method {method} not allowed on {request.path}"
                )
        if head == "analyze" and len(parts) == 3:
            self._require(method, "GET")
            return "analyze", await self._analyze(parts[1], parts[2])
        if head == "simulate" and len(parts) == 1:
            self._require(method, "POST")
            return "simulate", await self._simulate(request)
        if head == "generate" and len(parts) == 1:
            self._require(method, "POST")
            return "generate", await self._generate(request)
        if head == "jobs":
            if len(parts) == 1:
                if method == "POST":
                    return "jobs", self._submit_job(request)
                self._require(method, "GET")
                return "jobs", self._list_jobs(request)
            if len(parts) == 2:
                if method == "GET":
                    return "jobs", self._get_job(parts[1])
                if method == "DELETE":
                    return "jobs", self._cancel_job(parts[1])
                raise HttpError(
                    405,
                    f"method {method} not allowed on {request.path}",
                )
        raise HttpError(404, f"no route for {request.path}")

    @staticmethod
    def _require(method: str, expected: str) -> None:
        if method != expected:
            raise HttpError(
                405, f"method {method} not allowed (use {expected})"
            )

    # -- introspection endpoints -------------------------------------------

    def _index(self, request: HttpRequest) -> Response:
        self._require(request.method, "GET")
        return Response(
            200,
            json_body(
                {
                    "service": "repro.serve",
                    "description": (
                        "reliability analytics for multi-GPU "
                        "supercomputer failure logs"
                    ),
                    "endpoints": [
                        "GET /healthz",
                        "GET /statsz",
                        "GET /datasets",
                        "GET /datasets/{name}",
                        "POST /datasets/{name}",
                        "GET /analyze/{name}/"
                        + "{" + "|".join(sorted(ANALYSES)) + "}",
                        "POST /simulate",
                        "POST /generate",
                        "POST /jobs",
                        "GET /jobs",
                        "GET /jobs/{id}",
                        "DELETE /jobs/{id}",
                    ],
                }
            ),
        )

    def _healthz(self) -> Response:
        payload = {
            "status": "draining" if self.draining else "ok",
            "uptime_seconds": self.stats.uptime_seconds,
            "datasets": self.registry.names(),
            "inflight": self.admission.inflight,
            "queued": self.admission.queued,
            "requests_total": self.stats.requests_total,
            "jobs_queued": self.jobs.queued,
            "jobs_running": self.jobs.running,
        }
        if self.shard_index is not None:
            payload["shard"] = self.shard_index
        return Response(200, json_body(payload))

    def _statsz(self, request: HttpRequest) -> Response:
        # ``?states=1`` adds the raw estimator states (Welford
        # moments, GK tuple lists) so a router can merge per-shard
        # latency distributions instead of averaging averages.
        include_states = request.query.get("states") in ("1", "true")
        payload = {
            "server": self.stats.snapshot(include_states),
            "cache": self.cache.stats(),
            "singleflight": self.singleflight.stats(),
            "batcher": self.batcher.stats(),
            "admission": self.admission.stats(),
            "jobs": self.jobs.stats(),
            "rate_limiter": (
                self.limiter.stats() if self.limiter else None
            ),
            "datasets": {
                name: self.registry.get(name).fingerprint
                for name in self.registry.names()
            },
        }
        if self.shard_index is not None:
            payload["shard"] = self.shard_index
        return Response(200, json_body(payload))

    # -- dataset endpoints -------------------------------------------------

    def _list_datasets(self) -> Response:
        return Response(
            200,
            json_body(
                {
                    "datasets": [
                        self.registry.get(name).describe()
                        for name in self.registry.names()
                    ]
                }
            ),
        )

    def _describe_dataset(self, name: str) -> Response:
        try:
            dataset = self.registry.get(name)
        except ServeError as error:
            raise HttpError(404, str(error)) from None
        return Response(200, json_body(dataset.describe()))

    async def _upload(
        self, request: HttpRequest, name: str
    ) -> Response:
        """Register a dataset from the request body.

        The body format comes from ``?format=`` (same names as the
        CLI's ``--format``) or, failing that, the ``Content-Type``
        header via :func:`repro.io.formats.format_for_media_type` —
        the serving layer and the CLI share one format vocabulary.
        """
        format = request.query.get("format")
        if format is not None and format not in KNOWN_FORMATS:
            raise HttpError(
                400,
                f"unknown format {format!r} "
                f"(known: {', '.join(KNOWN_FORMATS)})",
            )
        if format is None:
            content_type = request.headers.get("content-type")
            if not content_type:
                raise HttpError(
                    415,
                    "supply a Content-Type header or ?format= "
                    f"({', '.join(KNOWN_FORMATS)})",
                )
            try:
                format = format_for_media_type(content_type)
            except ReproError as error:
                raise HttpError(415, str(error)) from None
        on_error = request.query.get("on_error", "raise")
        if on_error not in ON_ERROR_MODES:
            raise HttpError(
                400,
                f"unknown on_error mode {on_error!r} "
                f"(known: {', '.join(ON_ERROR_MODES)})",
            )
        if not request.body:
            raise HttpError(400, "empty request body")
        async with self.admission:
            loaded = await self._offload(
                _parse_log_body, request.body, format, on_error
            )
        if isinstance(loaded, LogReadReport):
            log, quarantined = loaded.log, loaded.num_quarantined
        else:
            log, quarantined = loaded, 0
        dataset = self.registry.register(
            name, log, source=f"upload:{format}"
        )
        payload = dataset.describe()
        payload["quarantined_rows"] = quarantined
        return Response(201, json_body(payload))

    async def _generate(self, request: HttpRequest) -> Response:
        """Synthesize a calibrated log and register it as a dataset."""
        params = request.json()
        if not isinstance(params, dict):
            raise HttpError(400, "body must be a JSON object")
        name = params.get("name")
        machine = params.get("machine")
        if not name or not isinstance(name, str):
            raise HttpError(400, "missing dataset 'name'")
        if machine not in known_machines():
            raise HttpError(
                400,
                f"unknown machine {machine!r} "
                f"(known: {', '.join(known_machines())})",
            )
        seed = _as_int(params.get("seed", 0), "seed")
        failures = params.get("failures")
        if failures is not None:
            failures = _as_int(failures, "failures")
        config = GeneratorConfig(seed=seed, num_failures=failures)
        async with self.admission:
            log = await self._offload(
                generate_log, machine, seed, config
            )
        dataset = self.registry.register(
            name, log, source=f"synth:{machine}:seed={seed}"
        )
        return Response(201, json_body(dataset.describe()))

    # -- analysis endpoints ------------------------------------------------

    async def _analyze(self, name: str, analysis: str) -> Response:
        if analysis not in self.analyses:
            raise HttpError(
                404,
                f"unknown analysis {analysis!r} "
                f"(known: {', '.join(sorted(self.analyses))})",
            )
        try:
            dataset = self.registry.get(name)
        except ServeError as error:
            raise HttpError(404, str(error)) from None
        key = canonical_key(
            f"analyze/{analysis}", {}, dataset.fingerprint
        )
        cached = self.cache.get(key)
        if cached is not None:
            return Response(200, cached, {"X-Cache": "hit"})

        fn = self.analyses[analysis]

        async def compute() -> bytes:
            # Store-backed datasets serve their incrementally
            # materialized views; the cold kernels run only when no
            # materialized payload exists (plain datasets, or an
            # analysis the store cannot maintain).
            payload = dataset.materialized(analysis)
            if payload is None:
                payload = await self._offload(fn, dataset.log)
            body = json_body(payload)
            self.cache.put(key, body)
            return body

        async with self.admission:
            body, coalesced = await self.singleflight.run(key, compute)
        return Response(
            200,
            body,
            {"X-Cache": "coalesced" if coalesced else "miss"},
        )

    # -- simulation endpoints ----------------------------------------------

    def _parse_simulate(self, request: HttpRequest) -> SimulateJob:
        params = request.json()
        if not isinstance(params, dict):
            raise HttpError(400, "body must be a JSON object")
        return self._parse_simulate_params(params)

    def _parse_simulate_params(
        self, params: dict[str, Any]
    ) -> SimulateJob:
        machine = params.get("machine")
        if machine not in known_machines():
            raise HttpError(
                400,
                f"unknown machine {machine!r} "
                f"(known: {', '.join(known_machines())})",
            )
        replications = _as_int(
            params.get("replications", 1), "replications"
        )
        if not 1 <= replications <= self.max_replications:
            raise HttpError(
                400,
                f"replications must lie in [1, "
                f"{self.max_replications}], got {replications}",
            )
        technicians = params.get("num_technicians")
        lead_time = params.get("spare_lead_time_hours")
        return SimulateJob(
            machine=machine,
            horizon_hours=_as_float(
                params.get("horizon_hours", 2000.0), "horizon_hours"
            ),
            replications=replications,
            seed=_as_int(params.get("seed", 0), "seed"),
            intensity=_as_float(
                params.get("intensity", 1.0), "intensity"
            ),
            ci=_as_float(params.get("ci", 0.95), "ci"),
            num_technicians=(
                None
                if technicians is None
                else _as_int(technicians, "num_technicians")
            ),
            spare_lead_time_hours=(
                None
                if lead_time is None
                else _as_float(lead_time, "spare_lead_time_hours")
            ),
        )

    async def _simulate(self, request: HttpRequest) -> Response:
        job = self._parse_simulate(request)
        key = canonical_key("simulate", job.params())
        cached = self.cache.get(key)
        if cached is not None:
            return Response(200, cached, {"X-Cache": "hit"})

        async def compute() -> bytes:
            payload = await self.batcher.submit(job)
            body = json_body(payload)
            self.cache.put(key, body)
            return body

        async with self.admission:
            body, coalesced = await self.singleflight.run(key, compute)
        return Response(
            200,
            body,
            {"X-Cache": "coalesced" if coalesced else "miss"},
        )

    async def _run_simulate_batch(
        self, jobs: list[SimulateJob]
    ) -> list[Any]:
        """Drain one micro-batch through the sweep machinery.

        Single-job batches run serially in the executor thread;
        multi-job batches fan out across ``workers`` processes via
        :func:`repro.parallel.sweep_iter` — which dispatches to the
        process-wide *warm* worker pool, so consecutive ``/simulate``
        batches reuse the same worker processes instead of paying a
        pool spawn per batch.  Per-job failures come back as
        exceptions for that job's submitter only.
        """
        processes = (
            self.workers if len(jobs) > 1 and self.workers > 1 else None
        )

        def drain() -> list[Any]:
            results: list[Any] = []
            for outcome in sweep_iter(
                execute_simulate_job, jobs, processes=processes
            ):
                results.append(
                    outcome.result if outcome.ok else outcome.error
                )
            return results

        return await self._offload(drain)

    # -- job endpoints ------------------------------------------------------

    def _submit_job(self, request: HttpRequest) -> Response:
        """``POST /jobs``: enqueue a simulate job, answer 202.

        The body is the ``/simulate`` parameter object plus an
        optional integer ``priority`` (higher runs first, default 0).
        """
        params = request.json()
        if not isinstance(params, dict):
            raise HttpError(400, "body must be a JSON object")
        priority = _as_int(params.pop("priority", 0), "priority")
        sim = self._parse_simulate_params(params)
        if self.draining:
            raise HttpError(
                503,
                "server is draining; jobs are not accepted",
                retry_after_seconds=1.0,
            )
        job = self.jobs.submit(sim.params(), priority=priority)
        return Response(202, json_body({"job": job.describe()}))

    def _get_job(self, job_id: str) -> Response:
        try:
            job = self.jobs.get(job_id)
        except ServeError as error:
            raise HttpError(404, str(error)) from None
        payload: dict[str, Any] = {"job": job.describe()}
        if job.status == "done" and job.result is not None:
            payload["result"] = json.loads(job.result)
        return Response(200, json_body(payload))

    def _cancel_job(self, job_id: str) -> Response:
        try:
            job = self.jobs.cancel(job_id)
        except JobConflict as error:
            raise HttpError(409, str(error)) from None
        except ServeError as error:
            raise HttpError(404, str(error)) from None
        return Response(200, json_body({"job": job.describe()}))

    def _list_jobs(self, request: HttpRequest) -> Response:
        status = request.query.get("status")
        if status is not None and status not in JOB_STATES:
            raise HttpError(
                400,
                f"unknown job status {status!r} "
                f"(known: {', '.join(JOB_STATES)})",
            )
        limit = 100
        if "limit" in request.query:
            try:
                limit = max(1, min(1000, int(request.query["limit"])))
            except ValueError:
                raise HttpError(
                    400,
                    f"limit must be an integer, "
                    f"got {request.query['limit']!r}",
                ) from None
        jobs = self.jobs.list(status=status, limit=limit)
        return Response(
            200,
            json_body(
                {
                    "jobs": [job.describe() for job in jobs],
                    "stats": self.jobs.stats(),
                }
            ),
        )

    async def _execute_job(
        self, params: dict[str, Any], job: Job
    ) -> bytes:
        """Run one queued job through the shared serving machinery.

        Jobs reuse the result cache and single-flight exactly like
        the synchronous endpoint — a queued job whose parameters were
        already computed finishes instantly as a cache hit, and the
        result it stores makes a later ``POST /simulate`` with the
        same parameters a byte-identical hit.  Jobs bypass admission
        control: the queue itself is the backpressure.
        """
        sim = SimulateJob(**params)
        key = canonical_key("simulate", sim.params())
        cached = self.cache.get(key)
        if cached is not None:
            job.cached = True
            return cached

        async def compute() -> bytes:
            payload = await self.batcher.submit(sim)
            body = json_body(payload)
            self.cache.put(key, body)
            return body

        body, coalesced = await self.singleflight.run(key, compute)
        job.cached = coalesced
        return body


# --------------------------------------------------------------------------
# Helpers
# --------------------------------------------------------------------------

def _parse_log_body(
    body: bytes, format: str, on_error: str
) -> FailureLog | LogReadReport:
    """Parse an uploaded log body by spooling it through a temp file
    (the io readers are path-based)."""
    suffix = ".csv" if format == "csv" else ".jsonl"
    with tempfile.NamedTemporaryFile(
        suffix=suffix, delete=False
    ) as handle:
        handle.write(body)
        path = Path(handle.name)
    try:
        return read_log(path, format=format, on_error=on_error)
    finally:
        path.unlink(missing_ok=True)


def _as_int(value: Any, name: str) -> int:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise HttpError(400, f"{name} must be a number, got {value!r}")
    if isinstance(value, float) and not value.is_integer():
        raise HttpError(400, f"{name} must be an integer, got {value!r}")
    return int(value)


def _as_float(value: Any, name: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise HttpError(400, f"{name} must be a number, got {value!r}")
    return float(value)
