"""Minimal HTTP/1.1 framing over asyncio streams.

Just enough protocol for a JSON analytics service — request-line +
headers + ``Content-Length`` bodies, keep-alive, canonical JSON
responses — implemented on ``asyncio.StreamReader``/``StreamWriter``
so the server stays dependency-free.  Chunked transfer encoding,
pipelining past an error, and multipart bodies are deliberately out of
scope; stdlib ``http.client`` (and every mainstream client) is happy
with this subset.

Canonical JSON matters here: responses are encoded with sorted keys
and tight separators before they enter the result cache, so a cache
hit can return the *byte-identical* payload of the cold miss — the
property tests/serve asserts.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any
from urllib.parse import parse_qsl, unquote

import asyncio

__all__ = [
    "MAX_LINE_BYTES",
    "MAX_HEADER_BYTES",
    "MAX_BODY_BYTES",
    "HttpError",
    "HttpRequest",
    "Response",
    "read_request",
    "render_request",
    "read_response",
    "render_response",
    "json_body",
    "error_body",
]

#: Per-line, total-header, and body ceilings; requests beyond them are
#: rejected with 431/413 instead of buffering unbounded client input.
MAX_LINE_BYTES = 8192
MAX_HEADER_BYTES = 32768
MAX_BODY_BYTES = 16 * 1024 * 1024

_REASONS = {
    200: "OK",
    201: "Created",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    413: "Payload Too Large",
    415: "Unsupported Media Type",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """A request that must be answered with an HTTP error status.

    Attributes:
        status: HTTP status code.
        retry_after_seconds: When set, emitted as a ``Retry-After``
            header (load shedding and rate limiting use this).
    """

    def __init__(
        self,
        status: int,
        message: str,
        retry_after_seconds: float | None = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.retry_after_seconds = retry_after_seconds


@dataclass(frozen=True)
class HttpRequest:
    """One parsed request."""

    method: str
    path: str
    query: dict[str, str]
    headers: dict[str, str]
    body: bytes
    version: str = "HTTP/1.1"

    @property
    def keep_alive(self) -> bool:
        """Whether the client expects the connection to stay open."""
        connection = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return connection == "keep-alive"
        return connection != "close"

    @property
    def client_id(self) -> str:
        """Identity used for per-client rate limiting.

        An explicit ``X-Client-Id`` header wins; otherwise all
        requests on the transport share the anonymous bucket.
        """
        return self.headers.get("x-client-id", "anonymous")

    def json(self) -> Any:
        """Decode the body as JSON (empty body decodes to ``{}``).

        Raises:
            HttpError: 400 on malformed JSON.
        """
        if not self.body:
            return {}
        try:
            return json.loads(self.body)
        except (ValueError, UnicodeDecodeError) as error:
            raise HttpError(400, f"malformed JSON body: {error}") from None


@dataclass(frozen=True)
class Response:
    """One response: status + JSON body bytes + extra headers."""

    status: int
    body: bytes
    headers: dict[str, str] = field(default_factory=dict)
    content_type: str = "application/json"


async def _read_line(reader: asyncio.StreamReader) -> bytes:
    line = await reader.readline()
    if len(line) > MAX_LINE_BYTES:
        raise HttpError(431, "request line or header too long")
    return line


async def read_request(
    reader: asyncio.StreamReader,
) -> HttpRequest | None:
    """Read one request off the wire; ``None`` on a clean EOF.

    Raises:
        HttpError: On malformed framing or a request exceeding the
            size ceilings.
        asyncio.IncompleteReadError: If the peer disconnects mid-body.
    """
    request_line = await _read_line(reader)
    if not request_line:
        return None
    try:
        text = request_line.decode("latin-1").rstrip("\r\n")
        method, target, version = text.split(" ", 2)
    except ValueError:
        raise HttpError(400, "malformed request line") from None
    if not version.startswith("HTTP/1."):
        raise HttpError(400, f"unsupported protocol {version!r}")

    headers: dict[str, str] = {}
    total = 0
    while True:
        line = await _read_line(reader)
        if line in (b"\r\n", b"\n", b""):
            break
        total += len(line)
        if total > MAX_HEADER_BYTES:
            raise HttpError(431, "request headers too large")
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()

    raw_length = headers.get("content-length", "0")
    try:
        content_length = int(raw_length)
    except ValueError:
        raise HttpError(
            400, f"invalid Content-Length {raw_length!r}"
        ) from None
    if content_length < 0:
        raise HttpError(400, f"invalid Content-Length {raw_length!r}")
    if content_length > MAX_BODY_BYTES:
        raise HttpError(413, "request body too large")
    body = (
        await reader.readexactly(content_length)
        if content_length
        else b""
    )

    path, _, query_string = target.partition("?")
    query = {
        key: value
        for key, value in parse_qsl(query_string, keep_blank_values=True)
    }
    return HttpRequest(
        method=method.upper(),
        path=unquote(path) or "/",
        query=query,
        headers=headers,
        body=body,
        version=version,
    )


def render_request(
    method: str,
    target: str,
    headers: dict[str, str],
    body: bytes = b"",
    keep_alive: bool = True,
) -> bytes:
    """Serialize one client-side request to wire bytes.

    The router half of the codec: requests proxied to a shard are
    re-rendered with recomputed framing headers (``Content-Length``,
    ``Connection``) while everything else — ``X-Client-Id``, content
    negotiation, query strings embedded in ``target`` — passes through
    untouched.
    """
    lines = [f"{method} {target} HTTP/1.1"]
    for name, value in headers.items():
        lowered = name.lower()
        if lowered in ("content-length", "connection", "host"):
            continue
        lines.append(f"{name}: {value}")
    lines.append("Host: shard")
    lines.append(f"Content-Length: {len(body)}")
    lines.append(
        f"Connection: {'keep-alive' if keep_alive else 'close'}"
    )
    head = "\r\n".join(lines) + "\r\n\r\n"
    return head.encode("latin-1") + body


async def read_response(
    reader: asyncio.StreamReader,
) -> tuple[int, dict[str, str], bytes]:
    """Read one response off a backend connection.

    Returns ``(status, headers, body)`` with header names lowercased.

    Raises:
        HttpError: 502 on malformed framing (the *backend* broke
            protocol, which the router reports as a gateway error).
        asyncio.IncompleteReadError: If the backend disconnects
            mid-response.
    """
    status_line = await _read_line(reader)
    if not status_line:
        raise asyncio.IncompleteReadError(b"", None)
    try:
        text = status_line.decode("latin-1").rstrip("\r\n")
        version, status_text, _ = text.split(" ", 2)
        status = int(status_text)
    except ValueError:
        raise HttpError(
            502, f"malformed backend status line {status_line!r}"
        ) from None
    if not version.startswith("HTTP/1."):
        raise HttpError(
            502, f"unsupported backend protocol {version!r}"
        )
    headers: dict[str, str] = {}
    total = 0
    while True:
        line = await _read_line(reader)
        if line in (b"\r\n", b"\n", b""):
            break
        total += len(line)
        if total > MAX_HEADER_BYTES:
            raise HttpError(502, "backend response headers too large")
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise HttpError(
                502, f"malformed backend header line {line!r}"
            )
        headers[name.strip().lower()] = value.strip()
    raw_length = headers.get("content-length", "0")
    try:
        content_length = int(raw_length)
    except ValueError:
        raise HttpError(
            502, f"invalid backend Content-Length {raw_length!r}"
        ) from None
    body = (
        await reader.readexactly(content_length)
        if content_length > 0
        else b""
    )
    return status, headers, body


def render_response(response: Response, keep_alive: bool) -> bytes:
    """Serialize a :class:`Response` to wire bytes."""
    reason = _REASONS.get(response.status, "Unknown")
    lines = [
        f"HTTP/1.1 {response.status} {reason}",
        f"Content-Type: {response.content_type}",
        f"Content-Length: {len(response.body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in response.headers.items():
        lines.append(f"{name}: {value}")
    head = "\r\n".join(lines) + "\r\n\r\n"
    return head.encode("latin-1") + response.body


def _json_safe(value: Any) -> Any:
    """Recursively replace non-finite floats (strict JSON has no
    ``NaN``/``Infinity`` literals) and stringify non-string keys."""
    if isinstance(value, float):
        if math.isnan(value):
            return None
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        return value
    if isinstance(value, dict):
        return {str(key): _json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    return value


def json_body(payload: Any) -> bytes:
    """Encode a payload as canonical JSON bytes.

    Sorted keys + fixed separators make the encoding a pure function
    of the payload value, which is what lets the result cache promise
    byte-identical hits.
    """
    return json.dumps(
        _json_safe(payload),
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
    ).encode("utf-8") + b"\n"


def error_body(error_type: str, message: str, limit: int = 300) -> bytes:
    """Encode a client-facing error payload.

    Only the exception type and (truncated) message cross the wire —
    never a traceback; the chaos suite asserts this.
    """
    if len(message) > limit:
        message = message[: limit - 3] + "..."
    return json_body({"error": {"type": error_type, "message": message}})
