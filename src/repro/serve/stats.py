"""Live service telemetry for ``/statsz`` and ``/healthz``.

The serving layer reuses the same constant-memory estimators the
streaming subsystem runs on failure feeds (:mod:`repro.stream.online`):
per-endpoint request latency flows through a Welford accumulator (mean
and spread) and a Greenwald-Khanna sketch (p50/p95/p99 with a bounded
rank error), and the instantaneous request rate is an
:class:`~repro.stream.online.EwmaRate` with a seconds-scale time
constant.  ``/statsz`` is therefore O(1) memory no matter how long the
server runs — the monitors never hold a request history.
"""

from __future__ import annotations

import time
from typing import Any, Callable

from repro.stream.online import EwmaRate, GKQuantileSketch, Welford

__all__ = ["EndpointStats", "ServerStats"]

#: Latency quantiles reported per endpoint.
_QUANTILES = (0.5, 0.95, 0.99)


class EndpointStats:
    """Latency and status accounting for one endpoint family."""

    def __init__(self) -> None:
        self.requests = 0
        self.by_status: dict[str, int] = {}
        self._latency_ms = Welford()
        self._sketch = GKQuantileSketch(epsilon=0.01)

    def observe(self, status: int, latency_seconds: float) -> None:
        self.requests += 1
        status_class = f"{status // 100}xx"
        self.by_status[status_class] = (
            self.by_status.get(status_class, 0) + 1
        )
        latency_ms = latency_seconds * 1e3
        self._latency_ms.push(latency_ms)
        self._sketch.push(latency_ms)

    def snapshot(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "requests": self.requests,
            "by_status": dict(sorted(self.by_status.items())),
            "latency_ms": {
                "mean": self._latency_ms.mean,
                "std": self._latency_ms.std,
            },
        }
        if self._sketch.n:
            payload["latency_ms"].update(
                {
                    f"p{int(q * 100)}": self._sketch.value(q)
                    for q in _QUANTILES
                }
            )
        return payload


class ServerStats:
    """Whole-service counters plus per-endpoint monitors.

    Args:
        rate_tau_seconds: Time constant of the EWMA request rate —
            small (seconds) so ``/statsz`` reflects *current* load,
            not the lifetime average.
        clock: Injectable monotonic clock.
    """

    def __init__(
        self,
        rate_tau_seconds: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._clock = clock
        self._started = clock()
        self._rate = EwmaRate(tau_hours=rate_tau_seconds / 3600.0)
        self._endpoints: dict[str, EndpointStats] = {}
        self.requests_total = 0
        self.errors_5xx = 0
        self.shed_total = 0

    @property
    def uptime_seconds(self) -> float:
        return self._clock() - self._started

    def _elapsed_hours(self) -> float:
        return (self._clock() - self._started) / 3600.0

    def observe(
        self, endpoint: str, status: int, latency_seconds: float
    ) -> None:
        """Fold one finished request into the monitors."""
        self.requests_total += 1
        if status in (429, 503):
            # Deliberate load shedding, not a failure.
            self.shed_total += 1
        elif status >= 500:
            self.errors_5xx += 1
        self._rate.push(self._elapsed_hours())
        stats = self._endpoints.setdefault(endpoint, EndpointStats())
        stats.observe(status, latency_seconds)

    def requests_per_second(self) -> float:
        """EWMA request rate, decayed to now."""
        return self._rate.rate_per_hour(self._elapsed_hours()) / 3600.0

    def snapshot(self) -> dict[str, Any]:
        return {
            "uptime_seconds": self.uptime_seconds,
            "requests_total": self.requests_total,
            "errors_5xx": self.errors_5xx,
            "shed_total": self.shed_total,
            "requests_per_second": self.requests_per_second(),
            "endpoints": {
                name: stats.snapshot()
                for name, stats in sorted(self._endpoints.items())
            },
        }
