"""Live service telemetry for ``/statsz`` and ``/healthz``.

The serving layer reuses the same constant-memory estimators the
streaming subsystem runs on failure feeds (:mod:`repro.stream.online`):
per-endpoint request latency flows through a Welford accumulator (mean
and spread) and a Greenwald-Khanna sketch (p50/p95/p99 with a bounded
rank error), and the instantaneous request rate is an
:class:`~repro.stream.online.EwmaRate` with a seconds-scale time
constant.  ``/statsz`` is therefore O(1) memory no matter how long the
server runs — the monitors never hold a request history.

Sharded deployments roll the per-shard monitors up into one fleet
view: a shard's ``/statsz?states=1`` response carries the raw Welford
moments and GK tuple lists, and :func:`merge_server_snapshots`
reassembles them with the estimators' own merge algebra
(:meth:`Welford.merged <repro.stream.online.Welford.merged>`,
:meth:`GKQuantileSketch.merged
<repro.stream.online.GKQuantileSketch.merged>`) so the fleet's
latency quantiles come from merged sketches, not averaged averages.
"""

from __future__ import annotations

import time
from typing import Any, Callable

from repro.stream.online import EwmaRate, GKQuantileSketch, Welford

__all__ = [
    "EndpointStats",
    "ServerStats",
    "merge_counter_dicts",
    "merge_server_snapshots",
]

#: Latency quantiles reported per endpoint.
_QUANTILES = (0.5, 0.95, 0.99)


class EndpointStats:
    """Latency and status accounting for one endpoint family."""

    def __init__(self) -> None:
        self.requests = 0
        self.by_status: dict[str, int] = {}
        self._latency_ms = Welford()
        self._sketch = GKQuantileSketch(epsilon=0.01)

    def observe(self, status: int, latency_seconds: float) -> None:
        self.requests += 1
        status_class = f"{status // 100}xx"
        self.by_status[status_class] = (
            self.by_status.get(status_class, 0) + 1
        )
        latency_ms = latency_seconds * 1e3
        self._latency_ms.push(latency_ms)
        self._sketch.push(latency_ms)

    def snapshot(self, include_states: bool = False) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "requests": self.requests,
            "by_status": dict(sorted(self.by_status.items())),
            "latency_ms": {
                "mean": self._latency_ms.mean,
                "std": self._latency_ms.std,
            },
        }
        if self._sketch.n:
            payload["latency_ms"].update(
                {
                    f"p{int(q * 100)}": self._sketch.value(q)
                    for q in _QUANTILES
                }
            )
        if include_states:
            payload["states"] = {
                "latency": self._latency_ms.state(),
                "sketch": self._sketch.state(),
            }
        return payload


class ServerStats:
    """Whole-service counters plus per-endpoint monitors.

    Args:
        rate_tau_seconds: Time constant of the EWMA request rate —
            small (seconds) so ``/statsz`` reflects *current* load,
            not the lifetime average.
        clock: Injectable monotonic clock.
    """

    def __init__(
        self,
        rate_tau_seconds: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._clock = clock
        self._started = clock()
        self._rate = EwmaRate(tau_hours=rate_tau_seconds / 3600.0)
        self._endpoints: dict[str, EndpointStats] = {}
        self.requests_total = 0
        self.errors_5xx = 0
        self.shed_total = 0

    @property
    def uptime_seconds(self) -> float:
        return self._clock() - self._started

    def _elapsed_hours(self) -> float:
        return (self._clock() - self._started) / 3600.0

    def observe(
        self, endpoint: str, status: int, latency_seconds: float
    ) -> None:
        """Fold one finished request into the monitors."""
        self.requests_total += 1
        if status in (429, 503):
            # Deliberate load shedding, not a failure.
            self.shed_total += 1
        elif status >= 500:
            self.errors_5xx += 1
        self._rate.push(self._elapsed_hours())
        stats = self._endpoints.setdefault(endpoint, EndpointStats())
        stats.observe(status, latency_seconds)

    def requests_per_second(self) -> float:
        """EWMA request rate, decayed to now."""
        return self._rate.rate_per_hour(self._elapsed_hours()) / 3600.0

    def snapshot(self, include_states: bool = False) -> dict[str, Any]:
        return {
            "uptime_seconds": self.uptime_seconds,
            "requests_total": self.requests_total,
            "errors_5xx": self.errors_5xx,
            "shed_total": self.shed_total,
            "requests_per_second": self.requests_per_second(),
            "endpoints": {
                name: stats.snapshot(include_states)
                for name, stats in sorted(self._endpoints.items())
            },
        }


# --------------------------------------------------------------------------
# Fleet rollup
# --------------------------------------------------------------------------

def merge_counter_dicts(payloads: list[dict]) -> dict[str, Any]:
    """Merge flat counter dicts by summing ints and floats.

    The generic rollup for ``/statsz`` sections that are plain
    counters (cache, admission, single-flight, batcher, jobs):
    numeric values are summed; non-numeric values are kept when every
    shard agrees and dropped otherwise.  Booleans are not counters and
    follow the agree-or-drop rule.
    """
    merged: dict[str, Any] = {}
    if not payloads:
        return merged
    keys: list[str] = []
    for payload in payloads:
        for key in payload:
            if key not in keys:
                keys.append(key)
    for key in keys:
        values = [p[key] for p in payloads if key in p]
        if all(
            isinstance(v, (int, float)) and not isinstance(v, bool)
            for v in values
        ):
            total = sum(values)
            merged[key] = total
        elif all(v == values[0] for v in values):
            merged[key] = values[0]
    return merged


def _merge_endpoint_snapshots(snapshots: list[dict]) -> dict[str, Any]:
    """Merge one endpoint family's per-shard snapshots."""
    merged: dict[str, Any] = {
        "requests": sum(s.get("requests", 0) for s in snapshots),
        "by_status": {},
    }
    for snapshot in snapshots:
        for status_class, count in snapshot.get("by_status", {}).items():
            merged["by_status"][status_class] = (
                merged["by_status"].get(status_class, 0) + count
            )
    merged["by_status"] = dict(sorted(merged["by_status"].items()))

    states = [s.get("states") for s in snapshots]
    if all(state is not None for state in states):
        welford = Welford.merged(
            [Welford.from_state(state["latency"]) for state in states]
        )
        sketch = GKQuantileSketch.merged(
            [
                GKQuantileSketch.from_state(state["sketch"])
                for state in states
            ]
        )
        latency: dict[str, Any] = {
            "mean": welford.mean,
            "std": welford.std,
        }
        if sketch.n:
            latency.update(
                {
                    f"p{int(q * 100)}": sketch.value(q)
                    for q in _QUANTILES
                }
            )
            latency["merged_epsilon"] = sketch.epsilon
        merged["latency_ms"] = latency
    else:
        # No raw states available: merge the means exactly (they are
        # count-weighted), drop the unmergeable quantiles.
        total = sum(
            s.get("requests", 0)
            for s in snapshots
            if s.get("latency_ms")
        )
        if total:
            mean = (
                sum(
                    s["latency_ms"].get("mean", 0.0) * s["requests"]
                    for s in snapshots
                    if s.get("latency_ms")
                )
                / total
            )
            merged["latency_ms"] = {"mean": mean}
    return merged


def merge_server_snapshots(snapshots: list[dict]) -> dict[str, Any]:
    """Roll per-shard ``ServerStats`` snapshots up into a fleet view.

    Counters sum; the request rate sums (shard rates are independent
    EWMAs over the same wall clock); uptime reports the oldest shard;
    per-endpoint latency distributions merge through the estimators'
    own merge algebra when the snapshots carry raw states
    (``/statsz?states=1``), and degrade to count-weighted means when
    they do not.
    """
    endpoints: dict[str, list[dict]] = {}
    for snapshot in snapshots:
        for name, endpoint in snapshot.get("endpoints", {}).items():
            endpoints.setdefault(name, []).append(endpoint)
    return {
        "shards": len(snapshots),
        "uptime_seconds": max(
            (s.get("uptime_seconds", 0.0) for s in snapshots),
            default=0.0,
        ),
        "requests_total": sum(
            s.get("requests_total", 0) for s in snapshots
        ),
        "errors_5xx": sum(s.get("errors_5xx", 0) for s in snapshots),
        "shed_total": sum(s.get("shed_total", 0) for s in snapshots),
        "requests_per_second": sum(
            s.get("requests_per_second", 0.0) for s in snapshots
        ),
        "endpoints": {
            name: _merge_endpoint_snapshots(shard_snapshots)
            for name, shard_snapshots in sorted(endpoints.items())
        },
    }
