"""Tests for the training-job configuration."""

import math

import pytest

from repro.errors import ValidationError
from repro.train.config import TrainingJobConfig


class TestDefaults:
    def test_default_gang(self):
        config = TrainingJobConfig()
        assert config.num_nodes == 64
        assert config.step_time_hours == pytest.approx(0.01)
        assert config.detection_delay_hours == pytest.approx(0.05)
        assert config.total_work_hours is None


class TestValidation:
    def test_gang_size_must_be_positive(self):
        with pytest.raises(ValidationError):
            TrainingJobConfig(num_nodes=0)
        with pytest.raises(ValidationError):
            TrainingJobConfig(num_nodes=-4)

    @pytest.mark.parametrize(
        "step", [0.0, -0.1, math.nan, math.inf]
    )
    def test_bad_step_time_rejected(self, step):
        with pytest.raises(ValidationError):
            TrainingJobConfig(step_time_hours=step)

    @pytest.mark.parametrize("delay", [-0.1, math.nan, math.inf])
    def test_bad_detection_delay_rejected(self, delay):
        with pytest.raises(ValidationError):
            TrainingJobConfig(detection_delay_hours=delay)

    def test_zero_detection_delay_allowed(self):
        config = TrainingJobConfig(detection_delay_hours=0.0)
        assert config.detection_delay_hours == 0.0

    @pytest.mark.parametrize(
        "work", [0.0, -1.0, math.nan, math.inf]
    )
    def test_bad_total_work_rejected(self, work):
        with pytest.raises(ValidationError):
            TrainingJobConfig(total_work_hours=work)


class TestRoundTrip:
    def test_to_from_dict(self):
        config = TrainingJobConfig(
            num_nodes=128,
            step_time_hours=0.02,
            detection_delay_hours=0.1,
            total_work_hours=96.0,
        )
        assert TrainingJobConfig.from_dict(config.to_dict()) == config

    def test_open_ended_round_trip(self):
        config = TrainingJobConfig()
        restored = TrainingJobConfig.from_dict(config.to_dict())
        assert restored == config
        assert restored.total_work_hours is None

    def test_missing_key_rejected(self):
        data = TrainingJobConfig().to_dict()
        del data["num_nodes"]
        with pytest.raises(ValidationError):
            TrainingJobConfig.from_dict(data)
