"""Log-driven ETTF analytics (the serve endpoint payload)."""

import json

import pytest

from repro.synth import generate_log
from repro.train.metrics import (
    DEFAULT_CHECKPOINT_COST_HOURS,
    DEFAULT_GANG_GRID,
    ettf_payload,
)


@pytest.fixture(scope="module")
def payload():
    return ettf_payload(generate_log("a100", seed=5))


class TestEttfPayload:
    def test_headline_fields(self, payload):
        assert payload["machine"] == "a100"
        assert payload["fleet_nodes"] == 1024
        assert payload["system_mtbf_hours"] > 0
        assert payload["system_mttr_hours"] > 0
        assert payload["checkpoint_cost_hours"] == (
            DEFAULT_CHECKPOINT_COST_HOURS
        )

    def test_one_row_per_gang_size(self, payload):
        assert [row["gang_nodes"] for row in payload["gangs"]] == (
            sorted(DEFAULT_GANG_GRID)
        )

    def test_bigger_gangs_have_worse_ettr(self, payload):
        estimates = [row["ettr_estimate"] for row in payload["gangs"]]
        assert estimates == sorted(estimates, reverse=True)
        assert all(0.0 < e < 1.0 for e in estimates)

    def test_job_mtbf_thinning(self, payload):
        system = payload["system_mtbf_hours"]
        fleet = payload["fleet_nodes"]
        for row in payload["gangs"]:
            assert row["job_mtbf_hours"] == pytest.approx(
                system * fleet / row["gang_nodes"]
            )
            assert row["interrupts_per_day"] == pytest.approx(
                24.0 / row["job_mtbf_hours"]
            )

    def test_useful_pflops_discounted_share_of_rpeak(self, payload):
        rpeak = payload["rpeak_pflops"]
        fleet = payload["fleet_nodes"]
        for row in payload["gangs"]:
            share = rpeak * row["gang_nodes"] / fleet
            assert 0.0 < row["useful_pflops"] < share

    def test_grid_clamps_and_dedupes(self):
        log = generate_log("tsubame3", seed=5)  # 540-node fleet
        payload = ettf_payload(log, gang_grid=(8, 600, 10_000))
        assert [r["gang_nodes"] for r in payload["gangs"]] == [8, 540]

    def test_json_safe(self, payload):
        encoded = json.dumps(payload, sort_keys=True, allow_nan=False)
        assert json.loads(encoded)["machine"] == "a100"
