"""Training runs through the full ClusterSimulator pipeline."""

import pytest

from repro.errors import SimulationError
from repro.sim import (
    CheckpointPolicy,
    ClusterSimulator,
    WorkloadConfig,
)
from repro.train.config import TrainingJobConfig

POLICY = CheckpointPolicy(
    interval_hours=2.0, cost_hours=0.1, restart_cost_hours=0.5
)


class TestWiring:
    def test_report_carries_train_stats(self):
        simulator = ClusterSimulator(
            "a100",
            seed=7,
            checkpoint_policy=POLICY,
            train=TrainingJobConfig(num_nodes=64),
        )
        report = simulator.run(240.0)
        stats = report.train
        assert stats is not None
        assert stats.job_nodes == 64
        assert stats.interrupts > 0  # a100 gangs interrupt within 240h
        assert 0.0 < stats.ettr < 1.0
        assert stats.lost_work_by_category
        assert not stats.completed

    def test_headless_report_has_no_train_stats(self):
        report = ClusterSimulator("tsubame2", seed=7).run(200.0)
        assert report.train is None

    def test_finite_job_completes_through_simulator(self):
        simulator = ClusterSimulator(
            "tsubame3",
            seed=3,
            checkpoint_policy=POLICY,
            train=TrainingJobConfig(
                num_nodes=16, total_work_hours=48.0
            ),
        )
        report = simulator.run(720.0)
        assert report.train.completed
        assert report.train.work_committed_hours == pytest.approx(48.0)
        assert report.train.completed_at_hours < 720.0


class TestValidation:
    def test_train_requires_checkpoint_policy(self):
        with pytest.raises(SimulationError) as excinfo:
            ClusterSimulator(
                "a100", train=TrainingJobConfig(num_nodes=8)
            )
        assert "young_daly_policy" in str(excinfo.value)

    def test_train_and_workload_mutually_exclusive(self):
        with pytest.raises(SimulationError):
            ClusterSimulator(
                "a100",
                checkpoint_policy=POLICY,
                workload=WorkloadConfig(),
                train=TrainingJobConfig(num_nodes=8),
            )

    def test_gang_larger_than_fleet_rejected(self):
        with pytest.raises(SimulationError):
            ClusterSimulator(
                "tsubame3",
                checkpoint_policy=POLICY,
                train=TrainingJobConfig(num_nodes=1_000),
            )
