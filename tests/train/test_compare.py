"""Cross-machine training study: the generalized proportionality."""

import pytest

from repro.errors import ValidationError
from repro.train.compare import compare_training


@pytest.fixture(scope="module")
def study():
    return compare_training(
        ("tsubame2", "tsubame3", "a100", "h100"),
        gang_nodes=64,
        horizon_hours=240.0,
        replications=2,
        seed=3,
        max_workers=1,
    )


class TestComparison:
    def test_one_row_per_machine(self, study):
        assert [row.machine for row in study.rows] == [
            "tsubame2", "tsubame3", "a100", "h100"
        ]
        for row in study.rows:
            assert row.gang_nodes == 64
            assert 0.0 < row.ettr_mean <= 1.0
            assert row.goodput_pflops > 0
            assert row.pflop_hours_between_interrupts > 0

    def test_paper_proportionality_direction(self, study):
        # The source paper's Tsubame-2 -> Tsubame-3 claim, in the
        # generalized training framing: the newer machine banks more
        # goodput AND more failure-free PFLOP-hours.
        ratio = study.proportionality_ratio("tsubame3", "tsubame2")
        assert ratio["goodput_pflops"] > 1.0
        assert ratio["pflop_hours_between_interrupts"] > 1.0

    def test_modern_fleets_extend_the_direction(self, study):
        ratio = study.proportionality_ratio("h100", "a100")
        assert ratio["goodput_pflops"] > 1.0

    def test_modern_fleets_interrupt_more_often(self, study):
        # The Meta-style regime: far higher goodput, far higher
        # interruption rate than the Tsubame generations.
        a100 = study.row_for("a100")
        t3 = study.row_for("tsubame3")
        assert a100.interrupts_per_day_mean > t3.interrupts_per_day_mean

    def test_table_renders(self, study):
        table = study.table()
        lines = table.splitlines()
        assert len(lines) == 2 + len(study.rows)
        for row in study.rows:
            assert row.machine in table
        assert "goodput_pf" in lines[0]

    def test_to_dict_round_trips_to_json(self, study):
        import json

        payload = study.to_dict()
        encoded = json.dumps(payload, sort_keys=True, allow_nan=False)
        assert len(json.loads(encoded)["rows"]) == 4

    def test_unknown_row_rejected(self, study):
        with pytest.raises(ValidationError):
            study.row_for("tsubame1")


class TestValidation:
    def test_empty_machine_list_rejected(self):
        with pytest.raises(ValidationError):
            compare_training(())

    def test_bad_gang_rejected(self):
        with pytest.raises(ValidationError):
            compare_training(("tsubame2",), gang_nodes=0)

    def test_gang_clamped_to_fleet(self):
        study = compare_training(
            ("tsubame3",),
            gang_nodes=100_000,
            horizon_hours=120.0,
            replications=1,
            max_workers=1,
        )
        assert study.rows[0].gang_nodes == 540
