"""The /analyze/{name}/ettf serve endpoint."""

import asyncio
import json

import pytest

from repro.serve import DatasetRegistry, ReproApp
from repro.serve.http import HttpRequest


@pytest.fixture()
def app():
    registry = DatasetRegistry()
    registry.synthesize("h1", "h100", seed=9, failures=400)
    instance = ReproApp(registry, workers=1)
    yield instance
    asyncio.run(instance.close())


def get(app, path):
    request = HttpRequest(
        method="GET", path=path, query={}, headers={}, body=b""
    )
    return asyncio.run(app.dispatch(request))


class TestEttfEndpoint:
    def test_payload_served(self, app):
        response = get(app, "/analyze/h1/ettf")
        assert response.status == 200
        payload = json.loads(response.body)
        assert payload["machine"] == "h100"
        assert payload["fleet_nodes"] == 512
        assert [row["gang_nodes"] for row in payload["gangs"]] == [
            8, 64, 256, 512
        ]
        assert all(
            0.0 < row["ettr_estimate"] < 1.0
            for row in payload["gangs"]
        )

    def test_cached_bytes_identical(self, app):
        first = get(app, "/analyze/h1/ettf")
        second = get(app, "/analyze/h1/ettf")
        assert first.body == second.body

    def test_listed_in_index(self, app):
        response = get(app, "/")
        assert b"ettf" in response.body
