"""Monte-Carlo training ensembles: determinism and reporting."""

import pytest

from repro.errors import SimulationError, ValidationError
from repro.sim.checkpoint import CheckpointPolicy
from repro.sim.montecarlo import spawn_seeds
from repro.sim.simulator import ClusterSimulator
from repro.train.config import TrainingJobConfig
from repro.train.montecarlo import (
    TRAIN_METRICS,
    run_train_replications,
    train_ensemble_payload,
)

POLICY = CheckpointPolicy(
    interval_hours=2.0, cost_hours=0.1, restart_cost_hours=0.5
)
GANG = TrainingJobConfig(num_nodes=32)


def run_ensemble(**kwargs):
    kwargs.setdefault("machine", "tsubame3")
    kwargs.setdefault("replications", 4)
    kwargs.setdefault("horizon_hours", 300.0)
    kwargs.setdefault("checkpoint_policy", POLICY)
    kwargs.setdefault("train", GANG)
    kwargs.setdefault("seed", 11)
    return run_train_replications(**kwargs)


class TestEnsembleReport:
    def test_basic_report(self):
        ensemble = run_ensemble()
        assert ensemble.machine == "tsubame3"
        assert ensemble.gang_nodes == 32
        assert ensemble.replications == 4
        assert ensemble.failed_replications == 0
        assert set(ensemble.metrics) == set(TRAIN_METRICS)
        assert 0.0 < ensemble.ettr.mean <= 1.0
        assert "gang of 32 nodes" in ensemble.summary()

    def test_matches_independent_simulator_run(self):
        ensemble = run_ensemble(replications=1)
        seed = spawn_seeds(11, 1)[0]
        simulator = ClusterSimulator(
            "tsubame3",
            seed=seed,
            checkpoint_policy=POLICY,
            train=GANG,
            keep_injected_log=False,
        )
        report = simulator.run(300.0)
        assert ensemble.metrics["ettr"].mean == report.train.ettr
        assert ensemble.metrics["interrupts"].mean == float(
            report.train.interrupts
        )
        assert ensemble.metrics["lost_work_hours"].mean == (
            report.train.lost_work_hours
        )

    def test_payload_round_trips_to_json(self):
        import json

        payload = train_ensemble_payload(run_ensemble())
        encoded = json.dumps(payload, sort_keys=True, allow_nan=False)
        assert json.loads(encoded)["gang_nodes"] == 32


class TestDeterminism:
    def test_serial_parallel_parity(self):
        serial = run_ensemble(max_workers=1)
        parallel = run_ensemble(max_workers=2)
        for name in TRAIN_METRICS:
            a, b = serial.metrics[name], parallel.metrics[name]
            assert (a.mean, a.std, a.ci_lower, a.ci_upper) == (
                b.mean, b.std, b.ci_lower, b.ci_upper
            ), name

    def test_same_seed_reproduces(self):
        first = run_ensemble()
        second = run_ensemble()
        assert first.metrics == second.metrics

    def test_different_seed_differs(self):
        baseline = run_ensemble()
        other = run_ensemble(seed=12)
        assert (
            baseline.metrics["interrupts"].mean
            != other.metrics["interrupts"].mean
            or baseline.metrics["ettr"].mean
            != other.metrics["ettr"].mean
        )


class TestValidation:
    def test_bad_replications_rejected(self):
        with pytest.raises(ValidationError):
            run_ensemble(replications=0)

    def test_bad_ci_rejected(self):
        with pytest.raises(ValidationError):
            run_ensemble(ci=1.0)

    def test_gang_larger_than_fleet_fails_all(self):
        with pytest.raises(SimulationError):
            run_ensemble(
                replications=1,
                train=TrainingJobConfig(num_nodes=100_000),
            )

    def test_default_gang_when_train_omitted(self):
        ensemble = run_ensemble(train=None, replications=1)
        assert ensemble.gang_nodes == 64
