"""Property-based invariants of the training model.

Two acceptance properties from the issue:

* however failures land, an interruption can never destroy more than
  one checkpoint interval of work plus the in-flight step — so total
  lost work is bounded by interrupts x (interval + step);
* ensembles are bit-deterministic: the same master seed produces the
  same statistics serially and re-run.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machines.specs import get_machine
from repro.sim.checkpoint import CheckpointPolicy
from repro.sim.cluster import Cluster
from repro.sim.engine import SimulationEngine
from repro.train.config import TrainingJobConfig
from repro.train.gang import GangTrainingRun
from repro.train.montecarlo import (
    TRAIN_METRICS,
    run_train_replications,
)

_TOL = 1e-6

_policies = st.tuples(
    st.floats(min_value=0.5, max_value=5.0),    # interval
    st.floats(min_value=0.05, max_value=0.3),   # cost
    st.floats(min_value=0.0, max_value=1.0),    # restart
)
_steps = st.floats(min_value=0.01, max_value=0.4)
_failure_times = st.lists(
    st.floats(min_value=0.1, max_value=90.0),
    min_size=0,
    max_size=12,
    unique=True,
)


class TestLostWorkBound:
    @settings(max_examples=40, deadline=None)
    @given(
        policy=_policies,
        step=_steps,
        times=_failure_times,
        total_work=st.one_of(
            st.none(), st.floats(min_value=5.0, max_value=80.0)
        ),
    )
    def test_lost_work_bounded_by_interval_plus_step(
        self, policy, step, times, total_work
    ):
        interval, cost, restart = policy
        engine = SimulationEngine()
        cluster = Cluster(get_machine("tsubame3"))
        config = TrainingJobConfig(
            num_nodes=8,
            step_time_hours=step,
            detection_delay_hours=0.05,
            total_work_hours=total_work,
        )
        gang = GangTrainingRun(
            engine,
            cluster,
            config,
            CheckpointPolicy(
                interval_hours=interval,
                cost_hours=cost,
                restart_cost_hours=restart,
            ),
        )
        gang.start()

        def fail_if_running():
            if not gang.running:
                return
            node_id = min(gang.members)
            cluster.fail(node_id, "GPU", engine.now, ())
            gang.handle_node_failure(node_id, "GPU")

        for when in sorted(times):
            engine.schedule_at(when, fail_if_running)
        horizon = 100.0
        engine.run_until(horizon)
        stats = gang.finalize(horizon)

        per_interrupt_bound = interval + step + _TOL
        assert stats.lost_work_hours <= (
            stats.interrupts * per_interrupt_bound
        )
        assert stats.lost_work_hours == pytest.approx(
            sum(stats.lost_work_by_category.values()), abs=1e-9
        )
        # Conservation: committed + lost + overheads never exceed the
        # wall clock that actually elapsed.
        assert (
            stats.work_committed_hours
            + stats.lost_work_hours
            + stats.checkpoint_overhead_hours
            + stats.restart_overhead_hours
            + stats.stall_hours
        ) <= stats.elapsed_hours + len(times) * per_interrupt_bound
        assert 0.0 <= stats.ettr <= 1.0 + _TOL
        if total_work is not None:
            assert stats.work_committed_hours <= total_work + _TOL


class TestEnsembleDeterminism:
    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_serial_rerun_is_bit_identical(self, seed):
        kwargs = dict(
            machine="tsubame3",
            replications=2,
            horizon_hours=150.0,
            checkpoint_policy=CheckpointPolicy(
                interval_hours=2.0, cost_hours=0.1,
                restart_cost_hours=0.5,
            ),
            train=TrainingJobConfig(num_nodes=16),
            seed=seed,
            max_workers=1,
        )
        first = run_train_replications(**kwargs)
        second = run_train_replications(**kwargs)
        for name in TRAIN_METRICS:
            a, b = first.metrics[name], second.metrics[name]
            assert (a.mean, a.std, a.stderr, a.ci_lower, a.ci_upper) \
                == (b.mean, b.std, b.stderr, b.ci_lower, b.ci_upper)
