"""Unit tests for the gang-scheduled training run.

These drive :class:`GangTrainingRun` directly on an engine + cluster
(no injector, no repair service), scheduling failures by hand so every
commit/lost/stall number can be checked against closed-form arithmetic.

The shared geometry: interval 1.0 h, checkpoint cost 0.1 h, restart
cost 0.2 h, step 0.1 h -> 10 steps per cycle, cycle work 1.0 h, cycle
wall 1.1 h.
"""

import pytest

from repro.errors import SimulationError
from repro.machines.specs import get_machine
from repro.sim.checkpoint import CheckpointPolicy
from repro.sim.cluster import Cluster
from repro.sim.engine import SimulationEngine
from repro.train.config import TrainingJobConfig
from repro.train.gang import GANG_JOB_ID, GangTrainingRun

POLICY = CheckpointPolicy(
    interval_hours=1.0, cost_hours=0.1, restart_cost_hours=0.2
)


def make_gang(total_work=None, num_nodes=4, detection_delay=0.05):
    engine = SimulationEngine()
    cluster = Cluster(get_machine("tsubame3"))
    config = TrainingJobConfig(
        num_nodes=num_nodes,
        step_time_hours=0.1,
        detection_delay_hours=detection_delay,
        total_work_hours=total_work,
    )
    gang = GangTrainingRun(engine, cluster, config, POLICY)
    return engine, cluster, gang


def fail_member(engine, cluster, gang, category="GPU"):
    """Fail the lowest-numbered current member at engine.now."""
    node_id = min(gang.members)
    cluster.fail(node_id, category, engine.now, ())
    gang.handle_node_failure(node_id, category)
    return node_id


class TestCleanRun:
    def test_finite_job_completes(self):
        engine, _, gang = make_gang(total_work=3.0)
        gang.start()
        engine.run_until(100.0)
        stats = gang.finalize(100.0)
        assert stats.completed
        # 3 cycles, last one commits at completion with no trailing
        # checkpoint: 3 * 1.1 - 0.1.
        assert stats.completed_at_hours == pytest.approx(3.2)
        assert stats.elapsed_hours == pytest.approx(3.2)
        assert stats.work_committed_hours == pytest.approx(3.0)
        assert stats.steps_committed == 30
        assert stats.checkpoint_overhead_hours == pytest.approx(0.2)
        assert stats.interrupts == 0
        assert stats.restarts == 0
        assert stats.lost_work_hours == 0.0
        assert stats.ettr == pytest.approx(3.0 / 3.2)

    def test_partial_tail_cycle(self):
        # 2 full cycles + 0.35 h tail -> tail rounds up to 4 steps.
        engine, _, gang = make_gang(total_work=2.35)
        gang.start()
        engine.run_until(100.0)
        stats = gang.finalize(100.0)
        assert stats.completed
        # 2 * 1.1 (both full cycles checkpoint) + 4 * 0.1 tail steps.
        assert stats.completed_at_hours == pytest.approx(2.6)
        assert stats.work_committed_hours == pytest.approx(2.35)
        assert stats.steps_committed == 24
        assert stats.checkpoint_overhead_hours == pytest.approx(0.2)

    def test_open_ended_commits_full_cycles_at_horizon(self):
        engine, _, gang = make_gang(total_work=None)
        gang.start()
        engine.run_until(5.75)
        stats = gang.finalize(5.75)
        assert not stats.completed
        # 5.75 / 1.1 -> 5 finished cycles; the in-flight sixth is
        # neither committed nor lost.
        assert stats.work_committed_hours == pytest.approx(5.0)
        assert stats.steps_committed == 50
        assert stats.lost_work_hours == 0.0
        assert stats.ettr == pytest.approx(5.0 / 5.75)


class TestInterruption:
    def test_failure_accounting(self):
        engine, cluster, gang = make_gang(total_work=4.0)
        gang.start()
        engine.schedule_at(
            2.35, lambda: fail_member(engine, cluster, gang)
        )
        engine.run_until(100.0)
        stats = gang.finalize(100.0)
        # At t=2.35 the segment finished 2 cycles (2.2 h wall); the
        # 0.15 h since the last checkpoint is lost and attributed.
        assert stats.interrupts == 1
        assert stats.lost_work_hours == pytest.approx(0.15)
        assert stats.lost_work_by_category == {
            "GPU": pytest.approx(0.15)
        }
        # Restart: eligible at 2.40, capacity is plentiful, so stall
        # is exactly the detection delay; restore costs 0.2 h.
        assert stats.restarts == 1
        assert stats.stall_hours == pytest.approx(0.05)
        assert stats.restart_overhead_hours == pytest.approx(0.2)
        assert stats.blast_radius_node_hours == pytest.approx(
            4 * (0.05 + 0.2)
        )
        # Remaining 2.0 h resumes at 2.6 and needs 2 * 1.1 - 0.1.
        assert stats.completed
        assert stats.completed_at_hours == pytest.approx(4.7)
        assert stats.work_committed_hours == pytest.approx(4.0)
        assert stats.steps_committed == 40
        # 2 committed mid-run + 1 inside the final segment.
        assert stats.checkpoint_overhead_hours == pytest.approx(0.3)
        assert stats.ettr == pytest.approx(4.0 / 4.7)

    def test_non_member_failure_ignored(self):
        engine, cluster, gang = make_gang(total_work=3.0)
        gang.start()

        def outside_failure():
            victim = max(cluster.available_nodes())
            assert victim not in gang.members
            cluster.fail(victim, "GPU", engine.now, ())
            gang.handle_node_failure(victim, "GPU")

        engine.schedule_at(1.5, outside_failure)
        engine.run_until(100.0)
        stats = gang.finalize(100.0)
        assert stats.interrupts == 0
        assert stats.completed_at_hours == pytest.approx(3.2)

    def test_lost_work_never_exceeds_cycle(self):
        # Fail just before the third checkpoint would commit: the
        # entire in-flight cycle is lost, but never more.
        engine, cluster, gang = make_gang(total_work=None)
        gang.start()
        engine.schedule_at(
            3.29, lambda: fail_member(engine, cluster, gang)
        )
        engine.run_until(3.5)
        stats = gang.finalize(3.5)
        assert stats.lost_work_hours == pytest.approx(1.0, abs=0.02)
        assert stats.lost_work_hours <= (
            POLICY.interval_hours + 0.1 + 1e-9
        )

    def test_queued_gang_accrues_stall_at_horizon(self):
        # Gang spans the whole fleet: once one member fails there is
        # never capacity again (no repair service in this harness).
        engine, cluster, gang = make_gang(
            total_work=None, num_nodes=cluster_size()
        )
        gang.start()
        engine.schedule_at(
            2.5, lambda: fail_member(engine, cluster, gang)
        )
        engine.run_until(10.0)
        stats = gang.finalize(10.0)
        assert not stats.completed
        assert stats.interrupts == 1
        assert stats.restarts == 0
        # Queued from 2.5 to the horizon.
        assert stats.stall_hours == pytest.approx(7.5)
        assert stats.work_committed_hours == pytest.approx(2.0)

    def test_failure_after_final_commit_finishes(self):
        # Tie/tolerance guard: when every useful hour is already
        # committed as a member fails, the gang finishes rather than
        # requeueing.  Normal event timing fires the completion one
        # checkpoint-cost earlier, so drive the committed state
        # directly to exercise the guard.
        engine, cluster, gang = make_gang(total_work=2.0)
        gang.start()
        engine.run_until(1.0)
        gang._work_committed = 2.0
        node_id = min(gang.members)
        cluster.fail(node_id, "GPU", engine.now, ())
        gang.handle_node_failure(node_id, "GPU")
        stats = gang.finalize(10.0)
        assert stats.completed
        assert stats.interrupts == 1
        assert stats.restarts == 0
        assert stats.lost_work_hours == 0.0
        assert stats.completed_at_hours == pytest.approx(1.0)


def cluster_size() -> int:
    return get_machine("tsubame3").num_nodes


class TestLifecycle:
    def test_gang_larger_than_cluster_rejected(self):
        engine = SimulationEngine()
        cluster = Cluster(get_machine("tsubame3"))
        config = TrainingJobConfig(num_nodes=cluster.num_nodes + 1)
        with pytest.raises(SimulationError):
            GangTrainingRun(engine, cluster, config, POLICY)

    def test_publishes_scheduler_compatible_topics(self):
        engine, cluster, gang = make_gang(total_work=2.0)
        seen = []
        for topic in (
            "job_submit", "job_start", "job_killed", "job_complete"
        ):
            engine.subscribe(
                topic,
                lambda topic=topic, **payload: seen.append(
                    (topic, payload)
                ),
            )
        gang.start()
        engine.schedule_at(
            1.5, lambda: fail_member(engine, cluster, gang)
        )
        engine.run_until(100.0)
        kinds = [topic for topic, _ in seen]
        assert kinds == [
            "job_submit", "job_start", "job_killed", "job_start",
            "job_complete",
        ]
        submit = dict(seen[0][1])
        assert submit["job_id"] == GANG_JOB_ID
        assert submit["num_nodes"] == 4
        start = dict(seen[1][1])
        assert len(start["nodes"]) == 4

    def test_repair_hook_retries_queue(self):
        engine, cluster, gang = make_gang(
            total_work=None, num_nodes=cluster_size(),
            detection_delay=0.0,
        )
        gang.start()

        def fail_and_recover():
            node_id = fail_member(engine, cluster, gang)
            # The gang cannot restart: one node short.
            assert not gang.running
            cluster.start_repair(node_id, engine.now)
            cluster.complete_repair(node_id, engine.now + 1.0)

        engine.schedule_at(1.15, fail_and_recover)
        engine.schedule_at(
            2.15, lambda: gang.handle_node_repair(0)
        )
        engine.run_until(3.0)
        stats = gang.finalize(3.0)
        assert stats.restarts == 1
        assert stats.stall_hours == pytest.approx(1.0)
