"""The ``repro-failures train`` command group."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_subcommands_exist(self):
        parser = build_parser()
        for argv in (
            ["train", "simulate", "--machine", "a100"],
            ["train", "compare"],
        ):
            args = parser.parse_args(argv)
            assert args.command == "train"
            assert args.train_command == argv[1]

    def test_machine_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["train", "simulate", "--machine", "summit"]
            )

    def test_compare_defaults_to_all_machines(self):
        args = build_parser().parse_args(["train", "compare"])
        assert args.machines == "a100,h100,tsubame2,tsubame3"


class TestSimulate:
    def test_single_run_prints_stats(self, capsys):
        assert main([
            "train", "simulate", "--machine", "a100",
            "--horizon", "240", "--seed", "7",
        ]) == 0
        out = capsys.readouterr().out
        assert "ETTR:" in out
        assert "lost work by category:" in out
        assert "checkpoint every:" in out

    def test_single_run_json(self, capsys):
        assert main([
            "train", "simulate", "--machine", "h100",
            "--horizon", "120", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["machine"] == "h100"
        assert 0.0 < payload["ettr"] <= 1.0

    def test_ensemble_prints_summary(self, capsys):
        assert main([
            "train", "simulate", "--machine", "tsubame3",
            "--nodes", "16", "--horizon", "200",
            "--replications", "2", "--workers", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "2 replications" in out
        assert "ettr:" in out

    def test_explicit_interval_overrides_young_daly(self, capsys):
        assert main([
            "train", "simulate", "--machine", "tsubame3",
            "--horizon", "120", "--checkpoint-interval", "3.5",
        ]) == 0
        assert "checkpoint every:   3.50 h" in capsys.readouterr().out

    def test_record_requires_single_replication(self, capsys):
        assert main([
            "train", "simulate", "--machine", "a100",
            "--replications", "2", "--record", "x.jsonl",
        ]) == 1
        assert "replications" in capsys.readouterr().err

    def test_record_then_replay(self, tmp_path, capsys):
        out = tmp_path / "train.trace.jsonl"
        assert main([
            "train", "simulate", "--machine", "a100",
            "--horizon", "240", "--seed", "7",
            "--record", str(out),
        ]) == 0
        assert out.exists()
        assert main(["trace", "replay", str(out)]) == 0
        assert "bit-exactly" in capsys.readouterr().out
        assert main(["trace", "info", str(out)]) == 0
        assert "training gang:      64 nodes" in (
            capsys.readouterr().out
        )


class TestCompare:
    def test_acceptance_table(self, capsys):
        assert main([
            "train", "compare",
            "--machines", "tsubame2,tsubame3,a100,h100",
            "--horizon", "120", "--replications", "1",
            "--workers", "1",
        ]) == 0
        out = capsys.readouterr().out
        for machine in ("tsubame2", "tsubame3", "a100", "h100"):
            assert machine in out
        assert "goodput_pf" in out
        assert "proportionality" in out

    def test_json_output(self, capsys):
        assert main([
            "train", "compare", "--machines", "tsubame3",
            "--horizon", "120", "--replications", "1",
            "--workers", "1", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["rows"][0]["machine"] == "tsubame3"

    def test_unknown_machine_is_domain_error(self, capsys):
        assert main([
            "train", "compare", "--machines", "summit",
        ]) == 1
        assert "error:" in capsys.readouterr().err
