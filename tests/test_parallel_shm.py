"""Tests for the shared-memory zero-copy payload handoff."""

import pickle

import numpy as np
import pytest

from repro.core.columns import ColumnarView
from repro.core.metrics import mtbf, mttr
from repro.errors import SweepError
from repro.parallel import (
    SharedPayload,
    ShmColumnBlock,
    shutdown_pool,
    sweep,
    sweep_iter,
)
from repro.parallel.shm import resolve_shared


@pytest.fixture(autouse=True)
def _cold_pool():
    shutdown_pool()
    yield
    shutdown_pool()


class TestShmColumnBlock:
    def test_roundtrip_preserves_arrays_bitwise(self):
        arrays = {
            "floats": np.linspace(0.0, 1.0, 1001),
            "ints": np.arange(500, dtype=np.int64),
            "bools": np.array([True, False, True]),
            "empty": np.empty(0, dtype=np.float64),
        }
        with ShmColumnBlock.export(arrays, {"tag": "t"}) as block:
            attached = ShmColumnBlock.attach(block.handle)
            rebuilt = attached.arrays()
            assert set(rebuilt) == set(arrays)
            for key, original in arrays.items():
                assert rebuilt[key].dtype == original.dtype
                np.testing.assert_array_equal(rebuilt[key], original)
            assert block.handle.meta["tag"] == "t"
            attached.close()

    def test_attached_arrays_are_readonly_views(self):
        arrays = {"a": np.arange(64, dtype=np.float64)}
        with ShmColumnBlock.export(arrays) as block:
            attached = ShmColumnBlock.attach(block.handle)
            view = attached.array("a")
            assert not view.flags.writeable
            assert not view.flags.owndata  # view, not a copy

    def test_handle_is_metadata_sized(self):
        """The whole point: a million-element array travels to workers
        as a few hundred bytes of handle, not megabytes of pickle."""
        big = np.arange(1_000_000, dtype=np.float64)
        with ShmColumnBlock.export({"big": big}) as block:
            handle_bytes = len(pickle.dumps(block.handle))
            assert handle_bytes < 2_000
            assert big.nbytes > 1_000_000

    def test_unknown_key_raises(self):
        with ShmColumnBlock.export({"a": np.arange(3)}) as block:
            with pytest.raises(KeyError):
                block.array("b")

    def test_close_is_idempotent(self):
        block = ShmColumnBlock.export({"a": np.arange(3)})
        block.close()
        block.close()


class TestColumnarViewTransport:
    def test_export_attach_parity(self, t2_log):
        view = t2_log.columns
        block = view.export_shm()
        try:
            rebuilt = ColumnarView.from_shm(block.handle)
            assert rebuilt.machine == view.machine
            assert rebuilt.category_names == view.category_names
            assert rebuilt.taxonomy_complete == view.taxonomy_complete
            np.testing.assert_array_equal(
                rebuilt.ts_hours, view.ts_hours
            )
            np.testing.assert_array_equal(
                rebuilt.node_ids, view.node_ids
            )
            np.testing.assert_array_equal(
                rebuilt.slot_values, view.slot_values
            )
            np.testing.assert_array_equal(
                rebuilt.slot_offsets, view.slot_offsets
            )
            assert len(rebuilt) == len(view)
        finally:
            block.close()

    def test_from_shm_rejects_foreign_handle(self):
        with ShmColumnBlock.export({"a": np.arange(3)}) as block:
            with pytest.raises(SweepError):
                ColumnarView.from_shm(block.handle)


def _score_window(task: tuple[float, int], log) -> tuple[float, float, int]:
    """Shared-payload worker: compute metrics against the shared log."""
    window, scale = task
    return (mtbf(log) * scale, mttr(log), len(log))


def _dict_item(item: int, shared: dict) -> int:
    return shared["base"] + item


class TestSharedSweepParity:
    def test_failure_log_payload_bit_parity(self, t2_log):
        tasks = [(336.0, 1), (720.0, 2), (1000.0, 3), (2000.0, 4)]
        serial = sweep(_score_window, tasks, shared=t2_log)
        parallel = sweep(
            _score_window, tasks, processes=2, shared=t2_log
        )
        assert parallel == serial  # bit-exact floats included

    def test_columnar_view_payload_bit_parity(self, t2_log):
        view = t2_log.columns

        serial = sweep(_sum_columns, [1, 2, 3], shared=view)
        parallel = sweep(
            _sum_columns, [1, 2, 3], processes=2, shared=view
        )
        assert parallel == serial

    def test_pickle_fallback_for_plain_objects(self):
        shared = {"base": 100}
        assert sweep(
            _dict_item, [1, 2, 3], processes=2, shared=shared
        ) == [101, 102, 103]

    def test_sweep_iter_accepts_shared(self, t2_log):
        tasks = [(336.0, 1), (720.0, 2)]
        streamed = [
            o.result
            for o in sweep_iter(
                _score_window, tasks, processes=2, shared=t2_log
            )
        ]
        assert streamed == sweep(_score_window, tasks, shared=t2_log)


def _sum_columns(scale: int, view) -> float:
    return float(view.ts_hours.sum()) * scale + float(
        view.node_ids.sum()
    )


class TestSharedPayloadInternals:
    def test_spec_is_metadata_sized_for_logs(self, t2_log):
        """Per-chunk payload cost drops from O(dataset) to
        O(metadata): the spec must stay tiny however big the log."""
        payload = SharedPayload(t2_log)
        try:
            assert payload.spec_nbytes() < 4_000
            assert len(pickle.dumps(t2_log)) > payload.spec_nbytes()
        finally:
            payload.close()

    def test_resolve_caches_by_token(self, t2_log):
        payload = SharedPayload(t2_log)
        try:
            first = resolve_shared(payload.spec)
            second = resolve_shared(payload.spec)
            assert first is second  # one materialisation per process
        finally:
            payload.close()

    def test_resolved_log_equals_original(self, t2_log):
        payload = SharedPayload(t2_log)
        try:
            rebuilt = resolve_shared(payload.spec)
            assert rebuilt == t2_log
            # The injected columns are the shm views, ready to go —
            # no rebuild from records in the worker.
            view = rebuilt.columns
            np.testing.assert_array_equal(
                view.ts_hours, t2_log.columns.ts_hours
            )
            assert not view.ts_hours.flags.owndata
        finally:
            payload.close()

    def test_close_keeps_attached_views_alive(self, t2_log):
        """POSIX shm: the owner unlinking must not invalidate views a
        consumer already attached (warm-pool workers may still be
        finishing a chunk when the parent closes the payload)."""
        payload = SharedPayload(t2_log.columns)
        rebuilt = ColumnarView.from_shm(payload.spec.block)
        payload.close()
        np.testing.assert_array_equal(
            rebuilt.ts_hours, t2_log.columns.ts_hours
        )
