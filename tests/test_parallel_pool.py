"""Tests for the warm worker pool and work-stealing dispatch.

The pool singleton is process-wide state, so every test that touches
it shuts it down afterwards — a leaked warm pool would make later
tests' spawn counters lie.
"""

import os
import time

import pytest

from repro.errors import ValidationError
from repro.parallel import (
    WorkerPool,
    available_cpus,
    default_processes,
    get_pool,
    pool_stats,
    shutdown_pool,
    sweep,
    sweep_iter,
)


@pytest.fixture(autouse=True)
def _cold_pool():
    """Each test starts and ends with no warm pool."""
    shutdown_pool()
    yield
    shutdown_pool()


def _square(seed: int) -> int:
    return seed * seed


def _sleep_then_square(task: tuple[int, float]) -> int:
    seed, duration = task
    time.sleep(duration)
    return seed * seed


def _interrupt_on_three(item: int) -> int:
    if item == 3:
        raise KeyboardInterrupt
    return item


class TestWarmPoolReuse:
    def test_singleton_survives_across_sweeps(self):
        sweep(_square, list(range(8)), processes=2)
        first = pool_stats()
        assert first is not None and first["alive"]
        assert first["spawns"] == 1
        sweep(_square, list(range(8)), processes=2)
        second = pool_stats()
        assert second["spawns"] == 1  # no second cold start
        assert second["generation"] == first["generation"]

    def test_sweep_iter_keeps_pool_warm(self):
        list(sweep_iter(_square, list(range(8)), processes=2))
        assert pool_stats()["alive"]
        list(sweep_iter(_square, list(range(8)), processes=2))
        assert pool_stats()["spawns"] == 1

    def test_early_abandonment_keeps_pool_warm(self):
        iterator = sweep_iter(_square, list(range(40)), processes=2)
        next(iterator)
        iterator.close()
        stats = pool_stats()
        assert stats is not None and stats["alive"]
        # ... and the pool is still usable afterwards.
        assert sweep(_square, [5, 6], processes=2) == [25, 36]
        assert pool_stats()["spawns"] == 1

    def test_grows_but_never_shrinks(self):
        sweep(_square, list(range(6)), processes=2)
        assert pool_stats()["max_workers"] == 2
        sweep(_square, list(range(6)), processes=3)
        grown = pool_stats()
        assert grown["max_workers"] == 3
        assert grown["spawns"] == 2
        sweep(_square, list(range(6)), processes=2)
        assert pool_stats()["max_workers"] == 3
        assert pool_stats()["spawns"] == 2

    def test_serial_sweeps_never_spawn_a_pool(self):
        sweep(_square, list(range(6)))
        sweep(_square, list(range(6)), processes=1)
        assert pool_stats() is None


class TestPoolLifecycle:
    def test_shutdown_is_idempotent(self):
        sweep(_square, [1, 2, 3], processes=2)
        shutdown_pool()
        shutdown_pool()
        assert pool_stats() is None

    def test_pool_respawns_after_shutdown(self):
        sweep(_square, [1, 2], processes=2)
        shutdown_pool()
        assert sweep(_square, [3, 4], processes=2) == [9, 16]
        assert pool_stats()["spawns"] == 1  # fresh pool, fresh counter

    def test_get_pool_reuses_until_shutdown(self):
        pool = get_pool(2)
        assert get_pool(2) is pool
        shutdown_pool()
        assert get_pool(2) is not pool

    def test_direct_worker_pool_rejects_bad_width(self):
        with pytest.raises(ValueError):
            WorkerPool(0)

    def test_shutdown_pool_closes_executor(self):
        pool = get_pool(2)
        shutdown_pool()
        assert pool.closed
        with pytest.raises(RuntimeError):
            pool.executor()

    def test_notify_broken_respawns_once_per_generation(self):
        pool = get_pool(2)
        _executor, generation = pool.executor()
        pool.notify_broken(generation)
        pool.notify_broken(generation)  # stale: no second respawn
        stats = pool.stats()
        assert stats["generation"] == generation + 1
        assert stats["spawns"] == 2

    def test_stats_record_creating_pid(self):
        get_pool(2)
        assert pool_stats()["created_pid"] == os.getpid()

    def test_keyboard_interrupt_shuts_pool_down(self):
        """Ctrl-C mid-sweep must not leave warm workers behind — the
        CLI's exit-130 path relies on the pool dying with the sweep,
        not being joined at interpreter exit."""
        sweep(_square, list(range(4)), processes=2)  # warm the pool
        with pytest.raises(KeyboardInterrupt):
            sweep(_interrupt_on_three, list(range(8)), processes=2)
        assert pool_stats() is None
        # ... and parallelism still works afterwards (fresh pool).
        assert sweep(_square, [2, 3], processes=2) == [4, 9]


class TestWorkerCountPolicy:
    def test_repro_workers_env_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert default_processes() == 3

    def test_without_env_follows_affinity(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert default_processes() == available_cpus()

    def test_env_must_be_positive_integer(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "zero")
        with pytest.raises(ValidationError):
            default_processes()
        monkeypatch.setenv("REPRO_WORKERS", "0")
        with pytest.raises(ValidationError):
            default_processes()

    def test_available_cpus_ignores_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "64")
        assert available_cpus() <= (os.cpu_count() or 1)


class TestWorkStealing:
    def test_uneven_lengths_ordered_and_complete(self):
        """One 100x-long item among 31 short ones: results must come
        back complete and input-ordered regardless of which worker
        drew the long straw."""
        short, long = 0.005, 0.5
        tasks = [(i, long if i == 7 else short) for i in range(32)]
        outcomes = list(
            sweep_iter(_sleep_then_square, tasks, processes=4)
        )
        assert [o.index for o in outcomes] == list(range(32))
        assert [o.result for o in outcomes] == [
            i * i for i in range(32)
        ]
        assert all(o.ok for o in outcomes)

    def test_no_idle_worker_stall(self):
        """Autotuned chunking must not serialize behind the long item:
        the 31 short items (~0.31 s of sleep) and one 0.75 s item at 4
        workers should finish in well under the serial ~1.06 s — even
        on a single-CPU host, since sleeps overlap across processes.
        Generous bound (0.75 s of irreducible long-item time + slack)
        so a loaded CI box does not flake."""
        short, long = 0.01, 0.75
        tasks = [(i, long if i == 0 else short) for i in range(32)]
        sweep(_sleep_then_square, tasks, processes=4)  # warm the pool
        started = time.perf_counter()
        results = sweep(_sleep_then_square, tasks, processes=4)
        elapsed = time.perf_counter() - started
        assert results == [i * i for i in range(32)]
        serial_sum = long + 31 * short
        assert elapsed < serial_sum, (
            f"parallel run took {elapsed:.3f}s, not faster than the "
            f"{serial_sum:.3f}s serial sum — workers stalled"
        )

    def test_explicit_chunksize_bypasses_autotune(self):
        tasks = [(i, 0.001) for i in range(9)]
        assert sweep(
            _sleep_then_square, tasks, processes=2, chunksize=9
        ) == [i * i for i in range(9)]
