"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

from datetime import datetime, timedelta

import pytest

from repro.core.records import FailureLog, FailureRecord
from repro.synth import generate_log

#: A fixed origin for hand-built logs.
T0 = datetime(2020, 1, 1)


def make_record(
    record_id: int = 0,
    hours: float = 0.0,
    node_id: int = 0,
    category: str = "GPU",
    ttr_hours: float = 10.0,
    gpus_involved: tuple[int, ...] = (),
    root_locus: str | None = None,
) -> FailureRecord:
    """Build a record ``hours`` after T0 with compact defaults."""
    return FailureRecord(
        record_id=record_id,
        timestamp=T0 + timedelta(hours=hours),
        node_id=node_id,
        category=category,
        ttr_hours=ttr_hours,
        gpus_involved=gpus_involved,
        root_locus=root_locus,
    )


def make_log(
    records: list[FailureRecord],
    machine: str = "tsubame2",
    span_hours: float = 1000.0,
    strict_taxonomy: bool = True,
) -> FailureLog:
    """Build a log over [T0, T0 + span] from hand-built records."""
    return FailureLog(
        machine=machine,
        records=tuple(records),
        window_start=T0,
        window_end=T0 + timedelta(hours=span_hours),
        _strict_taxonomy=strict_taxonomy,
    )


@pytest.fixture(scope="session")
def t2_log() -> FailureLog:
    """The calibrated Tsubame-2 log used across the suite (seed 42)."""
    return generate_log("tsubame2", seed=42)


@pytest.fixture(scope="session")
def t3_log() -> FailureLog:
    """The calibrated Tsubame-3 log used across the suite (seed 42)."""
    return generate_log("tsubame3", seed=42)
