"""Tests for prediction-driven proactive maintenance."""

import pytest

from repro.errors import SimulationError, ValidationError
from repro.machines.specs import TSUBAME3
from repro.predict import RateBasedPredictor, TemporalLocalityPredictor
from repro.sim import (
    Cluster,
    ClusterSimulator,
    ProactiveMaintainer,
    RepairPolicy,
    RepairService,
    SimulationEngine,
    SparePool,
)
from tests.conftest import make_record


def _maintainer(predictor=None, **kwargs):
    engine = SimulationEngine()
    cluster = Cluster(TSUBAME3)
    pool = SparePool({"GPU": 0})
    service = RepairService(
        engine,
        cluster,
        RepairPolicy(hardware_categories=frozenset({"GPU"})),
        pool,
    )
    maintainer = ProactiveMaintainer(
        engine,
        service,
        predictor or TemporalLocalityPredictor(),
        **kwargs,
    )
    return maintainer, pool


class TestProactiveMaintainer:
    def test_prestages_on_alarm(self):
        maintainer, pool = _maintainer()
        maintainer.on_failure(
            make_record(0, hours=0, category="GPU", gpus_involved=(0, 1)),
            0.0,
        )
        assert maintainer.prestaged == 1
        assert pool.level("GPU") == 1

    def test_no_alarm_no_prestage(self):
        maintainer, pool = _maintainer()
        maintainer.on_failure(
            make_record(0, hours=0, category="GPU", gpus_involved=(0,)),
            0.0,
        )
        assert maintainer.prestaged == 0
        assert pool.level("GPU") == 0

    def test_budget_cap(self):
        maintainer, _ = _maintainer(max_prestages=2, cooldown_hours=0.0)
        for index in range(5):
            maintainer.on_failure(
                make_record(index, hours=float(index), category="GPU",
                            gpus_involved=(0, 1)),
                float(index) * 100.0,
            )
        assert maintainer.prestaged == 2

    def test_cooldown_limits_burst_staging(self):
        maintainer, _ = _maintainer(cooldown_hours=50.0)
        for index, time in enumerate((0.0, 10.0, 100.0)):
            maintainer.on_failure(
                make_record(index, hours=time, category="GPU",
                            gpus_involved=(0, 1)),
                time,
            )
        # The t=10 alarm falls inside the cooldown; t=100 stages again.
        assert maintainer.prestaged == 2

    def test_time_runs_forward(self):
        maintainer, _ = _maintainer(cooldown_hours=0.0)
        maintainer.on_failure(
            make_record(0, hours=10, category="GPU", gpus_involved=(0, 1)),
            10.0,
        )
        with pytest.raises(SimulationError):
            maintainer.on_failure(
                make_record(1, hours=5, category="GPU",
                            gpus_involved=(0, 1)),
                5.0,
            )

    def test_alarm_counter(self):
        maintainer, _ = _maintainer(predictor=RateBasedPredictor(
            window_hours=1000.0, threshold=2))
        maintainer.on_failure(make_record(0, hours=0, node_id=4), 0.0)
        maintainer.on_failure(make_record(1, hours=1, node_id=4), 1.0)
        assert maintainer.alarms_seen == 1

    def test_invalid_params_rejected(self):
        with pytest.raises(ValidationError):
            _maintainer(max_prestages=0)
        with pytest.raises(ValidationError):
            _maintainer(cooldown_hours=-1.0)


class TestProactiveEndToEnd:
    def test_prestaging_cuts_waiting_under_scarce_spares(self):
        def run(proactive: bool):
            simulator = ClusterSimulator(
                "tsubame2",
                seed=5,
                initial_spares={"GPU": 0},
                intensity=2.0,
            )
            if proactive:
                maintainer = ProactiveMaintainer(
                    simulator.engine,
                    simulator.repair,
                    TemporalLocalityPredictor(),
                    max_prestages=50,
                    cooldown_hours=0.0,
                )
                simulator.injector.add_record_listener(
                    maintainer.on_failure
                )
            report = simulator.run(1500.0)
            return report

        reactive = run(proactive=False)
        proactive = run(proactive=True)
        # Tsubame-2 multi-GPU failures are frequent, so prestaging
        # fires often and GPU repairs stop waiting on procurement.
        assert proactive.spare_stockouts <= reactive.spare_stockouts
        assert (proactive.mean_waiting_hours
                < reactive.mean_waiting_hours)
