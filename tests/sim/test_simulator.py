"""Tests for the fault injector and the simulation facade."""

import pytest

from repro.errors import SimulationError
from repro.sim import (
    CheckpointPolicy,
    ClusterSimulator,
    RepairPolicy,
    WorkloadConfig,
    hardware_categories,
)


class TestHardwareCategories:
    def test_t2_hardware_set(self):
        hardware = hardware_categories("tsubame2")
        assert "GPU" in hardware
        assert "SSD" in hardware
        assert "PBS" not in hardware

    def test_t3_hardware_set(self):
        hardware = hardware_categories("tsubame3")
        assert "Power-Board" in hardware
        assert "Software" not in hardware
        assert "Unknown" not in hardware


class TestClusterSimulator:
    def test_deterministic_runs(self):
        a = ClusterSimulator("tsubame2", seed=9).run(1000.0)
        b = ClusterSimulator("tsubame2", seed=9).run(1000.0)
        assert a.failures_injected == b.failures_injected
        assert a.effective_mttr_hours == b.effective_mttr_hours

    def test_failure_rate_near_profile(self):
        report = ClusterSimulator("tsubame2", seed=0).run(3000.0)
        # ~15.3 h MTBF => ~196 failures over 3000 h.
        assert 130 <= report.failures_injected <= 270

    def test_intensity_scales_failures(self):
        base = ClusterSimulator("tsubame2", seed=0).run(1500.0)
        double = ClusterSimulator("tsubame2", seed=0,
                                  intensity=2.0).run(1500.0)
        assert double.failures_injected > 1.5 * base.failures_injected

    def test_more_technicians_cut_waiting(self):
        lean = ClusterSimulator(
            "tsubame2", seed=1,
            repair_policy=RepairPolicy(num_technicians=1),
        ).run(1500.0)
        staffed = ClusterSimulator(
            "tsubame2", seed=1,
            repair_policy=RepairPolicy(num_technicians=12),
        ).run(1500.0)
        assert staffed.mean_waiting_hours < lean.mean_waiting_hours
        assert (staffed.effective_mttr_hours
                < lean.effective_mttr_hours)

    def test_more_spares_cut_stockouts(self):
        scarce = ClusterSimulator(
            "tsubame2", seed=2, initial_spares={"GPU": 0},
        ).run(1500.0)
        plentiful = ClusterSimulator(
            "tsubame2", seed=2, initial_spares={"GPU": 50},
        ).run(1500.0)
        assert plentiful.spare_stockouts < scarce.spare_stockouts

    def test_injected_log_is_analyzable(self):
        simulator = ClusterSimulator("tsubame3", seed=3)
        simulator.run(4000.0)
        log = simulator.injected_log()
        assert log.machine == "tsubame3"
        assert len(log) == simulator.injector.injected_count
        from repro.core.breakdown import category_breakdown

        result = category_breakdown(log)
        assert result.total == len(log)

    def test_injected_log_before_run_rejected(self):
        simulator = ClusterSimulator("tsubame3", seed=3)
        with pytest.raises(SimulationError):
            simulator.injected_log()

    def test_workload_report_includes_scheduler_stats(self):
        simulator = ClusterSimulator(
            "tsubame3",
            seed=4,
            workload=WorkloadConfig(mean_interarrival_hours=1.0),
            checkpoint_policy=CheckpointPolicy(interval_hours=6.0,
                                               cost_hours=0.25),
        )
        report = simulator.run(500.0)
        assert report.scheduler is not None
        assert report.scheduler.jobs_submitted > 100
        assert report.scheduler.jobs_completed > 0

    def test_report_without_workload_has_no_scheduler(self):
        report = ClusterSimulator("tsubame2", seed=0).run(200.0)
        assert report.scheduler is None

    def test_invalid_horizon_rejected(self):
        with pytest.raises(SimulationError):
            ClusterSimulator("tsubame2", seed=0).run(0.0)

    def test_invalid_intensity_rejected(self):
        with pytest.raises(SimulationError):
            ClusterSimulator("tsubame2", seed=0, intensity=0.0)

    def test_waiting_share_bounded(self):
        report = ClusterSimulator("tsubame2", seed=5).run(1000.0)
        assert 0.0 <= report.waiting_share_of_mttr <= 1.0

    def test_availability_high_at_historical_rates(self):
        report = ClusterSimulator("tsubame2", seed=6).run(2000.0)
        # 1408 nodes, ~130 failures x ~100 h downtime => > 99%.
        assert report.availability > 0.98


class TestHealthTests:
    def test_effectiveness_contains_multi_gpu_failures(self):
        from repro.core.multigpu import multi_gpu_involvement

        def multi_share(effectiveness):
            simulator = ClusterSimulator(
                "tsubame2", seed=8,
                health_test_effectiveness=effectiveness,
            )
            simulator.run(20000.0)
            log = simulator.injected_log()
            return multi_gpu_involvement(log, 3).multi_gpu_share

        untested = multi_share(0.0)
        tested = multi_share(0.9)
        # Tsubame-2's historical ~70% multi-GPU share collapses under
        # aggressive health testing — the RQ3 mechanism, simulated.
        assert untested > 0.5
        assert tested < 0.3

    def test_contained_counter(self):
        simulator = ClusterSimulator(
            "tsubame2", seed=8, health_test_effectiveness=1.0,
        )
        simulator.run(10000.0)
        assert simulator.injector.contained_multi_gpu > 0
        log = simulator.injected_log()
        assert all(r.num_gpus_involved <= 1 for r in log)

    def test_zero_effectiveness_contains_nothing(self):
        simulator = ClusterSimulator("tsubame2", seed=8)
        simulator.run(5000.0)
        assert simulator.injector.contained_multi_gpu == 0

    def test_invalid_effectiveness_rejected(self):
        with pytest.raises(SimulationError):
            ClusterSimulator("tsubame2",
                             health_test_effectiveness=1.5)
