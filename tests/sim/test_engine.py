"""Tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import SimulationEngine


class TestScheduling:
    def test_events_fire_in_time_order(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule_at(5.0, lambda: fired.append("b"))
        engine.schedule_at(1.0, lambda: fired.append("a"))
        engine.schedule_at(9.0, lambda: fired.append("c"))
        engine.run_until(10.0)
        assert fired == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule_at(3.0, lambda: fired.append("first"))
        engine.schedule_at(3.0, lambda: fired.append("second"))
        engine.run_until(5.0)
        assert fired == ["first", "second"]

    def test_schedule_in_relative(self):
        engine = SimulationEngine()
        times = []
        engine.schedule_in(2.0, lambda: times.append(engine.now))
        engine.run_until(5.0)
        assert times == [2.0]

    def test_events_can_schedule_events(self):
        engine = SimulationEngine()
        fired = []

        def first():
            fired.append(engine.now)
            engine.schedule_in(3.0, lambda: fired.append(engine.now))

        engine.schedule_at(1.0, first)
        engine.run_until(10.0)
        assert fired == [1.0, 4.0]

    def test_past_scheduling_rejected(self):
        engine = SimulationEngine()
        engine.schedule_at(5.0, lambda: None)
        engine.run_until(6.0)
        with pytest.raises(SimulationError):
            engine.schedule_at(3.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            SimulationEngine().schedule_in(-1.0, lambda: None)


class TestNonFiniteTimes:
    """Regression: a NaN schedule used to pass the ``time < now``
    guard (NaN compares False to everything), sit at the heap root,
    and silently starve every later event."""

    def test_nan_schedule_at_rejected(self):
        with pytest.raises(SimulationError):
            SimulationEngine().schedule_at(float("nan"), lambda: None)

    def test_inf_schedule_at_rejected(self):
        for sign in (float("inf"), float("-inf")):
            with pytest.raises(SimulationError):
                SimulationEngine().schedule_at(sign, lambda: None)

    def test_nan_schedule_in_rejected(self):
        with pytest.raises(SimulationError):
            SimulationEngine().schedule_in(float("nan"), lambda: None)

    def test_inf_schedule_in_rejected(self):
        with pytest.raises(SimulationError):
            SimulationEngine().schedule_in(float("inf"), lambda: None)

    def test_nan_horizon_rejected(self):
        with pytest.raises(SimulationError):
            SimulationEngine().run_until(float("nan"))

    def test_inf_horizon_rejected(self):
        with pytest.raises(SimulationError):
            SimulationEngine().run_until(float("inf"))

    def test_events_still_fire_after_rejected_nan(self):
        """The starvation scenario: a rejected NaN schedule must leave
        the engine fully functional."""
        engine = SimulationEngine()
        fired = []
        with pytest.raises(SimulationError):
            engine.schedule_at(float("nan"), lambda: fired.append("x"))
        engine.schedule_at(1.0, lambda: fired.append("a"))
        engine.run_until(2.0)
        assert fired == ["a"]
        assert engine.processed == 1
        assert engine.pending == 0


class TestRunning:
    def test_run_until_advances_clock_to_horizon(self):
        engine = SimulationEngine()
        engine.run_until(42.0)
        assert engine.now == 42.0

    def test_events_beyond_horizon_stay_pending(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule_at(5.0, lambda: fired.append(1))
        engine.schedule_at(15.0, lambda: fired.append(2))
        engine.run_until(10.0)
        assert fired == [1]
        assert engine.pending == 1

    def test_event_exactly_at_horizon_fires(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule_at(10.0, lambda: fired.append(1))
        engine.run_until(10.0)
        assert fired == [1]

    def test_backwards_horizon_rejected(self):
        engine = SimulationEngine()
        engine.run_until(10.0)
        with pytest.raises(SimulationError):
            engine.run_until(5.0)

    def test_processed_counter(self):
        engine = SimulationEngine()
        for t in (1.0, 2.0, 3.0):
            engine.schedule_at(t, lambda: None)
        engine.run_until(2.5)
        assert engine.processed == 2

    def test_run_all_drains_queue(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule_at(100.0, lambda: fired.append(1))
        engine.run_all()
        assert fired == [1]
        assert engine.pending == 0

    def test_run_all_runaway_guard(self):
        engine = SimulationEngine()

        def reschedule():
            engine.schedule_in(1.0, reschedule)

        engine.schedule_in(1.0, reschedule)
        with pytest.raises(SimulationError):
            engine.run_all(max_events=100)

    def test_run_all_guard_trips_before_excess_event_executes(self):
        """Regression: the guard used to trip only *after* the
        (max_events + 1)-th callback had already run."""
        engine = SimulationEngine()
        fired = []

        def reschedule():
            fired.append(engine.now)
            engine.schedule_in(1.0, reschedule)

        engine.schedule_in(1.0, reschedule)
        with pytest.raises(SimulationError):
            engine.run_all(max_events=5)
        assert len(fired) == 5

    def test_run_all_exactly_max_events_succeeds(self):
        engine = SimulationEngine()
        fired = []
        for t in range(1, 6):
            engine.schedule_at(float(t), lambda: fired.append(1))
        engine.run_all(max_events=5)
        assert len(fired) == 5


class TestHasSubscribers:
    def test_false_until_subscribed(self):
        engine = SimulationEngine()
        assert not engine.has_subscribers("failure")
        engine.subscribe("failure", lambda **kw: None)
        assert engine.has_subscribers("failure")
        assert not engine.has_subscribers("repair")

    def test_publish_counts_only_delivered_events(self):
        engine = SimulationEngine()
        engine.publish("failure", record=None)
        assert engine.published == 0
        seen = []
        engine.subscribe("failure", lambda record: seen.append(record))
        engine.publish("failure", record="r")
        assert engine.published == 1
        assert seen == ["r"]
