"""Tests for GPU card wear and rearrangement simulation."""

import pytest

from repro.errors import SimulationError
from repro.sim.wear import simulate_card_wear


class TestSimulateCardWear:
    def test_deterministic(self):
        a = simulate_card_wear("tsubame2", seed=1)
        b = simulate_card_wear("tsubame2", seed=1)
        assert a.card_failures == b.card_failures

    def test_card_count_matches_fleet_subset(self):
        report = simulate_card_wear("tsubame3", num_nodes=10, seed=0)
        assert len(report.card_failures) == 40  # 10 nodes x 4 GPUs

    def test_failure_volume_tracks_historical_rate(self):
        # tsubame2: 398 GPU failures / 13728 h / 1408 nodes; 64 nodes
        # over 3 years => ~ 64 * 398/13728/1408 * 26280 ~ 35 failures.
        report = simulate_card_wear("tsubame2", num_nodes=64, seed=2)
        assert 10 <= report.total_failures <= 80

    def test_rotation_counter(self):
        report = simulate_card_wear(
            "tsubame2", num_nodes=4, horizon_hours=1000.0,
            rotation_period_hours=100.0, seed=0,
        )
        assert report.rotations_performed == 10

    def test_no_rotation_by_default(self):
        report = simulate_card_wear("tsubame2", num_nodes=4, seed=0)
        assert report.rotation_period_hours is None
        assert report.rotations_performed == 0

    def test_rotation_flattens_wear(self):
        # Aggregate over several seeds: rotation must reduce the wear
        # concentration induced by hot slots.
        def mean_gini(rotation):
            values = [
                simulate_card_wear(
                    "tsubame2",
                    num_nodes=200,
                    horizon_hours=5.0 * 8760.0,
                    rotation_period_hours=rotation,
                    seed=seed,
                ).gini()
                for seed in range(3)
            ]
            return sum(values) / len(values)

        static = mean_gini(None)
        rotated = mean_gini(720.0)
        assert rotated < static

    def test_gini_bounds(self):
        report = simulate_card_wear("tsubame3", num_nodes=50, seed=3)
        assert 0.0 <= report.gini() <= 1.0

    def test_top_card_share(self):
        report = simulate_card_wear("tsubame2", num_nodes=100, seed=4)
        assert report.top_card_share(1.0) == pytest.approx(1.0)
        assert report.top_card_share(0.1) >= 0.1

    def test_invalid_params_rejected(self):
        with pytest.raises(SimulationError):
            simulate_card_wear("tsubame2", num_nodes=0)
        with pytest.raises(SimulationError):
            simulate_card_wear("tsubame2", horizon_hours=0.0)
        with pytest.raises(SimulationError):
            simulate_card_wear("tsubame2", rotation_period_hours=0.0)
        report = simulate_card_wear("tsubame2", num_nodes=4, seed=0)
        with pytest.raises(SimulationError):
            report.top_card_share(0.0)
