"""Tests for the repair service (technicians + spares)."""

import pytest

from repro.errors import SimulationError, ValidationError
from repro.machines.specs import TSUBAME3
from repro.sim.cluster import Cluster, NodeState
from repro.sim.engine import SimulationEngine
from repro.sim.repair import RepairPolicy, RepairService, SparePool


def _service(
    technicians=2,
    lead_time=100.0,
    hardware=("GPU",),
    spares=None,
):
    engine = SimulationEngine()
    cluster = Cluster(TSUBAME3)
    policy = RepairPolicy(
        num_technicians=technicians,
        spare_lead_time_hours=lead_time,
        hardware_categories=frozenset(hardware),
    )
    pool = SparePool(spares if spares is not None else {"GPU": 1})
    return engine, cluster, RepairService(engine, cluster, policy, pool), pool


class TestSparePool:
    def test_take_and_restock(self):
        pool = SparePool({"GPU": 1})
        assert pool.try_take("GPU")
        assert pool.level("GPU") == 0
        assert not pool.try_take("GPU")
        assert pool.stockouts == 1
        pool.restock("GPU", 2)
        assert pool.level("GPU") == 2
        assert pool.consumed == 1

    def test_untracked_category_is_stockout(self):
        pool = SparePool({})
        assert not pool.try_take("SSD")
        assert pool.stockouts == 1

    def test_negative_initial_rejected(self):
        with pytest.raises(ValidationError):
            SparePool({"GPU": -1})

    def test_restock_count_validated(self):
        with pytest.raises(ValidationError):
            SparePool({}).restock("GPU", 0)


class TestRepairPolicy:
    def test_invalid_technicians_rejected(self):
        with pytest.raises(ValidationError):
            RepairPolicy(num_technicians=0)

    def test_invalid_lead_time_rejected(self):
        with pytest.raises(ValidationError):
            RepairPolicy(spare_lead_time_hours=-1.0)


class TestRepairFlow:
    def test_software_repair_needs_no_spare(self):
        engine, cluster, service, pool = _service()
        cluster.fail(0, "Software", time=0.0)
        service.submit(0, "Software", duration_hours=10.0)
        engine.run_until(20.0)
        assert service.completed == 1
        assert pool.consumed == 0
        assert cluster.node(0).state is NodeState.HEALTHY

    def test_hardware_repair_consumes_spare(self):
        engine, cluster, service, pool = _service()
        cluster.fail(0, "GPU", time=0.0)
        service.submit(0, "GPU", duration_hours=10.0)
        engine.run_until(20.0)
        assert pool.consumed == 1
        assert service.completed == 1

    def test_stockout_delays_repair_by_lead_time(self):
        engine, cluster, service, pool = _service(spares={"GPU": 0},
                                                  lead_time=50.0)
        cluster.fail(0, "GPU", time=0.0)
        service.submit(0, "GPU", duration_hours=10.0)
        engine.run_until(49.0)
        assert service.completed == 0
        assert service.waiting_for_spares == 1
        engine.run_until(70.0)
        assert service.completed == 1
        interval = cluster.history[0]
        assert interval.waiting_hours == pytest.approx(50.0)

    def test_technician_limit_queues_work(self):
        engine, cluster, service, _ = _service(
            technicians=1, spares={"GPU": 10}
        )
        for node in (0, 1):
            cluster.fail(node, "GPU", time=0.0)
            service.submit(node, "GPU", duration_hours=10.0)
        engine.run_until(5.0)
        assert service.queue_length == 1
        engine.run_until(25.0)
        assert service.completed == 2
        waits = sorted(i.waiting_hours for i in cluster.history)
        assert waits == pytest.approx([0.0, 10.0])

    def test_consumed_spare_replenishes_after_lead_time(self):
        engine, cluster, service, pool = _service(
            spares={"GPU": 1}, lead_time=30.0
        )
        cluster.fail(0, "GPU", time=0.0)
        service.submit(0, "GPU", duration_hours=5.0)
        engine.run_until(29.0)
        assert pool.level("GPU") == 0
        engine.run_until(31.0)
        assert pool.level("GPU") == 1

    def test_prestage_spare_avoids_stockout(self):
        engine, cluster, service, pool = _service(spares={"GPU": 0})
        service.prestage_spare("GPU")
        cluster.fail(0, "GPU", time=0.0)
        service.submit(0, "GPU", duration_hours=5.0)
        engine.run_until(10.0)
        assert service.completed == 1
        assert pool.stockouts == 0

    def test_completion_listener_fires(self):
        engine, cluster, service, _ = _service()
        repaired = []
        service.add_completion_listener(repaired.append)
        cluster.fail(2, "Software", time=0.0)
        service.submit(2, "Software", duration_hours=1.0)
        engine.run_until(5.0)
        assert repaired == [2]

    def test_non_positive_duration_rejected(self):
        _, cluster, service, _ = _service()
        cluster.fail(0, "GPU", time=0.0)
        with pytest.raises(SimulationError):
            service.submit(0, "GPU", duration_hours=0.0)
