"""Tests for the workload model and the scheduler."""

import pytest

from repro.errors import ValidationError
from repro.machines.specs import TSUBAME3
from repro.sim.checkpoint import CheckpointPolicy
from repro.sim.cluster import Cluster
from repro.sim.engine import SimulationEngine
from repro.sim.jobs import Job, JobState, WorkloadConfig, WorkloadGenerator
from repro.sim.scheduler import Scheduler


class TestJob:
    def test_remaining_hours(self):
        job = Job(job_id=0, num_nodes=2, duration_hours=10.0,
                  submit_time=0.0)
        assert job.remaining_hours == 10.0
        job.work_done_hours = 4.0
        assert job.remaining_hours == 6.0

    def test_node_hours(self):
        job = Job(job_id=0, num_nodes=4, duration_hours=10.0,
                  submit_time=0.0)
        assert job.node_hours == 40.0

    def test_validation(self):
        with pytest.raises(ValidationError):
            Job(job_id=0, num_nodes=0, duration_hours=1.0, submit_time=0.0)
        with pytest.raises(ValidationError):
            Job(job_id=0, num_nodes=1, duration_hours=0.0, submit_time=0.0)
        with pytest.raises(ValidationError):
            Job(job_id=0, num_nodes=1, duration_hours=1.0, submit_time=-1.0)


class TestWorkloadGenerator:
    def test_jobs_before_horizon(self):
        generator = WorkloadGenerator(WorkloadConfig(), seed=0)
        jobs = generator.jobs_until(200.0)
        assert jobs
        assert all(job.submit_time < 200.0 for job in jobs)

    def test_job_ids_unique_across_calls(self):
        generator = WorkloadGenerator(WorkloadConfig(), seed=0)
        first = generator.jobs_until(50.0)
        second = generator.jobs_until(50.0)
        ids = [job.job_id for job in first + second]
        assert len(ids) == len(set(ids))

    def test_durations_clipped(self):
        config = WorkloadConfig(max_duration_hours=24.0)
        jobs = WorkloadGenerator(config, seed=1).jobs_until(500.0)
        assert all(job.duration_hours <= 24.0 for job in jobs)

    def test_sizes_from_choices(self):
        config = WorkloadConfig(size_choices=(1, 2), size_weights=(1, 1))
        jobs = WorkloadGenerator(config, seed=2).jobs_until(200.0)
        assert set(job.num_nodes for job in jobs) <= {1, 2}

    def test_seeded_determinism(self):
        a = WorkloadGenerator(WorkloadConfig(), seed=7).jobs_until(100.0)
        b = WorkloadGenerator(WorkloadConfig(), seed=7).jobs_until(100.0)
        assert [(j.submit_time, j.num_nodes) for j in a] == [
            (j.submit_time, j.num_nodes) for j in b
        ]

    def test_invalid_config_rejected(self):
        with pytest.raises(ValidationError):
            WorkloadConfig(mean_interarrival_hours=0.0)
        with pytest.raises(ValidationError):
            WorkloadConfig(size_choices=(1,), size_weights=(1, 2))
        with pytest.raises(ValidationError):
            WorkloadConfig(size_choices=(0,), size_weights=(1.0,))

    def test_invalid_horizon_rejected(self):
        with pytest.raises(ValidationError):
            WorkloadGenerator(WorkloadConfig(), seed=0).jobs_until(0.0)


def _scheduler(policy=None):
    engine = SimulationEngine()
    cluster = Cluster(TSUBAME3)
    scheduler = Scheduler(engine, cluster, checkpoint_policy=policy)
    return engine, cluster, scheduler


class TestScheduler:
    def test_job_completes(self):
        engine, _, scheduler = _scheduler()
        job = Job(job_id=0, num_nodes=2, duration_hours=10.0,
                  submit_time=0.0)
        scheduler.submit(job)
        engine.run_until(20.0)
        assert job.state is JobState.COMPLETED
        assert job.end_time == pytest.approx(10.0)
        assert scheduler.stats.jobs_completed == 1
        assert scheduler.stats.useful_node_hours == pytest.approx(20.0)

    def test_fcfs_when_capacity_allows(self):
        engine, _, scheduler = _scheduler()
        jobs = [
            Job(job_id=i, num_nodes=1, duration_hours=5.0, submit_time=0.0)
            for i in range(3)
        ]
        for job in jobs:
            scheduler.submit(job)
        engine.run_until(10.0)
        assert all(j.state is JobState.COMPLETED for j in jobs)
        assert all(j.waited_hours == 0.0 for j in jobs)

    def test_queueing_when_cluster_full(self):
        engine, cluster, scheduler = _scheduler()
        big = Job(job_id=0, num_nodes=cluster.num_nodes,
                  duration_hours=10.0, submit_time=0.0)
        small = Job(job_id=1, num_nodes=1, duration_hours=1.0,
                    submit_time=0.0)
        scheduler.submit(big)
        scheduler.submit(small)
        engine.run_until(5.0)
        assert small.state is JobState.PENDING
        engine.run_until(20.0)
        assert small.state is JobState.COMPLETED
        assert small.waited_hours == pytest.approx(10.0)

    def test_backfill_lets_small_jobs_jump(self):
        engine, cluster, scheduler = _scheduler()
        # Fill all but one node, then queue a 2-node job and a 1-node
        # job; the 1-node job backfills.
        filler = Job(job_id=0, num_nodes=cluster.num_nodes - 1,
                     duration_hours=10.0, submit_time=0.0)
        wide = Job(job_id=1, num_nodes=2, duration_hours=1.0,
                   submit_time=0.0)
        narrow = Job(job_id=2, num_nodes=1, duration_hours=1.0,
                     submit_time=0.0)
        for job in (filler, wide, narrow):
            scheduler.submit(job)
        engine.run_until(5.0)
        assert narrow.state is JobState.COMPLETED
        assert wide.state is JobState.PENDING

    def test_failure_without_checkpointing_restarts_from_scratch(self):
        engine, cluster, scheduler = _scheduler()
        job = Job(job_id=0, num_nodes=1, duration_hours=10.0,
                  submit_time=0.0)
        scheduler.submit(job)

        def kill():
            node = job.assigned_nodes[0]
            cluster.fail(node, "GPU", engine.now)
            scheduler.handle_node_failure(node)

        engine.schedule_at(6.0, kill)
        engine.run_until(30.0)
        assert job.state is JobState.COMPLETED
        assert job.restarts == 1
        # 6 h were lost; completion at 6 + 10.
        assert job.end_time == pytest.approx(16.0)
        assert scheduler.stats.lost_node_hours == pytest.approx(6.0)

    def test_failure_with_checkpointing_loses_only_tail(self):
        policy = CheckpointPolicy(interval_hours=2.0, cost_hours=0.0)
        engine, cluster, scheduler = _scheduler(policy)
        job = Job(job_id=0, num_nodes=1, duration_hours=10.0,
                  submit_time=0.0)
        scheduler.submit(job)

        def kill():
            node = job.assigned_nodes[0]
            cluster.fail(node, "GPU", engine.now)
            scheduler.handle_node_failure(node)

        engine.schedule_at(5.0, kill)
        engine.run_until(30.0)
        assert job.state is JobState.COMPLETED
        # 4 h committed at the kill; only 1 h lost.
        assert scheduler.stats.lost_node_hours == pytest.approx(1.0)
        assert job.end_time == pytest.approx(11.0)

    def test_failure_on_idle_node_is_harmless(self):
        engine, cluster, scheduler = _scheduler()
        cluster.fail(5, "GPU", time=0.0)
        scheduler.handle_node_failure(5)
        assert scheduler.stats.jobs_killed_by_failures == 0

    def test_stats_goodput(self):
        engine, _, scheduler = _scheduler()
        job = Job(job_id=0, num_nodes=1, duration_hours=4.0,
                  submit_time=0.0)
        scheduler.submit(job)
        engine.run_until(10.0)
        assert scheduler.stats.goodput_fraction == 1.0


class TestMaintenanceWindows:
    def test_no_starts_during_window(self):
        engine, _, scheduler = _scheduler()
        scheduler.schedule_maintenance(period_hours=10.0,
                                       duration_hours=2.0)
        job = Job(job_id=0, num_nodes=1, duration_hours=1.0,
                  submit_time=10.5)  # lands inside the first window
        engine.schedule_at(10.5, lambda: scheduler.submit(job))
        engine.run_until(11.5)
        assert job.state is JobState.PENDING
        assert scheduler.in_maintenance
        engine.run_until(14.0)  # window closes at t=12
        assert job.state in (JobState.RUNNING, JobState.COMPLETED)

    def test_running_jobs_drain_through_window(self):
        engine, _, scheduler = _scheduler()
        scheduler.schedule_maintenance(period_hours=10.0,
                                       duration_hours=2.0)
        job = Job(job_id=0, num_nodes=1, duration_hours=11.0,
                  submit_time=0.0)
        scheduler.submit(job)
        engine.run_until(11.5)  # completes mid-window
        assert job.state is JobState.COMPLETED

    def test_windows_recur(self):
        engine, _, scheduler = _scheduler()
        scheduler.schedule_maintenance(period_hours=10.0,
                                       duration_hours=1.0)
        engine.run_until(35.0)
        assert scheduler.maintenance_windows_held == 3

    def test_invalid_calendar_rejected(self):
        from repro.errors import SimulationError

        _, _, scheduler = _scheduler()
        with pytest.raises(SimulationError):
            scheduler.schedule_maintenance(0.0, 1.0)
        with pytest.raises(SimulationError):
            scheduler.schedule_maintenance(5.0, 5.0)

    def test_maintenance_raises_waits_but_not_goodput(self):
        from repro.sim import (
            ClusterSimulator,
            WorkloadConfig,
        )

        def run(with_maintenance):
            simulator = ClusterSimulator(
                "tsubame3",
                seed=4,
                workload=WorkloadConfig(mean_interarrival_hours=0.5),
            )
            if with_maintenance:
                simulator.scheduler.schedule_maintenance(
                    period_hours=168.0, duration_hours=12.0
                )
            return simulator.run(1000.0)

        plain = run(False)
        maintained = run(True)
        assert (maintained.scheduler.mean_wait_hours
                >= plain.scheduler.mean_wait_hours)
        # Work is deferred, not destroyed.
        assert maintained.scheduler.goodput_fraction > 0.95
