"""Tests for the cluster state machine."""

import pytest

from repro.errors import SimulationError
from repro.machines.specs import TSUBAME3
from repro.sim.cluster import Cluster, NodeState


@pytest.fixture()
def cluster():
    return Cluster(TSUBAME3)


class TestFailRepairCycle:
    def test_initial_state_all_healthy(self, cluster):
        assert cluster.num_available() == TSUBAME3.num_nodes
        assert cluster.node(0).state is NodeState.HEALTHY

    def test_fail_marks_node(self, cluster):
        cluster.fail(3, "GPU", time=10.0, gpus_involved=(0, 1))
        node = cluster.node(3)
        assert node.state is NodeState.FAILED
        assert node.failed_gpus == {0, 1}
        assert cluster.num_available() == TSUBAME3.num_nodes - 1

    def test_full_cycle_records_interval(self, cluster):
        cluster.fail(3, "GPU", time=10.0)
        cluster.start_repair(3, time=15.0)
        interval = cluster.complete_repair(3, time=40.0)
        assert interval.waiting_hours == pytest.approx(5.0)
        assert interval.repair_hours == pytest.approx(25.0)
        assert interval.total_hours == pytest.approx(30.0)
        assert interval.category == "GPU"
        assert cluster.node(3).state is NodeState.HEALTHY
        assert cluster.node(3).failed_gpus == set()

    def test_repeated_failure_absorbed_into_outage(self, cluster):
        cluster.fail(3, "GPU", time=10.0)
        cluster.fail(3, "Memory", time=12.0)  # during the outage
        assert cluster.node(3).current_category == "GPU"
        assert cluster.node(3).failed_at == 10.0

    def test_absorbed_failure_still_accumulates_gpus(self, cluster):
        cluster.fail(3, "GPU", time=10.0, gpus_involved=(0,))
        cluster.fail(3, "GPU", time=11.0, gpus_involved=(2,))
        assert cluster.node(3).failed_gpus == {0, 2}

    def test_start_repair_requires_failed(self, cluster):
        with pytest.raises(SimulationError):
            cluster.start_repair(0, time=1.0)

    def test_complete_repair_requires_repairing(self, cluster):
        cluster.fail(0, "GPU", time=1.0)
        with pytest.raises(SimulationError):
            cluster.complete_repair(0, time=2.0)

    def test_invalid_gpu_slot_rejected(self, cluster):
        with pytest.raises(SimulationError):
            cluster.fail(0, "GPU", time=1.0, gpus_involved=(9,))

    def test_out_of_range_node_rejected(self, cluster):
        with pytest.raises(SimulationError):
            cluster.node(100000)


class TestAggregates:
    def test_downtime_and_availability(self, cluster):
        cluster.fail(1, "GPU", time=0.0)
        cluster.start_repair(1, time=0.0)
        cluster.complete_repair(1, time=54.0)
        assert cluster.total_downtime_hours() == pytest.approx(54.0)
        expected = 1.0 - 54.0 / (TSUBAME3.num_nodes * 1000.0)
        assert cluster.availability(1000.0) == pytest.approx(expected)

    def test_effective_mttr(self, cluster):
        for node, (fail, start, done) in enumerate(
            [(0.0, 1.0, 11.0), (5.0, 5.0, 45.0)]
        ):
            cluster.fail(node, "GPU", time=fail)
            cluster.start_repair(node, time=start)
            cluster.complete_repair(node, time=done)
        assert cluster.effective_mttr_hours() == pytest.approx(
            (11.0 + 40.0) / 2
        )
        assert cluster.mean_waiting_hours() == pytest.approx(0.5)

    def test_metrics_require_history(self, cluster):
        with pytest.raises(SimulationError):
            cluster.effective_mttr_hours()
        with pytest.raises(SimulationError):
            cluster.mean_waiting_hours()

    def test_availability_requires_positive_horizon(self, cluster):
        with pytest.raises(SimulationError):
            cluster.availability(0.0)

    def test_available_nodes_list(self, cluster):
        cluster.fail(7, "GPU", time=1.0)
        available = cluster.available_nodes()
        assert 7 not in available
        assert len(available) == TSUBAME3.num_nodes - 1


class TestAvailabilityIndex:
    def test_available_at_covers_all_healthy_nodes(self, cluster):
        cluster.fail(7, "GPU", time=1.0)
        cluster.fail(0, "Memory", time=2.0)
        ids = {
            cluster.available_at(i)
            for i in range(cluster.num_available())
        }
        assert ids == set(cluster.available_nodes())
        assert 7 not in ids and 0 not in ids

    def test_available_at_out_of_range(self, cluster):
        with pytest.raises(SimulationError):
            cluster.available_at(cluster.num_available())
        with pytest.raises(SimulationError):
            cluster.available_at(-1)

    def test_index_survives_fail_repair_cycles(self, cluster):
        for node_id in (3, 5, 9):
            cluster.fail(node_id, "GPU", time=1.0)
        cluster.start_repair(5, time=2.0)
        cluster.complete_repair(5, time=3.0)
        assert cluster.num_available() == TSUBAME3.num_nodes - 2
        ids = {
            cluster.available_at(i)
            for i in range(cluster.num_available())
        }
        assert 5 in ids
        assert ids == set(cluster.available_nodes())

    def test_absorbed_refailure_does_not_corrupt_index(self, cluster):
        cluster.fail(4, "GPU", time=1.0)
        cluster.fail(4, "Memory", time=2.0)  # absorbed
        assert cluster.num_available() == TSUBAME3.num_nodes - 1
        cluster.start_repair(4, time=3.0)
        cluster.complete_repair(4, time=4.0)
        assert cluster.num_available() == TSUBAME3.num_nodes
