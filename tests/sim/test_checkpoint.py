"""Tests for the checkpoint/restart model."""

import math

import pytest

from repro.errors import ValidationError
from repro.sim.checkpoint import (
    CheckpointPolicy,
    effective_goodput_fraction,
    expected_waste_fraction,
    young_daly_interval,
    young_daly_policy,
)


class TestYoungDaly:
    def test_formula(self):
        assert young_daly_interval(0.5, 100.0) == pytest.approx(
            math.sqrt(2 * 0.5 * 100.0)
        )

    def test_scales_with_sqrt_mtbf(self):
        short = young_daly_interval(0.5, 15.0)
        long = young_daly_interval(0.5, 60.0)
        assert long / short == pytest.approx(2.0)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValidationError):
            young_daly_interval(0.0, 100.0)
        with pytest.raises(ValidationError):
            young_daly_interval(0.5, 0.0)


class TestCheckpointPolicy:
    def test_committed_work(self):
        policy = CheckpointPolicy(interval_hours=4.0, cost_hours=0.5)
        assert policy.committed_per_interval_hours == pytest.approx(3.5)

    def test_cost_must_be_below_interval(self):
        with pytest.raises(ValidationError):
            CheckpointPolicy(interval_hours=1.0, cost_hours=1.0)

    def test_invalid_values_rejected(self):
        with pytest.raises(ValidationError):
            CheckpointPolicy(interval_hours=0.0, cost_hours=0.0)
        with pytest.raises(ValidationError):
            CheckpointPolicy(interval_hours=1.0, cost_hours=-0.1)
        with pytest.raises(ValidationError):
            CheckpointPolicy(interval_hours=1.0, cost_hours=0.1,
                             restart_cost_hours=-1.0)


class TestWasteModel:
    def test_waste_components(self):
        policy = CheckpointPolicy(interval_hours=10.0, cost_hours=1.0,
                                  restart_cost_hours=2.0)
        waste = expected_waste_fraction(policy, mtbf_hours=100.0)
        assert waste == pytest.approx(1.0 / 10.0 + 5.0 / 100.0
                                      + 2.0 / 100.0)

    def test_optimal_interval_minimises_waste(self):
        cost = 0.5
        mtbf = 60.0
        optimum = young_daly_interval(cost, mtbf)
        best = expected_waste_fraction(
            CheckpointPolicy(optimum, cost, 0.0), mtbf
        )
        for interval in (optimum / 2, optimum * 2):
            other = expected_waste_fraction(
                CheckpointPolicy(interval, cost, 0.0), mtbf
            )
            assert other >= best

    def test_higher_mtbf_means_higher_goodput(self):
        # The cross-generation story: Tsubame-3's 72 h MTBF beats
        # Tsubame-2's 15 h for the same checkpointing application.
        cost = 0.25
        t2 = effective_goodput_fraction(
            CheckpointPolicy(young_daly_interval(cost, 15.3), cost), 15.3
        )
        t3 = effective_goodput_fraction(
            CheckpointPolicy(young_daly_interval(cost, 72.4), cost), 72.4
        )
        assert t3 > t2
        assert t2 > 0.6  # sanity: still mostly useful work

    def test_waste_clamped_to_unit_interval(self):
        policy = CheckpointPolicy(interval_hours=10.0, cost_hours=5.0)
        assert expected_waste_fraction(policy, mtbf_hours=0.5) == 1.0

    def test_invalid_mtbf_rejected(self):
        policy = CheckpointPolicy(interval_hours=10.0, cost_hours=1.0)
        with pytest.raises(ValidationError):
            expected_waste_fraction(policy, mtbf_hours=0.0)


class TestEdgeRegimes:
    """Regression tests: degenerate inputs raise instead of
    silently producing NaN or negative intervals."""

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"),
                                     -float("inf")])
    def test_non_finite_interval_inputs_rejected(self, bad):
        with pytest.raises(ValidationError):
            young_daly_interval(bad, 100.0)
        with pytest.raises(ValidationError):
            young_daly_interval(0.5, bad)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_non_finite_policy_fields_rejected(self, bad):
        with pytest.raises(ValidationError):
            CheckpointPolicy(interval_hours=bad, cost_hours=0.1)
        with pytest.raises(ValidationError):
            CheckpointPolicy(interval_hours=1.0, cost_hours=bad)
        with pytest.raises(ValidationError):
            CheckpointPolicy(interval_hours=1.0, cost_hours=0.1,
                             restart_cost_hours=bad)

    def test_near_zero_cost_rejected_not_nan(self):
        with pytest.raises(ValidationError):
            young_daly_interval(0.0, 24.0)
        with pytest.raises(ValidationError):
            young_daly_interval(-1e-12, 24.0)

    def test_mtbf_shorter_than_cost_rejected(self):
        # sqrt(2 * C * M) < C when M < C/2: the "optimum" would
        # checkpoint slower than it fails.  The whole regime M < C
        # cannot make progress and must be refused loudly.
        with pytest.raises(ValidationError) as excinfo:
            young_daly_interval(2.0, 1.0)
        assert "cannot make progress" in str(excinfo.value)

    def test_boundary_mtbf_equal_to_cost_is_valid(self):
        interval = young_daly_interval(1.0, 1.0)
        assert interval == pytest.approx(math.sqrt(2.0))
        assert interval > 1.0  # a constructible policy


class TestYoungDalyPolicy:
    def test_returns_policy_at_the_optimum(self):
        policy = young_daly_policy(0.25, 24.0,
                                   restart_cost_hours=0.75)
        assert policy.interval_hours == pytest.approx(
            young_daly_interval(0.25, 24.0)
        )
        assert policy.cost_hours == 0.25
        assert policy.restart_cost_hours == 0.75

    def test_always_constructible_when_interval_is(self):
        # M >= C implies sqrt(2CM) >= sqrt(2) C > C, so the returned
        # policy never trips the interval > cost invariant.
        for cost, mtbf in [(1.0, 1.0), (0.1, 24.0), (5.0, 5.0)]:
            policy = young_daly_policy(cost, mtbf)
            assert policy.interval_hours > policy.cost_hours

    def test_propagates_validation(self):
        with pytest.raises(ValidationError):
            young_daly_policy(2.0, 1.0)
