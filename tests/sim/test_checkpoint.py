"""Tests for the checkpoint/restart model."""

import math

import pytest

from repro.errors import ValidationError
from repro.sim.checkpoint import (
    CheckpointPolicy,
    effective_goodput_fraction,
    expected_waste_fraction,
    young_daly_interval,
)


class TestYoungDaly:
    def test_formula(self):
        assert young_daly_interval(0.5, 100.0) == pytest.approx(
            math.sqrt(2 * 0.5 * 100.0)
        )

    def test_scales_with_sqrt_mtbf(self):
        short = young_daly_interval(0.5, 15.0)
        long = young_daly_interval(0.5, 60.0)
        assert long / short == pytest.approx(2.0)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValidationError):
            young_daly_interval(0.0, 100.0)
        with pytest.raises(ValidationError):
            young_daly_interval(0.5, 0.0)


class TestCheckpointPolicy:
    def test_committed_work(self):
        policy = CheckpointPolicy(interval_hours=4.0, cost_hours=0.5)
        assert policy.committed_per_interval_hours == pytest.approx(3.5)

    def test_cost_must_be_below_interval(self):
        with pytest.raises(ValidationError):
            CheckpointPolicy(interval_hours=1.0, cost_hours=1.0)

    def test_invalid_values_rejected(self):
        with pytest.raises(ValidationError):
            CheckpointPolicy(interval_hours=0.0, cost_hours=0.0)
        with pytest.raises(ValidationError):
            CheckpointPolicy(interval_hours=1.0, cost_hours=-0.1)
        with pytest.raises(ValidationError):
            CheckpointPolicy(interval_hours=1.0, cost_hours=0.1,
                             restart_cost_hours=-1.0)


class TestWasteModel:
    def test_waste_components(self):
        policy = CheckpointPolicy(interval_hours=10.0, cost_hours=1.0,
                                  restart_cost_hours=2.0)
        waste = expected_waste_fraction(policy, mtbf_hours=100.0)
        assert waste == pytest.approx(1.0 / 10.0 + 5.0 / 100.0
                                      + 2.0 / 100.0)

    def test_optimal_interval_minimises_waste(self):
        cost = 0.5
        mtbf = 60.0
        optimum = young_daly_interval(cost, mtbf)
        best = expected_waste_fraction(
            CheckpointPolicy(optimum, cost, 0.0), mtbf
        )
        for interval in (optimum / 2, optimum * 2):
            other = expected_waste_fraction(
                CheckpointPolicy(interval, cost, 0.0), mtbf
            )
            assert other >= best

    def test_higher_mtbf_means_higher_goodput(self):
        # The cross-generation story: Tsubame-3's 72 h MTBF beats
        # Tsubame-2's 15 h for the same checkpointing application.
        cost = 0.25
        t2 = effective_goodput_fraction(
            CheckpointPolicy(young_daly_interval(cost, 15.3), cost), 15.3
        )
        t3 = effective_goodput_fraction(
            CheckpointPolicy(young_daly_interval(cost, 72.4), cost), 72.4
        )
        assert t3 > t2
        assert t2 > 0.6  # sanity: still mostly useful work

    def test_waste_clamped_to_unit_interval(self):
        policy = CheckpointPolicy(interval_hours=10.0, cost_hours=5.0)
        assert expected_waste_fraction(policy, mtbf_hours=0.5) == 1.0

    def test_invalid_mtbf_rejected(self):
        policy = CheckpointPolicy(interval_hours=10.0, cost_hours=1.0)
        with pytest.raises(ValidationError):
            expected_waste_fraction(policy, mtbf_hours=0.0)
