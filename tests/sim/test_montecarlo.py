"""Tests for the Monte-Carlo replication engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError, ValidationError
from repro.sim.montecarlo import (
    EnsembleReport,
    _ReplicationTask,
    _run_replication,
    run_replications,
    spawn_seeds,
)
from repro.sim.simulator import ClusterSimulator


class TestSpawnSeeds:
    def test_deterministic(self):
        assert spawn_seeds(7, 10) == spawn_seeds(7, 10)

    def test_prefix_stable(self):
        assert spawn_seeds(7, 100)[:10] == spawn_seeds(7, 10)

    def test_distinct_within_ensemble(self):
        seeds = spawn_seeds(0, 1000)
        assert len(set(seeds)) == 1000

    def test_master_seed_matters(self):
        assert spawn_seeds(1, 5) != spawn_seeds(2, 5)

    def test_rejects_non_positive(self):
        with pytest.raises(ValidationError):
            spawn_seeds(0, 0)


class TestEnsemble:
    def test_basic_report(self):
        report = run_replications(
            "tsubame2", replications=8, horizon_hours=500.0, seed=3
        )
        assert isinstance(report, EnsembleReport)
        assert report.machine == "tsubame2"
        assert report.replications == 8
        assert report.failed_replications == 0
        assert set(report.metrics) == {
            "failures_injected",
            "repairs_completed",
            "effective_mttr_hours",
            "mean_waiting_hours",
            "availability",
            "spare_stockouts",
            "spares_consumed",
        }
        availability = report.availability
        assert 0.0 < availability.mean <= 1.0
        assert availability.ci_lower <= availability.mean
        assert availability.mean <= availability.ci_upper
        assert availability.stderr <= availability.std or (
            availability.std == 0.0
        )

    def test_matches_independent_simulator_runs(self):
        # The ensemble mean must be exactly the mean of R independent
        # ClusterSimulator runs with the spawned seeds — the engine
        # adds statistics, never different dynamics.
        seeds = spawn_seeds(11, 6)
        reports = [
            ClusterSimulator(
                "tsubame2", seed=s, keep_injected_log=False
            ).run(400.0)
            for s in seeds
        ]
        ensemble = run_replications(
            "tsubame2", replications=6, horizon_hours=400.0, seed=11
        )
        expected = sum(r.availability for r in reports) / len(reports)
        assert ensemble.availability.mean == pytest.approx(
            expected, rel=1e-12
        )
        expected_failures = sum(
            r.failures_injected for r in reports
        ) / len(reports)
        assert ensemble.metrics["failures_injected"].mean == (
            pytest.approx(expected_failures, rel=1e-12)
        )

    def test_serial_parallel_parity(self):
        serial = run_replications(
            "tsubame2", replications=6, horizon_hours=300.0, seed=5
        )
        parallel = run_replications(
            "tsubame2",
            replications=6,
            horizon_hours=300.0,
            seed=5,
            max_workers=2,
        )
        assert serial == parallel

    @settings(max_examples=5, deadline=None)
    @given(
        replications=st.integers(min_value=2, max_value=5),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_parity_property(self, replications, seed):
        serial = run_replications(
            "tsubame3",
            replications=replications,
            horizon_hours=200.0,
            seed=seed,
        )
        parallel = run_replications(
            "tsubame3",
            replications=replications,
            horizon_hours=200.0,
            seed=seed,
            max_workers=3,
        )
        assert serial == parallel

    def test_summary_text(self):
        report = run_replications(
            "tsubame3", replications=3, horizon_hours=300.0, seed=1
        )
        text = report.summary()
        assert "3 replications" in text
        assert "availability" in text

    def test_policy_overrides_change_outcomes(self):
        generous = run_replications(
            "tsubame2",
            replications=5,
            horizon_hours=800.0,
            seed=9,
            intensity=5.0,
            num_technicians=16,
            spare_lead_time_hours=1.0,
        )
        starved = run_replications(
            "tsubame2",
            replications=5,
            horizon_hours=800.0,
            seed=9,
            intensity=5.0,
            num_technicians=1,
            spare_lead_time_hours=500.0,
        )
        assert (
            generous.metrics["mean_waiting_hours"].mean
            < starved.metrics["mean_waiting_hours"].mean
        )

    def test_validation(self):
        with pytest.raises(ValidationError):
            run_replications("tsubame2", 0, 100.0)
        with pytest.raises(ValidationError):
            run_replications("tsubame2", 2, 100.0, ci=1.0)
        with pytest.raises(ValidationError):
            run_replications(
                "tsubame2", 2, 100.0, spare_lead_time_hours=24.0
            )

    def test_all_failed_raises(self):
        with pytest.raises(SimulationError, match="replications failed"):
            run_replications("tsubame2", 2, horizon_hours=-1.0)

    def test_failed_replications_attributed(self):
        # A poisoned task (bad machine) would fail construction; use a
        # direct worker call to check attribution plumbing instead.
        task = _ReplicationTask(
            machine="tsubame2",
            seed=1,
            horizon_hours=100.0,
            intensity=1.0,
            health_test_effectiveness=0.0,
            num_technicians=None,
            spare_lead_time_hours=None,
            presample=True,
        )
        report = _run_replication(task)
        assert report.horizon_hours == 100.0
        assert report.machine == "tsubame2"
