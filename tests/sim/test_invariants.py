"""Simulation invariants: whole-run consistency checks across seeds.

These are failure-injection integration tests: run the full simulator
and assert structural invariants that must hold regardless of the
random stream.
"""

import pytest

from repro.core.breakdown import category_breakdown
from repro.sim import ClusterSimulator, NodeState, RepairPolicy


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
@pytest.mark.parametrize("machine", ["tsubame2", "tsubame3"])
def test_run_invariants(machine, seed):
    simulator = ClusterSimulator(
        machine,
        seed=seed,
        repair_policy=RepairPolicy(num_technicians=3,
                                   spare_lead_time_hours=72.0),
        intensity=3.0,  # stress the repair pipeline
    )
    horizon = 1200.0
    report = simulator.run(horizon)

    # Every completed outage is internally consistent.
    for interval in simulator.cluster.history:
        assert 0 <= interval.node_id < simulator.cluster.num_nodes
        assert interval.waiting_hours >= 0.0
        assert interval.repair_hours > 0.0
        assert interval.failed_at >= 0.0
        assert interval.repaired_at <= horizon + 1e-9

    # Conservation: injected = repaired + still open (failed or
    # repairing) + hits absorbed into ongoing outages.
    open_nodes = [
        node for node in range(simulator.cluster.num_nodes)
        if simulator.cluster.node(node).state is not NodeState.HEALTHY
    ]
    assert report.repairs_completed + len(open_nodes) <= (
        report.failures_injected
    )
    assert report.repairs_completed == len(simulator.cluster.history)

    # Report metrics stay in their domains.
    assert 0.0 <= report.availability <= 1.0
    assert report.spare_stockouts >= 0
    assert report.spares_consumed >= 0
    if report.repairs_completed:
        assert report.effective_mttr_hours > 0.0
        assert (report.mean_waiting_hours
                <= report.effective_mttr_hours)

    # The injected log validates and matches the machine taxonomy.
    log = simulator.injected_log()
    assert len(log) == report.failures_injected
    breakdown = category_breakdown(log)
    assert breakdown.total == len(log)


@pytest.mark.parametrize("seed", [0, 1])
def test_scheduler_invariants(seed):
    from repro.sim import CheckpointPolicy, WorkloadConfig

    simulator = ClusterSimulator(
        "tsubame3",
        seed=seed,
        workload=WorkloadConfig(mean_interarrival_hours=0.5,
                                mean_duration_hours=12.0),
        checkpoint_policy=CheckpointPolicy(interval_hours=4.0,
                                           cost_hours=0.2),
        intensity=4.0,
    )
    report = simulator.run(800.0)
    stats = report.scheduler
    assert stats is not None
    # Accounting identities.
    assert stats.jobs_completed <= stats.jobs_submitted
    assert stats.useful_node_hours >= 0.0
    assert stats.lost_node_hours >= 0.0
    assert 0.0 <= stats.goodput_fraction <= 1.0
    # No node is double-booked at the end of the run.
    scheduler = simulator.scheduler
    assigned = list(scheduler._node_to_job)
    assert len(assigned) == len(set(assigned))
    # Running jobs occupy only healthy nodes or nodes that failed
    # this instant (the failure handler runs synchronously, so by the
    # end of the run every running job's nodes are healthy).
    for job_id, entry in scheduler._running.items():
        for node in entry.nodes:
            assert simulator.cluster.node(node).is_available
