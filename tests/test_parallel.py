"""Tests for the deterministic multi-seed sweep engine."""

import pickle

import pytest

from repro.errors import ValidationError
from repro.parallel import default_processes, sweep, sweep_iter
from repro.predict.tuning import sweep_rate_predictor
from repro.synth import profile_for, replicate_scenario


def _square(seed: int) -> int:
    return seed * seed


def _seeded_tuple(seed: int) -> tuple[int, int]:
    return (seed, seed + 1)


def _square_unless_13(seed: int) -> int:
    if seed == 13:
        raise ValueError("poisoned seed")
    return seed * seed


class TestSweep:
    def test_serial_matches_comprehension(self):
        seeds = list(range(20))
        assert sweep(_square, seeds) == [s * s for s in seeds]

    def test_parallel_matches_serial_in_order(self):
        seeds = list(range(37))
        serial = sweep(_square, seeds, processes=1)
        parallel = sweep(_square, seeds, processes=2)
        assert parallel == serial == [s * s for s in seeds]

    def test_chunksize_does_not_change_results(self):
        seeds = list(range(23))
        for chunksize in (1, 2, 7, 100):
            assert sweep(
                _square, seeds, processes=2, chunksize=chunksize
            ) == [s * s for s in seeds]

    def test_empty_seeds(self):
        assert sweep(_square, []) == []

    def test_structured_results(self):
        assert sweep(_seeded_tuple, [3, 1], processes=2) == [
            (3, 4), (1, 2)
        ]

    def test_invalid_processes_rejected(self):
        with pytest.raises(ValidationError):
            sweep(_square, [1], processes=0)

    def test_invalid_chunksize_rejected(self):
        with pytest.raises(ValidationError):
            sweep(_square, [1], chunksize=0)

    def test_default_processes_positive(self):
        assert default_processes() >= 1

    def test_generator_input(self):
        assert sweep(_square, (s for s in range(5))) == [
            0, 1, 4, 9, 16
        ]


class TestPredictorSweepParallel:
    def test_parallel_grid_identical_to_serial(self, t2_log):
        grid = dict(
            window_grid=(336.0, 1000.0), threshold_grid=(2, 3)
        )
        serial = sweep_rate_predictor(t2_log, **grid)
        parallel = sweep_rate_predictor(t2_log, **grid, processes=2)
        assert parallel == serial

    def test_log_pickles_for_workers(self, t2_log):
        t2_log.columns  # populate caches; they must not travel
        payload = pickle.dumps(t2_log)
        assert pickle.loads(payload) == t2_log


class TestReplicateScenario:
    def test_seed_ordered_and_deterministic(self):
        profile = profile_for("tsubame3")
        seeds = (5, 3, 8)
        logs = replicate_scenario(profile, seeds)
        again = replicate_scenario(profile, seeds)
        assert [len(log) for log in logs] == [len(log) for log in again]
        assert logs == again

    def test_parallel_identical_to_serial(self):
        profile = profile_for("tsubame3")
        seeds = tuple(range(4))
        serial = replicate_scenario(profile, seeds, processes=1)
        parallel = replicate_scenario(profile, seeds, processes=2)
        assert parallel == serial

    def test_empty_seeds_rejected(self):
        from repro.errors import CalibrationError

        with pytest.raises(CalibrationError):
            replicate_scenario(profile_for("tsubame2"), ())


class TestSweepIter:
    def test_streams_in_input_order(self):
        seeds = list(range(25))
        outcomes = list(sweep_iter(_square, seeds))
        assert [o.index for o in outcomes] == seeds
        assert [o.result for o in outcomes] == [s * s for s in seeds]
        assert all(o.ok for o in outcomes)

    def test_matches_sweep_return_errors(self):
        seeds = list(range(20))
        streamed = list(sweep_iter(_square_unless_13, seeds, processes=2))
        materialised = sweep(
            _square_unless_13, seeds, processes=2, return_errors=True
        )
        assert [(o.index, o.item, o.result, o.ok) for o in streamed] == [
            (o.index, o.item, o.result, o.ok) for o in materialised
        ]

    def test_captures_failures_without_raising(self):
        outcomes = list(sweep_iter(_square_unless_13, [12, 13, 14]))
        assert [o.ok for o in outcomes] == [True, False, True]
        assert isinstance(outcomes[1].error, ValueError)

    def test_parallel_matches_serial(self):
        seeds = list(range(31))
        serial = list(sweep_iter(_square, seeds))
        parallel = list(sweep_iter(_square, seeds, processes=3))
        assert [(o.index, o.result) for o in parallel] == [
            (o.index, o.result) for o in serial
        ]

    def test_empty_input(self):
        assert list(sweep_iter(_square, [])) == []

    def test_invalid_args_rejected(self):
        with pytest.raises(ValidationError):
            list(sweep_iter(_square, [1], processes=0))
        with pytest.raises(ValidationError):
            list(sweep_iter(_square, [1, 2], retries=-1))

    def test_early_abandonment_shuts_down(self):
        iterator = sweep_iter(_square, list(range(40)), processes=2)
        first = next(iterator)
        assert first.index == 0
        iterator.close()  # must not hang or leak the pool
