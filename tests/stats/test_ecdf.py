"""Tests for the empirical CDF."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.stats.ecdf import ECDF


class TestEvaluation:
    def test_step_values(self):
        ecdf = ECDF([1.0, 2.0, 3.0, 4.0])
        assert ecdf(0.5) == 0.0
        assert ecdf(1.0) == pytest.approx(0.25)
        assert ecdf(2.5) == pytest.approx(0.5)
        assert ecdf(4.0) == 1.0
        assert ecdf(100.0) == 1.0

    def test_right_continuity(self):
        ecdf = ECDF([1.0, 1.0, 2.0])
        assert ecdf(1.0) == pytest.approx(2 / 3)
        assert ecdf(1.0 - 1e-12) == 0.0

    def test_vectorised_evaluate(self):
        ecdf = ECDF([1.0, 2.0])
        np.testing.assert_allclose(
            ecdf.evaluate([0.0, 1.0, 2.0]), [0.0, 0.5, 1.0]
        )

    def test_unsorted_input_handled(self):
        ecdf = ECDF([3.0, 1.0, 2.0])
        assert ecdf(1.5) == pytest.approx(1 / 3)


class TestQuantiles:
    def test_quantile_order_statistics(self):
        ecdf = ECDF([10.0, 20.0, 30.0, 40.0])
        assert ecdf.quantile(0.25) == 10.0
        assert ecdf.quantile(0.5) == 20.0
        assert ecdf.quantile(0.75) == 30.0
        assert ecdf.quantile(1.0) == 40.0

    def test_median(self):
        assert ECDF([5.0, 1.0, 9.0]).median() == 5.0

    def test_quantile_bounds_rejected(self):
        ecdf = ECDF([1.0])
        with pytest.raises(ValidationError):
            ecdf.quantile(0.0)
        with pytest.raises(ValidationError):
            ecdf.quantile(1.1)

    def test_quantile_inverts_cdf(self):
        rng = np.random.default_rng(0)
        sample = rng.exponential(10.0, size=200)
        ecdf = ECDF(sample)
        for q in (0.1, 0.5, 0.9):
            x = ecdf.quantile(q)
            assert ecdf(x) >= q


class TestShapes:
    def test_mean_and_support(self):
        ecdf = ECDF([2.0, 4.0, 6.0])
        assert ecdf.mean() == pytest.approx(4.0)
        assert ecdf.support == (2.0, 6.0)
        assert ecdf.n == 3

    def test_steps_monotone(self):
        xs, fs = ECDF([3.0, 1.0, 2.0]).steps()
        assert list(xs) == [1.0, 2.0, 3.0]
        assert list(fs) == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_on_grid(self):
        grid, values = ECDF([0.0, 10.0]).on_grid(num_points=11)
        assert len(grid) == 11
        assert values[0] == pytest.approx(0.5)  # F(0) includes the 0
        assert values[-1] == 1.0

    def test_on_grid_too_few_points_rejected(self):
        with pytest.raises(ValidationError):
            ECDF([1.0]).on_grid(num_points=1)


class TestValidation:
    def test_empty_sample_rejected(self):
        with pytest.raises(ValidationError):
            ECDF([])

    def test_non_finite_rejected(self):
        with pytest.raises(ValidationError):
            ECDF([1.0, float("inf")])
        with pytest.raises(ValidationError):
            ECDF([float("nan")])
