"""Tests for Kaplan-Meier survival estimation."""

import pytest

from repro.errors import ValidationError
from repro.stats.survival import KaplanMeier


class TestUncensored:
    def test_matches_empirical_survival(self):
        km = KaplanMeier([1.0, 2.0, 3.0, 4.0])
        assert km.survival_at(0.5) == 1.0
        assert km.survival_at(1.0) == pytest.approx(0.75)
        assert km.survival_at(2.5) == pytest.approx(0.5)
        assert km.survival_at(4.0) == pytest.approx(0.0)

    def test_ties(self):
        km = KaplanMeier([2.0, 2.0, 5.0])
        assert km.survival_at(2.0) == pytest.approx(1 / 3)

    def test_median(self):
        km = KaplanMeier([1.0, 2.0, 3.0, 4.0])
        assert km.median_survival() == 2.0

    def test_counts(self):
        km = KaplanMeier([1.0, 2.0])
        assert km.n == 2
        assert km.num_events == 2


class TestCensored:
    def test_censoring_raises_survival(self):
        uncensored = KaplanMeier([1.0, 2.0, 3.0, 4.0])
        censored = KaplanMeier(
            [1.0, 2.0, 3.0, 4.0], observed=[True, False, True, True]
        )
        # Removing the event at t=2 means the curve stays higher there.
        assert censored.survival_at(2.0) > uncensored.survival_at(2.0)

    def test_all_censored_curve_stays_at_one(self):
        km = KaplanMeier([1.0, 2.0], observed=[False, False])
        assert km.survival_at(10.0) == 1.0
        assert km.median_survival() is None
        assert km.num_events == 0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            KaplanMeier([1.0, 2.0], observed=[True])


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            KaplanMeier([])

    def test_negative_duration_rejected(self):
        with pytest.raises(ValidationError):
            KaplanMeier([-1.0])

    def test_negative_time_query_rejected(self):
        km = KaplanMeier([1.0])
        with pytest.raises(ValidationError):
            km.survival_at(-0.1)

    def test_steps_monotone_decreasing(self):
        times, survival = KaplanMeier([3.0, 1.0, 2.0, 2.0]).steps()
        assert list(times) == sorted(times)
        assert all(a >= b for a, b in zip(survival, survival[1:]))
