"""Tests for Poisson changepoint detection."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.stats.changepoint import (
    detect_changepoints,
    poisson_segment_loglik,
)


class TestSegmentLoglik:
    def test_zero_counts(self):
        assert poisson_segment_loglik([0, 0, 0]) == 0.0

    def test_empty(self):
        assert poisson_segment_loglik([]) == 0.0

    def test_higher_for_homogeneous_fit(self):
        # Splitting a homogeneous segment barely improves likelihood.
        homogeneous = [10, 10, 10, 10]
        whole = poisson_segment_loglik(homogeneous)
        split = (poisson_segment_loglik(homogeneous[:2])
                 + poisson_segment_loglik(homogeneous[2:]))
        assert split == pytest.approx(whole)


class TestDetectChangepoints:
    def test_clear_shift_detected(self):
        counts = [5] * 10 + [25] * 10
        points = detect_changepoints(counts)
        assert len(points) == 1
        assert points[0].index == 10
        assert points[0].left_rate == pytest.approx(5.0)
        assert points[0].right_rate == pytest.approx(25.0)
        assert points[0].rate_ratio == pytest.approx(5.0)

    def test_no_shift_in_homogeneous_series(self):
        rng = np.random.default_rng(0)
        counts = rng.poisson(10.0, size=40).tolist()
        assert detect_changepoints(counts) == []

    def test_two_shifts_recovered(self):
        counts = [4] * 12 + [20] * 12 + [4] * 12
        points = detect_changepoints(counts)
        assert [p.index for p in points] == [12, 24]

    def test_min_gain_suppresses_weak_shifts(self):
        counts = [10] * 10 + [12] * 10  # tiny shift
        assert detect_changepoints(counts, min_gain=10.0) == []

    def test_min_segment_respected(self):
        counts = [5, 50, 50, 50, 50, 5]
        points = detect_changepoints(counts, min_segment=3)
        for point in points:
            assert 3 <= point.index <= len(counts) - 3

    def test_zero_to_positive_ratio_infinite(self):
        counts = [0] * 8 + [9] * 8
        points = detect_changepoints(counts)
        assert len(points) == 1
        assert points[0].rate_ratio == float("inf")

    def test_invalid_inputs(self):
        with pytest.raises(AnalysisError):
            detect_changepoints([1, 2], min_segment=2)
        with pytest.raises(AnalysisError):
            detect_changepoints([1, 2, 3, 4], min_gain=0.0)
        with pytest.raises(AnalysisError):
            detect_changepoints([1, -1, 2, 3])
        with pytest.raises(AnalysisError):
            detect_changepoints([1, 2, 3, 4], min_segment=0)

    def test_calibrated_monthly_series_mostly_stable(self, t2_log):
        # The generator's mild seasonality should not register as a
        # regime change at a strong threshold.
        from repro.core.seasonal import monthly_failure_counts

        series = monthly_failure_counts(t2_log).series()
        points = detect_changepoints(series, min_gain=20.0)
        assert len(points) <= 1

    def test_windowed_counts_detect_injected_surge(self):
        # Splice two generator runs at different intensities.
        counts = [12, 10, 11, 13, 12, 11, 30, 32, 29, 31, 28, 30]
        points = detect_changepoints(counts)
        assert len(points) == 1
        assert points[0].index == 6
