"""Tests for correlation measures and hypothesis tests."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.stats.correlation import pearson, spearman
from repro.stats.tests import chi_square_gof, ks_two_sample


class TestPearson:
    def test_perfect_positive(self):
        result = pearson([1, 2, 3, 4], [2, 4, 6, 8])
        assert result.coefficient == pytest.approx(1.0)
        assert result.is_significant

    def test_perfect_negative(self):
        result = pearson([1, 2, 3, 4], [8, 6, 4, 2])
        assert result.coefficient == pytest.approx(-1.0)

    def test_independent_series_not_significant(self):
        rng = np.random.default_rng(0)
        result = pearson(rng.normal(size=50), rng.normal(size=50))
        assert abs(result.coefficient) < 0.35
        assert not result.is_significant

    def test_constant_series_defined_as_zero(self):
        result = pearson([1.0, 1.0, 1.0], [2.0, 5.0, 9.0])
        assert result.coefficient == 0.0
        assert result.pvalue == 1.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            pearson([1, 2], [1, 2, 3])

    def test_too_short_rejected(self):
        with pytest.raises(ValidationError):
            pearson([1, 2], [3, 4])


class TestSpearman:
    def test_monotone_nonlinear_is_perfect(self):
        xs = [1.0, 2.0, 3.0, 4.0, 5.0]
        ys = [x**3 for x in xs]
        result = spearman(xs, ys)
        assert result.coefficient == pytest.approx(1.0)

    def test_constant_series_defined_as_zero(self):
        assert spearman([3.0, 3.0, 3.0], [1.0, 2.0, 3.0]).coefficient == 0.0


class TestKsTwoSample:
    def test_same_distribution_not_rejected(self):
        rng = np.random.default_rng(1)
        a = rng.exponential(10.0, size=300)
        b = rng.exponential(10.0, size=300)
        assert not ks_two_sample(a, b).rejects_null()

    def test_different_distributions_rejected(self):
        rng = np.random.default_rng(2)
        a = rng.exponential(10.0, size=300)
        b = rng.exponential(50.0, size=300)
        assert ks_two_sample(a, b).rejects_null()

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            ks_two_sample([], [1.0])

    def test_bad_alpha_rejected(self):
        result = ks_two_sample([1.0, 2.0], [1.0, 2.0])
        with pytest.raises(ValidationError):
            result.rejects_null(alpha=0.0)

    def test_tbf_distributions_differ_across_machines(
        self, t2_log, t3_log
    ):
        # Figure 6: the TBF distributions are visibly different.
        from repro.core.metrics import tbf_series_hours

        result = ks_two_sample(
            tbf_series_hours(t2_log), tbf_series_hours(t3_log)
        )
        assert result.rejects_null()


class TestChiSquare:
    def test_matching_counts_not_rejected(self):
        result = chi_square_gof([50, 30, 20], [0.5, 0.3, 0.2])
        assert result.pvalue > 0.99

    def test_mismatched_counts_rejected(self):
        result = chi_square_gof([90, 5, 5], [1 / 3, 1 / 3, 1 / 3])
        assert result.rejects_null()

    def test_unnormalised_shares_accepted(self):
        result = chi_square_gof([50, 50], [2.0, 2.0])
        assert result.pvalue > 0.99

    def test_impossible_cell_with_observations(self):
        result = chi_square_gof([10, 5], [1.0, 0.0])
        assert result.pvalue == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            chi_square_gof([1, 2], [0.5])

    def test_all_zero_shares_rejected(self):
        with pytest.raises(ValidationError):
            chi_square_gof([1, 2], [0.0, 0.0])

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValidationError):
            chi_square_gof([-1, 2], [0.5, 0.5])

    def test_single_cell_rejected(self):
        with pytest.raises(ValidationError):
            chi_square_gof([5], [1.0])

    def test_calibrated_category_mix_matches_profile(self, t2_log):
        # The generated log's category histogram is consistent with the
        # profile's target mix by construction.
        from repro.core.breakdown import category_breakdown
        from repro.synth import profile_for

        profile = profile_for("tsubame2")
        result = category_breakdown(t2_log)
        names = sorted(profile.category_counts)
        observed = [result.count_of(name) for name in names]
        expected = [profile.category_counts[name] for name in names]
        assert not chi_square_gof(observed, expected).rejects_null()
