"""Tests for parametric distribution fitting."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.stats.fitting import (
    SUPPORTED_DISTRIBUTIONS,
    fit_best,
    fit_distribution,
)


@pytest.fixture(scope="module")
def exponential_sample():
    return np.random.default_rng(0).exponential(20.0, size=500)


@pytest.fixture(scope="module")
def lognormal_sample():
    return np.random.default_rng(1).lognormal(3.0, 0.8, size=500)


class TestFitDistribution:
    def test_exponential_recovers_scale(self, exponential_sample):
        fit = fit_distribution(exponential_sample, "exponential")
        assert fit.params[-1] == pytest.approx(20.0, rel=0.15)
        assert fit.mean() == pytest.approx(
            float(np.mean(exponential_sample)), rel=0.01
        )

    def test_weibull_shape_near_one_for_exponential_data(
        self, exponential_sample
    ):
        fit = fit_distribution(exponential_sample, "weibull")
        assert fit.shape_parameter() == pytest.approx(1.0, abs=0.15)

    def test_lognormal_recovers_sigma(self, lognormal_sample):
        fit = fit_distribution(lognormal_sample, "lognormal")
        assert fit.shape_parameter() == pytest.approx(0.8, abs=0.1)

    def test_exponential_has_no_shape(self, exponential_sample):
        fit = fit_distribution(exponential_sample, "exponential")
        assert fit.shape_parameter() is None

    def test_quantile_monotone(self, exponential_sample):
        fit = fit_distribution(exponential_sample, "gamma")
        assert fit.quantile(0.25) < fit.quantile(0.75)

    def test_quantile_bounds(self, exponential_sample):
        fit = fit_distribution(exponential_sample, "gamma")
        with pytest.raises(ValidationError):
            fit.quantile(0.0)

    def test_ks_pvalue_reasonable_for_true_family(
        self, exponential_sample
    ):
        fit = fit_distribution(exponential_sample, "exponential")
        assert fit.ks_pvalue > 0.01

    def test_unknown_family_rejected(self):
        with pytest.raises(ValidationError):
            fit_distribution([1.0, 2.0], "pareto")

    def test_non_positive_data_rejected(self):
        with pytest.raises(ValidationError):
            fit_distribution([1.0, 0.0], "weibull")

    def test_too_few_points_rejected(self):
        with pytest.raises(ValidationError):
            fit_distribution([1.0], "weibull")


class TestFitBest:
    def test_picks_true_family_for_lognormal_data(self, lognormal_sample):
        best = fit_best(lognormal_sample)
        assert best.name == "lognormal"

    def test_ks_criterion(self, lognormal_sample):
        best = fit_best(lognormal_sample, criterion="ks")
        assert best.name in SUPPORTED_DISTRIBUTIONS

    def test_aic_of_best_is_minimal(self, exponential_sample):
        best = fit_best(exponential_sample)
        for name in SUPPORTED_DISTRIBUTIONS:
            assert best.aic <= fit_distribution(
                exponential_sample, name
            ).aic + 1e-9

    def test_unknown_criterion_rejected(self):
        with pytest.raises(ValidationError):
            fit_best([1.0, 2.0, 3.0], criterion="bic")

    def test_empty_names_rejected(self):
        with pytest.raises(ValidationError):
            fit_best([1.0, 2.0, 3.0], names=())
