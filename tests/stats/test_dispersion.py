"""Tests for dispersion/burstiness measures."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.stats.dispersion import (
    count_autocorrelation,
    gap_coefficient_of_variation,
    index_of_dispersion,
    window_counts,
)


class TestWindowCounts:
    def test_bucketing(self):
        counts = window_counts([0.5, 1.5, 1.6, 9.9], span=10.0,
                               num_windows=5)
        assert counts == [3, 0, 0, 0, 1]

    def test_boundary_event_in_last_window(self):
        counts = window_counts([10.0], span=10.0, num_windows=5)
        assert counts == [0, 0, 0, 0, 1]

    def test_total_conserved(self):
        rng = np.random.default_rng(0)
        times = rng.uniform(0, 100.0, size=57)
        counts = window_counts(times, span=100.0, num_windows=7)
        assert sum(counts) == 57

    def test_invalid_inputs(self):
        with pytest.raises(ValidationError):
            window_counts([1.0], span=0.0, num_windows=2)
        with pytest.raises(ValidationError):
            window_counts([1.0], span=10.0, num_windows=0)
        with pytest.raises(ValidationError):
            window_counts([20.0], span=10.0, num_windows=2)


class TestIndexOfDispersion:
    def test_poisson_near_one(self):
        rng = np.random.default_rng(1)
        counts = rng.poisson(10.0, size=500)
        assert index_of_dispersion(counts) == pytest.approx(1.0, abs=0.2)

    def test_clustered_above_one(self):
        counts = [0] * 50 + [20] * 50
        assert index_of_dispersion(counts) > 5.0

    def test_constant_is_zero(self):
        assert index_of_dispersion([7, 7, 7, 7]) == 0.0

    def test_invalid_inputs(self):
        with pytest.raises(ValidationError):
            index_of_dispersion([5])
        with pytest.raises(ValidationError):
            index_of_dispersion([0, 0, 0])


class TestGapCv:
    def test_exponential_near_one(self):
        rng = np.random.default_rng(2)
        gaps = rng.exponential(10.0, size=2000)
        assert gap_coefficient_of_variation(gaps) == pytest.approx(
            1.0, abs=0.1
        )

    def test_regular_gaps_near_zero(self):
        assert gap_coefficient_of_variation([10.0] * 20) == 0.0

    def test_bursty_above_one(self):
        gaps = [0.1] * 50 + [100.0] * 5
        assert gap_coefficient_of_variation(gaps) > 1.5

    def test_invalid_inputs(self):
        with pytest.raises(ValidationError):
            gap_coefficient_of_variation([1.0])
        with pytest.raises(ValidationError):
            gap_coefficient_of_variation([1.0, -1.0])
        with pytest.raises(ValidationError):
            gap_coefficient_of_variation([0.0, 0.0])


class TestAutocorrelation:
    def test_alternating_is_negative(self):
        counts = [0, 10] * 20
        assert count_autocorrelation(counts, lag=1) < -0.9

    def test_lag_two_of_alternating_is_positive(self):
        counts = [0, 10] * 20
        assert count_autocorrelation(counts, lag=2) > 0.9

    def test_constant_is_zero(self):
        assert count_autocorrelation([5] * 10) == 0.0

    def test_invalid_inputs(self):
        with pytest.raises(ValidationError):
            count_autocorrelation([1, 2, 3], lag=0)
        with pytest.raises(ValidationError):
            count_autocorrelation([1, 2], lag=1)


class TestCalibratedDispersion:
    def test_generated_arrivals_are_overdispersed(self, t2_log):
        # The Weibull shape < 1 plus seasonality makes the stream
        # clustered relative to Poisson.
        counts = window_counts(
            t2_log.timestamps_hours(), t2_log.span_hours, 60
        )
        assert index_of_dispersion(counts) > 1.1

    def test_generated_gap_cv_above_one(self, t2_log, t3_log):
        from repro.core.metrics import tbf_series_hours

        for log in (t2_log, t3_log):
            cv = gap_coefficient_of_variation(tbf_series_hours(log))
            assert cv > 1.1, log.machine
