"""Tests for five-number summaries."""

import pytest

from repro.errors import ValidationError
from repro.stats.summary import describe, five_number_summary


class TestFiveNumberSummary:
    def test_known_values(self):
        summary = five_number_summary([1.0, 2.0, 3.0, 4.0, 5.0])
        assert summary.minimum == 1.0
        assert summary.q1 == 2.0
        assert summary.median == 3.0
        assert summary.q3 == 4.0
        assert summary.maximum == 5.0
        assert summary.mean == 3.0
        assert summary.n == 5

    def test_iqr(self):
        summary = five_number_summary([0.0, 10.0, 20.0, 30.0])
        assert summary.iqr == pytest.approx(summary.q3 - summary.q1)

    def test_relative_spread(self):
        summary = five_number_summary([1.0, 2.0, 3.0, 4.0, 5.0])
        assert summary.relative_spread == pytest.approx(2.0 / 3.0)

    def test_relative_spread_zero_median(self):
        summary = five_number_summary([0.0, 0.0, 0.0])
        assert summary.relative_spread == 0.0

    def test_single_value(self):
        summary = five_number_summary([7.0])
        assert summary.minimum == summary.maximum == summary.median == 7.0
        assert summary.iqr == 0.0

    def test_as_row_keys(self):
        row = five_number_summary([1.0, 2.0]).as_row()
        assert set(row) == {"n", "min", "q1", "median", "q3", "max",
                            "mean", "iqr"}

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            five_number_summary([])

    def test_non_finite_rejected(self):
        with pytest.raises(ValidationError):
            five_number_summary([1.0, float("nan")])


class TestDescribe:
    def test_extended_keys(self):
        row = describe([1.0, 2.0, 3.0])
        for key in ("std", "cv", "p90", "p95", "p99"):
            assert key in row

    def test_std_single_sample_is_zero(self):
        assert describe([5.0])["std"] == 0.0

    def test_percentile_ordering(self):
        row = describe(list(range(100)))
        assert row["p90"] <= row["p95"] <= row["p99"] <= row["max"]

    def test_cv(self):
        row = describe([10.0, 10.0, 10.0])
        assert row["cv"] == 0.0
