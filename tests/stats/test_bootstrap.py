"""Tests for bootstrap confidence intervals."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.stats.bootstrap import bootstrap_ci, bootstrap_mean_ci


class TestBootstrapMean:
    def test_interval_contains_sample_mean(self):
        rng = np.random.default_rng(1)
        sample = rng.normal(50.0, 5.0, size=300)
        result = bootstrap_mean_ci(sample, seed=2)
        assert float(np.mean(sample)) in result
        assert result.low < result.estimate < result.high
        # The interval has roughly the normal-theory width (~2 x 1.96
        # x sigma / sqrt(n)).
        assert 0.5 < result.width < 2.5

    def test_estimate_is_sample_mean(self):
        result = bootstrap_mean_ci([1.0, 2.0, 3.0], seed=0)
        assert result.estimate == pytest.approx(2.0)

    def test_deterministic_with_seed(self):
        sample = [1.0, 5.0, 9.0, 2.0]
        a = bootstrap_mean_ci(sample, seed=7)
        b = bootstrap_mean_ci(sample, seed=7)
        assert (a.low, a.high) == (b.low, b.high)

    def test_width_shrinks_with_sample_size(self):
        rng = np.random.default_rng(3)
        small = bootstrap_mean_ci(rng.normal(0, 1, 20), seed=1)
        large = bootstrap_mean_ci(rng.normal(0, 1, 2000), seed=1)
        assert large.width < small.width

    def test_constant_sample_has_zero_width(self):
        result = bootstrap_mean_ci([4.0] * 10, seed=0)
        assert result.width == 0.0
        assert 4.0 in result


class TestBootstrapGeneric:
    def test_custom_statistic(self):
        result = bootstrap_ci(
            [1.0, 2.0, 100.0],
            statistic=lambda arr: float(np.median(arr)),
            seed=0,
        )
        assert result.estimate == 2.0

    def test_confidence_recorded(self):
        result = bootstrap_mean_ci([1.0, 2.0], confidence=0.9, seed=0)
        assert result.confidence == 0.9

    def test_empty_sample_rejected(self):
        with pytest.raises(ValidationError):
            bootstrap_mean_ci([])

    def test_bad_confidence_rejected(self):
        with pytest.raises(ValidationError):
            bootstrap_mean_ci([1.0], confidence=1.0)

    def test_bad_resamples_rejected(self):
        with pytest.raises(ValidationError):
            bootstrap_mean_ci([1.0], num_resamples=0)
