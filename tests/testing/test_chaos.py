"""Tests for the chaos harness itself, plus the end-to-end
acceptance demos: every layer of the robustness stack survives its
injected faults."""

import os

import pytest

from repro.io import LogReadReport, read_log, write_csv, write_jsonl
from repro.parallel import sweep
from repro.stream import (
    FailureMonitor,
    StreamStats,
    events_from_log,
    tolerant_stream,
)
from repro.testing.chaos import (
    LOG_FAULT_KINDS,
    ChaosInjectedError,
    CrashOnce,
    FlakyFunction,
    PoisonedFunction,
    corrupt_log_file,
    duplicate_stream,
    shuffle_stream,
)
from tests.conftest import make_log, make_record


def _sample_log(n: int = 10):
    return make_log(
        [
            make_record(i, hours=8.0 * (i + 1), ttr_hours=4.0)
            for i in range(n)
        ]
    )


def _double(x: int) -> int:
    return 2 * x


class TestCorruptLogFile:
    def test_determinism(self, tmp_path):
        log = _sample_log()
        src = tmp_path / "clean.csv"
        write_csv(log, src)
        a, b = tmp_path / "a.csv", tmp_path / "b.csv"
        manifest_a = corrupt_log_file(src, a, seed=7, rate=0.5)
        manifest_b = corrupt_log_file(src, b, seed=7, rate=0.5)
        assert manifest_a == manifest_b
        assert a.read_text() == b.read_text()

    def test_unknown_kind_rejected(self, tmp_path):
        log = _sample_log(2)
        src = tmp_path / "clean.csv"
        write_csv(log, src)
        with pytest.raises(ValueError, match="unknown fault kinds"):
            corrupt_log_file(src, tmp_path / "d.csv", kinds=["bitrot"])

    def test_unrecognised_format_rejected(self, tmp_path):
        path = tmp_path / "log.parquet"
        path.write_text("whatever\n")
        with pytest.raises(ValueError, match="unrecognised"):
            corrupt_log_file(path, tmp_path / "d.parquet")

    def test_empty_body_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text('{"machine": "tsubame2"}\n')
        with pytest.raises(ValueError, match="no data rows"):
            corrupt_log_file(path, tmp_path / "d.jsonl")

    def test_shuffle_manifested_at_line_zero(self, tmp_path):
        log = _sample_log()
        src = tmp_path / "clean.jsonl"
        write_jsonl(log, src)
        manifest = corrupt_log_file(
            src, tmp_path / "d.jsonl", seed=1, rate=0.0, shuffle=True
        )
        assert [(f.line_number, f.kind) for f in manifest] == [
            (0, "shuffle")
        ]

    def test_truncate_always_manifests_final_line(self, tmp_path):
        log = _sample_log(4)
        src = tmp_path / "clean.csv"
        write_csv(log, src)
        manifest = corrupt_log_file(
            src, tmp_path / "d.csv", seed=0, rate=0.0, truncate=True
        )
        n_lines = len(
            (tmp_path / "d.csv").read_text().splitlines()
        )
        assert manifest[-1].kind == "truncated"
        assert manifest[-1].line_number == n_lines


class TestStreamChaos:
    def test_shuffle_displacement_is_bounded(self):
        events = list(events_from_log(_sample_log(30)))
        shuffled = shuffle_stream(events, seed=5, max_shift_hours=10.0)
        assert sorted(
            e.time_hours for e in shuffled
        ) == [e.time_hours for e in events]
        # Bounded displacement: whenever an event precedes an older
        # one, it is at most max_shift newer.
        running_min_suffix = float("inf")
        for event in reversed(shuffled):
            running_min_suffix = min(
                running_min_suffix, event.time_hours
            )
            assert event.time_hours - running_min_suffix <= 10.0

    def test_zero_shift_is_identity(self):
        events = list(events_from_log(_sample_log(10)))
        assert shuffle_stream(events, max_shift_hours=0.0) == events

    def test_negative_shift_rejected(self):
        with pytest.raises(ValueError):
            shuffle_stream([], max_shift_hours=-1.0)

    def test_duplicate_stream_counts(self):
        events = list(events_from_log(_sample_log(25)))
        dirty, injected = duplicate_stream(events, seed=2, rate=0.3)
        assert len(dirty) == len(events) + injected
        assert injected > 0


class TestSweepChaosWrappers:
    def test_poisoned_function(self):
        poisoned = PoisonedFunction(_double, poisoned=[3])
        assert poisoned(2) == 4
        with pytest.raises(ChaosInjectedError):
            poisoned(3)

    def test_flaky_function_recovers(self, tmp_path):
        flaky = FlakyFunction(
            _double, failures=2, state_dir=tmp_path, items=[5]
        )
        with pytest.raises(ChaosInjectedError):
            flaky(5)
        with pytest.raises(ChaosInjectedError):
            flaky(5)
        assert flaky(5) == 10
        assert flaky(6) == 12  # non-flaky items never fail

    def test_flaky_negative_failures_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            FlakyFunction(_double, failures=-1, state_dir=tmp_path)

    def test_crash_once_is_inert_in_parent(self, tmp_path):
        crasher = CrashOnce(_double, crash_items=[1], state_dir=tmp_path)
        assert crasher(1) == 2  # same pid: must NOT kill the runner
        assert os.getpid() == crasher.parent_pid


class TestEndToEndAcceptance:
    """The ISSUE's acceptance demos: chaos in, correct behaviour out,
    at every layer."""

    def test_corrupted_log_survives_lenient_ingest(self, tmp_path):
        log = _sample_log(15)
        src = tmp_path / "clean.csv"
        dst = tmp_path / "dirty.csv"
        write_csv(log, src)
        manifest = corrupt_log_file(
            src, dst, seed=11, kinds=LOG_FAULT_KINDS, rate=0.3,
            shuffle=True, truncate=True,
        )
        report = read_log(dst, on_error="collect")
        assert isinstance(report, LogReadReport)
        assert sorted(
            e.line_number for e in report.quarantined
        ) == sorted(
            f.line_number for f in manifest if f.line_number > 0
        )
        assert len(report.log) > 0
        kept_ids = {r.record_id for r in report.log}
        assert kept_ids <= {r.record_id for r in log}

    def test_disordered_stream_survives_buffered_monitor(self):
        log = _sample_log(20)
        clean = list(events_from_log(log, include_repairs=True))
        dirty, injected = duplicate_stream(
            shuffle_stream(clean, seed=21, max_shift_hours=12.0),
            seed=22, rate=0.2,
        )
        reference = FailureMonitor(window_hours=400.0).consume(clean)
        monitor = FailureMonitor(window_hours=400.0)
        snapshot = monitor.consume(
            dirty, on_disorder="buffer", window_hours=12.0,
            drop_duplicates=True,
        )
        assert snapshot.failures == reference.failures
        assert snapshot.repairs == reference.repairs
        assert snapshot.events_dropped == 0
        assert snapshot.duplicates_suppressed == injected

    def test_poisoned_sweep_keeps_every_other_result(self):
        poisoned = PoisonedFunction(_double, poisoned=[4])
        outcomes = sweep(
            poisoned, list(range(8)), processes=2, return_errors=True
        )
        assert [o.ok for o in outcomes] == [
            i != 4 for i in range(8)
        ]
        assert [o.result for o in outcomes if o.ok] == [
            2 * i for i in range(8) if i != 4
        ]

    def test_full_pipeline_chaos(self, tmp_path):
        """File corruption -> lenient ingest -> disordered replay ->
        buffered monitor, end to end."""
        log = _sample_log(12)
        src = tmp_path / "clean.jsonl"
        dst = tmp_path / "dirty.jsonl"
        write_jsonl(log, src)
        corrupt_log_file(
            src, dst, seed=31, kinds=("nan_time", "duplicate_row"),
            rate=0.25,
        )
        report = read_log(dst, on_error="collect")
        events = shuffle_stream(
            list(events_from_log(report.log, include_repairs=True)),
            seed=32, max_shift_hours=6.0,
        )
        stats = StreamStats()
        replayed = list(
            tolerant_stream(
                events, on_disorder="buffer", window_hours=6.0,
                stats=stats,
            )
        )
        assert stats.dropped == 0
        assert len(replayed) == 2 * len(report.log)
