"""Tests for impact ranking and per-category rate shifts."""

import pytest

from repro.core.category_trends import (
    category_rate_shifts,
    category_window_counts,
)
from repro.core.impact import impact_ranking
from repro.errors import AnalysisError
from tests.conftest import make_log, make_record


class TestImpactRanking:
    def _log(self):
        # GPU: frequent but quick; SSD: rare but very slow.
        records = [
            make_record(i, hours=i + 1.0, category="GPU", ttr_hours=5.0)
            for i in range(8)
        ] + [
            make_record(10 + i, hours=50 + i, category="SSD",
                        ttr_hours=200.0)
            for i in range(2)
        ]
        return make_log(records)

    def test_downtime_shares_sum_to_one(self):
        ranking = impact_ranking(self._log())
        assert sum(e.downtime_share for e in ranking.entries) == (
            pytest.approx(1.0)
        )

    def test_rare_expensive_category_outranks_frequent_cheap(self):
        ranking = impact_ranking(self._log())
        ssd = ranking.entry_for("SSD")
        gpu = ranking.entry_for("GPU")
        assert ssd.frequency_rank > gpu.frequency_rank  # rarer
        assert ssd.impact_rank < gpu.impact_rank        # more impactful
        assert ssd.rank_shift > 0

    def test_underrated_detection(self):
        ranking = impact_ranking(self._log())
        underrated = ranking.underrated(min_shift=1)
        assert [e.category for e in underrated] == ["SSD"]

    def test_missing_category_rejected(self):
        ranking = impact_ranking(self._log())
        with pytest.raises(AnalysisError):
            ranking.entry_for("Lustre")

    def test_bad_min_shift_rejected(self):
        ranking = impact_ranking(self._log())
        with pytest.raises(AnalysisError):
            ranking.underrated(min_shift=0)

    def test_calibrated_t2_divergence(self, t2_log):
        # The paper's point: frequency does not equal impact.
        ranking = impact_ranking(t2_log)
        assert ranking.rank_divergence() > 0.5

    def test_calibrated_t2_ssd_underrated(self, t2_log):
        ranking = impact_ranking(t2_log)
        assert ranking.entry_for("SSD").rank_shift > 0

    def test_calibrated_t3_power_board_underrated(self, t3_log):
        ranking = impact_ranking(t3_log)
        assert ranking.entry_for("Power-Board").rank_shift > 0


class TestCategoryWindowCounts:
    def test_counts_partition_log(self, t2_log):
        counts = category_window_counts(t2_log, num_windows=10)
        assert sum(sum(series) for series in counts.values()) == (
            len(t2_log)
        )
        assert all(len(series) == 10 for series in counts.values())

    def test_empty_log_rejected(self):
        with pytest.raises(AnalysisError):
            category_window_counts(make_log([]), num_windows=4)

    def test_bad_window_count_rejected(self, t2_log):
        with pytest.raises(AnalysisError):
            category_window_counts(t2_log, num_windows=1)


class TestCategoryRateShifts:
    def test_engineered_shift_attributed(self):
        # GPU rate jumps 5x halfway; CPU stays flat.
        records = []
        rid = 0
        for window in range(12):
            base = 100.0 * window
            gpu_count = 3 if window < 6 else 15
            for index in range(gpu_count):
                records.append(
                    make_record(rid, hours=base + index + 0.5,
                                category="GPU")
                )
                rid += 1
            for index in range(4):
                records.append(
                    make_record(rid, hours=base + 50 + index,
                                category="CPU")
                )
                rid += 1
        log = make_log(records, span_hours=1200.0)
        shifts = category_rate_shifts(log, num_windows=12, min_gain=6.0)
        assert shifts, "engineered shift went undetected"
        top = shifts[0]
        assert top.category == "GPU"
        assert top.is_increase
        assert top.changepoint.index == 6
        assert top.shift_time_hours == pytest.approx(600.0)

    def test_small_categories_skipped(self):
        records = [
            make_record(i, hours=i + 1.0, category="Rack")
            for i in range(5)
        ] + [
            make_record(100 + i, hours=10 * i + 2.0, category="GPU")
            for i in range(50)
        ]
        log = make_log(records)
        shifts = category_rate_shifts(
            log, num_windows=6, min_category_failures=20
        )
        assert all(shift.category != "Rack" for shift in shifts)

    def test_calibrated_logs_have_no_strong_shifts(self, t3_log):
        # Seasonality is mild; no category should show a regime change
        # at a strong threshold.
        shifts = category_rate_shifts(t3_log, min_gain=15.0)
        assert len(shifts) <= 1

    def test_invalid_params_rejected(self, t2_log):
        with pytest.raises(AnalysisError):
            category_rate_shifts(t2_log, min_category_failures=0)
