"""Tests for RQ5 — time-to-recovery distributions."""

import pytest

from repro.core.recovery import (
    class_spread_comparison,
    ttr_by_category,
    ttr_distribution,
)
from repro.core.taxonomy import FailureClass
from repro.errors import AnalysisError
from tests.conftest import make_log, make_record


def _ttr_log():
    records = [
        make_record(0, hours=1, category="GPU", ttr_hours=10.0),
        make_record(1, hours=2, category="GPU", ttr_hours=30.0),
        make_record(2, hours=3, category="PBS", ttr_hours=5.0),
        make_record(3, hours=4, category="PBS", ttr_hours=7.0),
    ]
    return make_log(records)


class TestTtrDistribution:
    def test_mttr(self):
        dist = ttr_distribution(_ttr_log())
        assert dist.mttr_hours == pytest.approx(13.0)

    def test_fraction_within(self):
        dist = ttr_distribution(_ttr_log())
        assert dist.fraction_within(10.0) == pytest.approx(0.75)
        assert dist.fraction_within(4.0) == 0.0

    def test_quantile(self):
        dist = ttr_distribution(_ttr_log())
        assert dist.quantile(1.0) == pytest.approx(30.0)

    def test_empty_log_rejected(self):
        with pytest.raises(AnalysisError):
            ttr_distribution(make_log([]))

    def test_mttr_near_55_on_both_machines(self, t2_log, t3_log):
        for log in (t2_log, t3_log):
            dist = ttr_distribution(log)
            assert dist.mttr_hours == pytest.approx(55.0, rel=0.02)

    def test_mttr_similar_across_generations(self, t2_log, t3_log):
        t2 = ttr_distribution(t2_log).mttr_hours
        t3 = ttr_distribution(t3_log).mttr_hours
        assert abs(t2 - t3) / t2 < 0.10  # "roughly the same"

    def test_distribution_shapes_similar(self, t2_log, t3_log):
        # Figure 9: the CDF shapes roughly coincide (unlike Figure 6).
        t2 = ttr_distribution(t2_log)
        t3 = ttr_distribution(t3_log)
        for hours in (20.0, 50.0, 100.0):
            assert abs(t2.fraction_within(hours)
                       - t3.fraction_within(hours)) < 0.15


class TestTtrByCategory:
    def test_sorted_by_mean(self):
        entries = ttr_by_category(_ttr_log())
        assert [e.category for e in entries] == ["PBS", "GPU"]

    def test_share_of_failures(self):
        entries = ttr_by_category(_ttr_log())
        assert all(e.share_of_failures == pytest.approx(0.5)
                   for e in entries)

    def test_impact_is_share_times_mean(self):
        entry = ttr_by_category(_ttr_log())[1]
        assert entry.impact_hours == pytest.approx(0.5 * 20.0)

    def test_min_failures_filter(self):
        records = [
            make_record(0, hours=1, category="GPU", ttr_hours=1.0),
            make_record(1, hours=2, category="Rack", ttr_hours=1.0),
            make_record(2, hours=3, category="GPU", ttr_hours=2.0),
        ]
        entries = ttr_by_category(make_log(records), min_failures=2)
        assert [e.category for e in entries] == ["GPU"]

    def test_invalid_min_failures_rejected(self):
        with pytest.raises(AnalysisError):
            ttr_by_category(_ttr_log(), min_failures=0)

    def test_empty_log_rejected(self):
        with pytest.raises(AnalysisError):
            ttr_by_category(make_log([]))

    def test_failure_class_attached(self):
        entries = {e.category: e for e in ttr_by_category(_ttr_log())}
        assert entries["GPU"].failure_class is FailureClass.HARDWARE
        assert entries["PBS"].failure_class is FailureClass.SOFTWARE


class TestCalibratedRecoveryTails:
    """Figure 10's anecdotes on the calibrated logs."""

    def test_t2_ssd_recovery_tail(self, t2_log):
        entries = {e.category: e for e in ttr_by_category(t2_log)}
        # "recovering from some SSD failures requires ~290 hours".
        assert entries["SSD"].max_hours > 150.0

    def test_t2_ssd_is_rare_but_heavy(self, t2_log):
        entries = {e.category: e for e in ttr_by_category(t2_log)}
        ssd = entries["SSD"]
        assert ssd.share_of_failures == pytest.approx(0.04, abs=0.01)
        assert ssd.mean_hours > ttr_distribution(t2_log).mttr_hours

    def test_t3_power_board_recovery_tail(self, t3_log):
        entries = {e.category: e for e in ttr_by_category(t3_log)}
        power = entries["Power-Board"]
        # ~1% of failures, recovery "can take up to 230 hours".
        assert power.share_of_failures < 0.02
        assert power.max_hours > 100.0

    def test_low_mean_does_not_imply_low_spread(self, t2_log):
        entries = ttr_by_category(t2_log)
        spreads = [e.spread_hours for e in entries]
        # Spread is not monotone in the mean: some later (higher-mean)
        # category has lower spread than an earlier one.
        assert any(
            spreads[i] > spreads[j]
            for i in range(len(spreads))
            for j in range(i + 1, len(spreads))
        )


class TestClassSpreadComparison:
    def test_hardware_spread_exceeds_software_on_both(
        self, t2_log, t3_log
    ):
        for log in (t2_log, t3_log):
            spreads = class_spread_comparison(log)
            assert (spreads[FailureClass.HARDWARE]
                    > spreads[FailureClass.SOFTWARE])

    def test_hand_built_spreads(self):
        records = [
            make_record(0, hours=1, category="GPU", ttr_hours=1.0),
            make_record(1, hours=2, category="GPU", ttr_hours=100.0),
            make_record(2, hours=3, category="PBS", ttr_hours=10.0),
            make_record(3, hours=4, category="PBS", ttr_hours=11.0),
        ]
        spreads = class_spread_comparison(make_log(records))
        assert spreads[FailureClass.HARDWARE] > 10 * spreads[
            FailureClass.SOFTWARE
        ]
