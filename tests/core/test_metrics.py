"""Tests for MTBF / MTTR / availability / the paper's metric."""

import pytest

from repro.core import metrics
from repro.errors import AnalysisError
from repro.machines.specs import TSUBAME2, TSUBAME3
from tests.conftest import make_log, make_record


def _evenly_spaced_log(n: int, gap: float, ttr: float = 10.0,
                       span: float = 1000.0):
    records = [
        make_record(i, hours=gap * (i + 1), ttr_hours=ttr)
        for i in range(n)
    ]
    return make_log(records, span_hours=span)


class TestTbfSeries:
    def test_even_spacing(self):
        log = _evenly_spaced_log(5, gap=10.0)
        assert metrics.tbf_series_hours(log) == pytest.approx(
            [10.0, 10.0, 10.0, 10.0]
        )

    def test_simultaneous_failures_give_zero_gap(self):
        log = make_log([make_record(0, hours=5), make_record(1, hours=5)])
        assert metrics.tbf_series_hours(log) == [0.0]

    def test_single_failure_rejected(self):
        log = make_log([make_record(0, hours=5)])
        with pytest.raises(AnalysisError):
            metrics.tbf_series_hours(log)

    def test_series_length(self):
        log = _evenly_spaced_log(7, gap=3.0)
        assert len(metrics.tbf_series_hours(log)) == 6


class TestMtbf:
    def test_mtbf_mean_of_gaps(self):
        log = _evenly_spaced_log(11, gap=7.0)
        assert metrics.mtbf(log) == pytest.approx(7.0)

    def test_mtbf_span(self):
        log = _evenly_spaced_log(10, gap=5.0, span=1000.0)
        assert metrics.mtbf_span(log) == pytest.approx(100.0)

    def test_mtbf_span_empty_rejected(self):
        with pytest.raises(AnalysisError):
            metrics.mtbf_span(make_log([]))

    def test_mtbf_span_single_failure_ok(self):
        log = make_log([make_record(0, hours=5)], span_hours=500.0)
        assert metrics.mtbf_span(log) == pytest.approx(500.0)


class TestMttr:
    def test_mttr_mean(self):
        log = make_log(
            [
                make_record(0, hours=1, ttr_hours=10.0),
                make_record(1, hours=2, ttr_hours=30.0),
            ]
        )
        assert metrics.mttr(log) == pytest.approx(20.0)

    def test_mttr_empty_rejected(self):
        with pytest.raises(AnalysisError):
            metrics.mttr(make_log([]))

    def test_ttr_series_in_time_order(self):
        log = make_log(
            [
                make_record(0, hours=20, ttr_hours=2.0),
                make_record(1, hours=10, ttr_hours=1.0),
            ]
        )
        assert metrics.ttr_series_hours(log) == [1.0, 2.0]


class TestAvailability:
    def test_no_downtime_is_fully_available(self):
        log = make_log([make_record(0, hours=1, ttr_hours=0.0)])
        assert metrics.availability(log, num_nodes=10) == pytest.approx(1.0)

    def test_downtime_reduces_availability(self):
        # 2 failures x 50 h downtime over 10 nodes x 1000 h.
        log = make_log(
            [
                make_record(0, hours=1, ttr_hours=50.0),
                make_record(1, hours=2, ttr_hours=50.0),
            ]
        )
        assert metrics.availability(log, num_nodes=10) == pytest.approx(
            1.0 - 100.0 / 10000.0
        )

    def test_invalid_node_count_rejected(self):
        log = make_log([make_record(0, hours=1)])
        with pytest.raises(AnalysisError):
            metrics.availability(log, num_nodes=0)

    def test_availability_clamped_at_zero(self):
        log = make_log([make_record(0, hours=1, ttr_hours=5000.0)])
        assert metrics.availability(log, num_nodes=1) == 0.0


class TestPerformanceErrorProportionality:
    def test_flop_per_failure_free_period(self):
        log = _evenly_spaced_log(11, gap=7.0)
        result = metrics.performance_error_proportionality(log, TSUBAME2)
        expected = 2.3e15 * 7.0 * 3600.0
        assert result.flop_per_failure_free_period == pytest.approx(expected)
        assert result.mtbf_hours == pytest.approx(7.0)

    def test_machine_mismatch_rejected(self):
        log = _evenly_spaced_log(5, gap=10.0)  # a tsubame2 log
        with pytest.raises(AnalysisError):
            metrics.performance_error_proportionality(log, TSUBAME3)

    def test_ratio_between_machines(self, t2_log, t3_log):
        t2 = metrics.performance_error_proportionality(t2_log, TSUBAME2)
        t3 = metrics.performance_error_proportionality(t3_log, TSUBAME3)
        # Tsubame-3 does far more useful work per failure-free period:
        # ~5.3x the Rpeak and ~4.7x the MTBF => >20x the metric.
        assert t3.ratio_to(t2) > 15.0

    def test_ratio_against_zero_rejected(self):
        log = _evenly_spaced_log(5, gap=10.0)
        good = metrics.performance_error_proportionality(log, TSUBAME2)
        from dataclasses import replace

        broken = replace(good, flop_per_failure_free_period=0.0)
        with pytest.raises(AnalysisError):
            good.ratio_to(broken)
