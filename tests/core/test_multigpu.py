"""Tests for RQ3 — multi-GPU involvement and temporal clustering."""

import math

import pytest

from repro.core.multigpu import multi_gpu_clustering, multi_gpu_involvement
from repro.errors import AnalysisError
from tests.conftest import make_log, make_record


def _involvement_log():
    records = [
        make_record(0, hours=1, category="GPU", gpus_involved=(0,)),
        make_record(1, hours=2, category="GPU", gpus_involved=(0, 1)),
        make_record(2, hours=3, category="GPU", gpus_involved=(0, 1, 2)),
        make_record(3, hours=4, category="GPU"),  # unrecorded
        make_record(4, hours=5, category="CPU"),  # not GPU at all
    ]
    return make_log(records)


class TestMultiGpuInvolvement:
    def test_counts_only_recorded(self):
        result = multi_gpu_involvement(_involvement_log(), max_gpus=3)
        assert result.counts == {1: 1, 2: 1, 3: 1}
        assert result.total == 3

    def test_shares(self):
        result = multi_gpu_involvement(_involvement_log(), max_gpus=3)
        assert result.share_of(2) == pytest.approx(1 / 3)
        assert result.share_of(4) == 0.0

    def test_multi_gpu_share(self):
        result = multi_gpu_involvement(_involvement_log(), max_gpus=3)
        assert result.multi_gpu_share == pytest.approx(2 / 3)

    def test_rows_cover_one_to_max(self):
        result = multi_gpu_involvement(_involvement_log(), max_gpus=4)
        assert [row[0] for row in result.rows()] == [1, 2, 3, 4]
        assert result.rows()[3] == (4, 0, 0.0)

    def test_involvement_above_max_rejected(self):
        with pytest.raises(AnalysisError):
            multi_gpu_involvement(_involvement_log(), max_gpus=2)

    def test_invalid_max_rejected(self):
        with pytest.raises(AnalysisError):
            multi_gpu_involvement(_involvement_log(), max_gpus=0)

    def test_empty_involvement_is_empty_table(self):
        log = make_log([make_record(0, hours=1, category="CPU")])
        result = multi_gpu_involvement(log, max_gpus=3)
        assert result.total == 0
        assert result.multi_gpu_share == 0.0


class TestCalibratedInvolvement:
    """Table III on the calibrated logs (exact by construction)."""

    def test_t2_table3_counts(self, t2_log):
        result = multi_gpu_involvement(t2_log, max_gpus=3)
        assert result.counts == {1: 112, 2: 128, 3: 128}
        assert result.total == 368

    def test_t2_multi_share_near_70_percent(self, t2_log):
        result = multi_gpu_involvement(t2_log, max_gpus=3)
        assert result.multi_gpu_share == pytest.approx(0.6956, abs=0.001)

    def test_t3_table3_counts(self, t3_log):
        result = multi_gpu_involvement(t3_log, max_gpus=4)
        assert result.counts.get(1) == 75
        assert result.counts.get(2) == 4
        assert result.counts.get(3) == 2
        assert result.counts.get(4, 0) == 0
        assert result.total == 81

    def test_t3_single_share_above_92_percent(self, t3_log):
        result = multi_gpu_involvement(t3_log, max_gpus=4)
        assert result.share_of(1) > 0.92

    def test_t3_no_failure_hits_all_four(self, t3_log):
        result = multi_gpu_involvement(t3_log, max_gpus=4)
        assert result.share_of(4) == 0.0


class TestMultiGpuClustering:
    def test_gap_bookkeeping(self):
        # multi at t=10, single at t=20, multi at t=30, single at t=40.
        records = [
            make_record(0, hours=10, category="GPU", gpus_involved=(0, 1)),
            make_record(1, hours=20, category="GPU", gpus_involved=(2,)),
            make_record(2, hours=30, category="GPU", gpus_involved=(0, 2)),
            make_record(3, hours=40, category="GPU", gpus_involved=(1,)),
        ]
        result = multi_gpu_clustering(make_log(records))
        assert result.gaps_after_multi == (20.0,)
        assert result.gaps_after_single == (10.0,)
        assert result.clustering_ratio == pytest.approx(0.5)
        assert not result.is_clustered()

    def test_clustered_sequence(self):
        # Two multis back to back, then a lone single far away from a
        # later multi.
        records = [
            make_record(0, hours=10, category="GPU", gpus_involved=(0, 1)),
            make_record(1, hours=12, category="GPU", gpus_involved=(1, 2)),
            make_record(2, hours=100, category="GPU", gpus_involved=(0,)),
            make_record(3, hours=300, category="GPU", gpus_involved=(0, 1)),
        ]
        result = multi_gpu_clustering(make_log(records))
        assert result.is_clustered()
        assert result.clustering_ratio > 1.0

    def test_events_expose_magnitudes(self):
        records = [
            make_record(0, hours=5, category="GPU", gpus_involved=(0,)),
            make_record(1, hours=6, category="GPU", gpus_involved=(0, 1)),
        ]
        result = multi_gpu_clustering(make_log(records))
        assert result.events == ((5.0, 1), (6.0, 2))

    def test_no_multi_failures_gives_nan_ratio(self):
        records = [
            make_record(0, hours=5, category="GPU", gpus_involved=(0,)),
            make_record(1, hours=6, category="GPU", gpus_involved=(1,)),
        ]
        result = multi_gpu_clustering(make_log(records))
        assert math.isnan(result.clustering_ratio)
        assert not result.is_clustered()

    def test_no_involvement_rejected(self):
        log = make_log([make_record(0, hours=1, category="CPU")])
        with pytest.raises(AnalysisError):
            multi_gpu_clustering(log)

    def test_calibrated_logs_are_clustered(self, t2_log, t3_log):
        # Figure 8: multi-GPU failures beget multi-GPU failures sooner.
        for log in (t2_log, t3_log):
            result = multi_gpu_clustering(log)
            assert result.is_clustered(), (
                f"{log.machine} clustering ratio "
                f"{result.clustering_ratio:.2f}"
            )
