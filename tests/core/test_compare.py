"""Tests for the cross-generation comparison API."""

import pytest

from repro.core.compare import compare_generations
from repro.errors import AnalysisError


@pytest.fixture(scope="module")
def comparison(t2_log, t3_log):
    return compare_generations(t2_log, t3_log)


class TestCompareGenerations:
    def test_mtbf_improved_over_4x(self, comparison):
        assert comparison.mtbf_improved
        assert comparison.mtbf_ratio > 4.0

    def test_mttr_stagnated(self, comparison):
        assert comparison.mttr_stagnated
        assert comparison.mttr_ratio == pytest.approx(1.0, abs=0.1)

    def test_gpu_gain_exceeds_cpu_gain(self, comparison):
        assert comparison.gpu_mtbf_ratio > comparison.cpu_mtbf_ratio

    def test_mtbf_gain_exceeds_size_reduction(self, comparison):
        assert comparison.mtbf_gain_exceeds_size_reduction
        assert comparison.component_count_ratio == pytest.approx(
            7040 / 3240
        )

    def test_multi_gpu_contained(self, comparison):
        assert comparison.multi_gpu_contained
        assert comparison.multi_gpu_share_older > 0.6
        assert comparison.multi_gpu_share_newer < 0.08

    def test_dominant_shift(self, comparison):
        assert comparison.dominant_older == "GPU"
        assert comparison.dominant_newer == "Software"

    def test_pep_ratio(self, comparison):
        assert comparison.performance_error_proportionality_ratio > 15.0

    def test_summary_lines_readable(self, comparison):
        lines = comparison.summary_lines()
        text = "\n".join(lines)
        assert "MTBF" in text
        assert "stagnant" in text
        assert "GPU -> Software" in text

    def test_same_machine_rejected(self, t2_log):
        with pytest.raises(AnalysisError):
            compare_generations(t2_log, t2_log)

    def test_reversed_comparison_inverts_ratios(
        self, t2_log, t3_log, comparison
    ):
        reverse = compare_generations(t3_log, t2_log)
        assert reverse.mtbf_ratio == pytest.approx(
            1.0 / comparison.mtbf_ratio
        )
        assert not reverse.mtbf_improved
