"""Tests for the columnar backend: the trusted fast-path constructor
(no re-validation of already-validated records), derived-value caching,
and mask propagation of the columnar view."""

import pickle

import numpy as np
import pytest

from repro.core import taxonomy
from repro.core.columns import build_columns
from repro.core.records import FailureLog
from repro.core.taxonomy import FailureClass
from repro.errors import ValidationError
from tests.conftest import make_log, make_record


def _sample_log() -> FailureLog:
    return make_log(
        [
            make_record(0, hours=10, node_id=1, category="GPU",
                        gpus_involved=(0, 1)),
            make_record(1, hours=20, node_id=2, category="CPU"),
            make_record(2, hours=30, node_id=1, category="PBS"),
            make_record(3, hours=40, node_id=3, category="GPU",
                        gpus_involved=(2,)),
            make_record(4, hours=50, node_id=1, category="Memory"),
        ]
    )


class TestNoRevalidation:
    """Regression: filtering must not re-run validation on records
    that already passed it (the old _rebuild re-validated everything)."""

    def test_filter_does_not_reinvoke_taxonomy_validation(
        self, monkeypatch
    ):
        calls = []
        original = taxonomy.categories_for

        def counting(machine):
            calls.append(machine)
            return original(machine)

        monkeypatch.setattr(taxonomy, "categories_for", counting)
        log = _sample_log()
        assert len(calls) == 1  # the initial validating construction
        log.filter(lambda r: r.node_id == 1)
        log.by_category("GPU")
        log.gpu_failures()
        log.by_node(1)
        assert len(calls) == 1  # no filter re-validated

    def test_filter_does_not_reinvoke_post_init(self, monkeypatch):
        log = _sample_log()
        calls = []
        original = FailureLog.__post_init__

        def counting(self):
            calls.append(1)
            return original(self)

        monkeypatch.setattr(FailureLog, "__post_init__", counting)
        sub = log.filter(lambda r: r.category == "GPU")
        assert len(calls) == 0
        assert len(sub) == 2

    def test_filtered_sublog_keeps_invariants(self):
        sub = _sample_log().by_node(1)
        assert [r.record_id for r in sub] == [0, 2, 4]
        assert sub.window_start == _sample_log().window_start
        # And the sub-log still filters correctly in turn.
        assert len(sub.by_category("GPU")) == 1

    def test_validating_path_still_rejects_bad_logs(self):
        with pytest.raises(ValidationError):
            make_log([make_record(0, hours=1), make_record(0, hours=2)])


class TestDerivedCaching:
    def test_timestamps_hours_cached_and_immutable(self):
        log = _sample_log()
        first = log.timestamps_hours()
        first.append(999.0)  # caller mutation must not poison the cache
        second = log.timestamps_hours()
        assert second == [10.0, 20.0, 30.0, 40.0, 50.0]
        assert second == [log.hours_since_start(r) for r in log.records]

    def test_categories_cached_and_immutable(self):
        log = _sample_log()
        log.categories().append("Gremlins")
        assert log.categories() == sorted(
            {r.category for r in log.records}
        )

    def test_node_ids_cached_and_immutable(self):
        log = _sample_log()
        log.node_ids().append(999)
        assert log.node_ids() == [1, 2, 3]

    def test_columns_cached_once(self):
        log = _sample_log()
        assert log.columns is log.columns

    def test_columns_arrays_frozen(self):
        cols = _sample_log().columns
        with pytest.raises(ValueError):
            cols.ts_hours[0] = 0.0
        with pytest.raises(ValueError):
            cols.node_ids[0] = 99

    def test_pickle_drops_cache_and_roundtrips(self):
        log = _sample_log()
        log.columns  # populate the cache
        log.timestamps_hours()
        clone = pickle.loads(pickle.dumps(log))
        assert "_derived_cache" not in clone.__dict__
        assert clone == log
        assert clone.timestamps_hours() == log.timestamps_hours()


class TestColumnarView:
    def test_layout_matches_records(self):
        log = _sample_log()
        cols = log.columns
        assert len(cols) == len(log)
        assert cols.ts_hours.tolist() == log.timestamps_hours()
        assert cols.node_ids.tolist() == [r.node_id for r in log]
        assert cols.ttr_hours.tolist() == [r.ttr_hours for r in log]
        assert [
            cols.category_names[c] for c in cols.category_codes
        ] == [r.category for r in log]
        assert cols.gpu_counts.tolist() == [
            r.num_gpus_involved for r in log
        ]
        assert cols.slots_of(0).tolist() == [0, 1]
        assert cols.slots_of(3).tolist() == [2]
        assert cols.taxonomy_complete

    def test_class_codes_match_taxonomy(self):
        log = _sample_log()
        cols = log.columns
        for code, record in zip(cols.class_codes, log):
            assert (
                taxonomy.failure_class(log.machine, record.category)
                is (
                    FailureClass.HARDWARE,
                    FailureClass.SOFTWARE,
                    FailureClass.UNKNOWN,
                )[code]
            )

    def test_mask_slices_all_arrays(self):
        log = _sample_log()
        cols = log.columns
        keep = np.asarray([True, False, False, True, False])
        sliced = cols.mask(keep)
        assert len(sliced) == 2
        assert sliced.ts_hours.tolist() == [10.0, 40.0]
        assert sliced.slots_of(0).tolist() == [0, 1]
        assert sliced.slots_of(1).tolist() == [2]
        assert sliced.category_names is cols.category_names

    def test_mask_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            _sample_log().columns.mask(np.asarray([True]))

    def test_filtered_log_reuses_sliced_columns(self):
        log = _sample_log()
        parent_cols = log.columns  # force the build so slices propagate
        sub = log.by_node(1)
        sub_cols = sub.__dict__["_derived_cache"]["columns"]
        assert sub_cols.ts_hours.tolist() == [10.0, 30.0, 50.0]
        assert sub_cols.category_names is parent_cols.category_names

    def test_build_columns_empty_log(self):
        log = make_log([])
        cols = build_columns(log)
        assert len(cols) == 0
        assert cols.slot_values.size == 0

    def test_lenient_log_marks_taxonomy_incomplete(self):
        log = make_log(
            [make_record(0, hours=1, category="Gremlins")],
            strict_taxonomy=False,
        )
        assert not log.columns.taxonomy_complete
        # Unknown categories fall back to the record path and keep
        # raising TaxonomyError, as before the columnar backend.
        from repro.errors import TaxonomyError

        with pytest.raises(TaxonomyError):
            log.by_class(FailureClass.HARDWARE)
