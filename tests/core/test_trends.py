"""Tests for the reliability-trend analyses."""

import math

import numpy as np
import pytest

from repro.core.trends import (
    crow_amsaa_fit,
    ttr_survival,
    windowed_mtbf,
    windowed_mttr,
)
from repro.errors import AnalysisError
from tests.conftest import make_log, make_record


def _log_with_times(hours, ttr=10.0, span=1000.0):
    records = [
        make_record(i, hours=h, ttr_hours=ttr)
        for i, h in enumerate(hours)
    ]
    return make_log(records, span_hours=span)


class TestWindowedSeries:
    def test_mtbf_per_window(self):
        log = _log_with_times([50, 150, 250, 350], span=400.0)
        points = windowed_mtbf(log, window_hours=200.0)
        assert len(points) == 2
        assert points[0].num_failures == 2
        assert points[0].value_hours == pytest.approx(100.0)

    def test_empty_window_reports_lower_bound(self):
        log = _log_with_times([50.0], span=400.0)
        points = windowed_mtbf(log, window_hours=200.0)
        assert points[1].num_failures == 0
        assert points[1].value_hours == pytest.approx(200.0)

    def test_mttr_per_window(self):
        records = [
            make_record(0, hours=50, ttr_hours=10.0),
            make_record(1, hours=60, ttr_hours=30.0),
            make_record(2, hours=250, ttr_hours=100.0),
        ]
        log = make_log(records, span_hours=400.0)
        points = windowed_mttr(log, window_hours=200.0)
        assert points[0].value_hours == pytest.approx(20.0)
        assert points[1].value_hours == pytest.approx(100.0)

    def test_empty_mttr_window_is_nan(self):
        log = _log_with_times([50.0], span=400.0)
        points = windowed_mttr(log, window_hours=200.0)
        assert math.isnan(points[1].value_hours)

    def test_center_hours(self):
        log = _log_with_times([50.0], span=400.0)
        points = windowed_mtbf(log, window_hours=200.0)
        assert points[0].center_hours == pytest.approx(100.0)

    def test_window_counts_conserve_failures(self, t2_log):
        points = windowed_mtbf(t2_log, window_hours=720.0)
        assert sum(p.num_failures for p in points) == len(t2_log)

    def test_invalid_windows_rejected(self):
        log = _log_with_times([50.0], span=400.0)
        with pytest.raises(AnalysisError):
            windowed_mtbf(log, window_hours=0.0)
        with pytest.raises(AnalysisError):
            windowed_mtbf(log, window_hours=4000.0)
        with pytest.raises(AnalysisError):
            windowed_mtbf(make_log([]), window_hours=100.0)


class TestCrowAmsaa:
    def test_stationary_process_beta_near_one(self):
        rng = np.random.default_rng(0)
        times = np.sort(rng.uniform(0, 1000.0, size=400))
        log = _log_with_times(times.tolist(), span=1000.0)
        fit = crow_amsaa_fit(log)
        assert fit.beta == pytest.approx(1.0, abs=0.12)

    def test_improving_process_beta_below_one(self):
        # Failure times concentrated early (burn-in): t ~ u^2 scaled.
        rng = np.random.default_rng(1)
        times = np.sort(1000.0 * rng.uniform(0, 1, size=400) ** 2)
        log = _log_with_times(times.tolist(), span=1000.0)
        fit = crow_amsaa_fit(log)
        assert fit.beta < 0.8
        assert fit.is_improving

    def test_deteriorating_process_beta_above_one(self):
        rng = np.random.default_rng(2)
        times = np.sort(1000.0 * rng.uniform(0, 1, size=400) ** 0.5)
        log = _log_with_times(times.tolist(), span=1000.0)
        fit = crow_amsaa_fit(log)
        assert fit.beta > 1.3
        assert not fit.is_improving

    def test_expected_failures_matches_count_at_t(self):
        rng = np.random.default_rng(3)
        times = np.sort(rng.uniform(0, 1000.0, size=300))
        log = _log_with_times(times.tolist(), span=1000.0)
        fit = crow_amsaa_fit(log)
        assert fit.expected_failures(1000.0) == pytest.approx(300, rel=0.01)

    def test_intensity_positive(self):
        log = _log_with_times([10, 20, 30, 40], span=100.0)
        fit = crow_amsaa_fit(log)
        assert fit.intensity_at(50.0) > 0
        with pytest.raises(AnalysisError):
            fit.intensity_at(0.0)

    def test_too_few_failures_rejected(self):
        with pytest.raises(AnalysisError):
            crow_amsaa_fit(_log_with_times([10, 20], span=100.0))

    def test_calibrated_logs_near_stationary(self, t2_log, t3_log):
        # The generator uses a (warped) renewal process, so no strong
        # growth/deterioration trend should appear.
        for log in (t2_log, t3_log):
            fit = crow_amsaa_fit(log)
            assert 0.8 < fit.beta < 1.25, log.machine


class TestTtrSurvival:
    def test_fully_observed_matches_km(self):
        records = [
            make_record(0, hours=10, ttr_hours=5.0),
            make_record(1, hours=20, ttr_hours=15.0),
        ]
        log = make_log(records, span_hours=1000.0)
        km = ttr_survival(log)
        assert km.num_events == 2
        assert km.survival_at(5.0) == pytest.approx(0.5)

    def test_repair_crossing_window_end_censored(self):
        records = [
            make_record(0, hours=990, ttr_hours=100.0),  # open at end
            make_record(1, hours=10, ttr_hours=5.0),
        ]
        log = make_log(records, span_hours=1000.0)
        km = ttr_survival(log)
        assert km.n == 2
        assert km.num_events == 1

    def test_censoring_keeps_curve_higher(self, t2_log):
        from repro.core.metrics import ttr_series_hours
        from repro.stats.survival import KaplanMeier

        naive = KaplanMeier(ttr_series_hours(t2_log))
        censored = ttr_survival(t2_log)
        # With right-censoring the estimate at large t is >= the naive
        # fully-observed estimate.
        assert (censored.survival_at(200.0)
                >= naive.survival_at(200.0) - 1e-12)

    def test_median_survival_near_median_ttr(self, t3_log):
        km = ttr_survival(t3_log)
        from repro.core.recovery import ttr_distribution

        median = ttr_distribution(t3_log).quantile(0.5)
        assert km.median_survival() == pytest.approx(median, rel=0.10)

    def test_empty_log_rejected(self):
        with pytest.raises(AnalysisError):
            ttr_survival(make_log([]))
