"""Tests for RQ4 — TBF distributions and component-class MTBF."""

import pytest

from repro.core.temporal import (
    component_class_mtbf,
    tbf_by_category,
    tbf_distribution,
)
from repro.errors import AnalysisError
from tests.conftest import make_log, make_record


def _spaced_log(gaps, category="GPU"):
    records = []
    clock = 1.0
    for index, gap in enumerate([0.0] + list(gaps)):
        clock += gap
        records.append(make_record(index, hours=clock, category=category))
    return make_log(records)


class TestTbfDistribution:
    def test_mtbf_and_quantiles(self):
        log = _spaced_log([10.0] * 10)
        dist = tbf_distribution(log)
        assert dist.mtbf_hours == pytest.approx(10.0)
        assert dist.p75_hours() == pytest.approx(10.0)
        assert dist.fraction_within(10.0) == pytest.approx(1.0)
        assert dist.fraction_within(9.9) == 0.0

    def test_single_failure_rejected(self):
        with pytest.raises(AnalysisError):
            tbf_distribution(make_log([make_record(0, hours=1)]))

    def test_t2_mtbf_near_15_hours(self, t2_log):
        dist = tbf_distribution(t2_log)
        assert dist.mtbf_hours == pytest.approx(15.3, rel=0.05)

    def test_t3_mtbf_above_70_hours(self, t3_log):
        dist = tbf_distribution(t3_log)
        assert dist.mtbf_hours > 70.0

    def test_mtbf_improvement_over_4x(self, t2_log, t3_log):
        t2 = tbf_distribution(t2_log).mtbf_hours
        t3 = tbf_distribution(t3_log).mtbf_hours
        assert t3 / t2 > 4.0

    def test_t2_p75_near_20_hours(self, t2_log):
        assert tbf_distribution(t2_log).p75_hours() == pytest.approx(
            20.0, rel=0.15
        )

    def test_t3_p75_near_93_hours(self, t3_log):
        assert tbf_distribution(t3_log).p75_hours() == pytest.approx(
            93.0, rel=0.15
        )

    def test_t3_longer_tail_in_absolute_hours(self, t2_log, t3_log):
        t2 = tbf_distribution(t2_log)
        t3 = tbf_distribution(t3_log)
        # At any fixed gap length, Tsubame-2's CDF sits higher
        # ("steeper curve"); Tsubame-3 has the longer tail.
        for hours in (10.0, 20.0, 50.0, 100.0):
            assert t2.fraction_within(hours) > t3.fraction_within(hours)


class TestTbfByCategory:
    def test_sorted_by_mean(self):
        records = (
            [make_record(i, hours=1 + i, category="GPU") for i in range(5)]
            + [make_record(10 + i, hours=1 + 100 * i, category="CPU")
               for i in range(5)]
        )
        entries = tbf_by_category(make_log(records), min_failures=3)
        assert [e.category for e in entries] == ["GPU", "CPU"]
        assert entries[0].mean_hours < entries[1].mean_hours

    def test_rare_categories_skipped(self):
        records = [
            make_record(0, hours=1, category="GPU"),
            make_record(1, hours=2, category="GPU"),
            make_record(2, hours=3, category="GPU"),
            make_record(3, hours=4, category="Rack"),
        ]
        entries = tbf_by_category(make_log(records), min_failures=3)
        assert [e.category for e in entries] == ["GPU"]

    def test_min_failures_below_two_rejected(self):
        with pytest.raises(AnalysisError):
            tbf_by_category(make_log([make_record(0, hours=1)]),
                            min_failures=1)

    def test_no_qualifying_category_rejected(self):
        log = make_log([make_record(0, hours=1), make_record(1, hours=2,
                                                             node_id=1,
                                                             category="CPU")])
        with pytest.raises(AnalysisError):
            tbf_by_category(log, min_failures=5)

    def test_frequent_categories_have_lowest_median(self, t2_log):
        entries = tbf_by_category(t2_log)
        by_name = {e.category: e for e in entries}
        # GPU failures are the most frequent => smallest gaps.
        assert by_name["GPU"].median_hours == min(
            e.median_hours for e in entries
        )

    def test_memory_and_cpu_have_higher_median_than_gpu(
        self, t2_log, t3_log
    ):
        for log in (t2_log, t3_log):
            by_name = {e.category: e for e in tbf_by_category(log)}
            for name in ("Memory", "CPU"):
                if name in by_name:
                    assert (by_name[name].median_hours
                            > by_name["GPU"].median_hours)

    def test_spread_is_iqr(self, t2_log):
        entry = tbf_by_category(t2_log)[0]
        assert entry.spread_hours == pytest.approx(
            entry.summary.q3 - entry.summary.q1
        )


class TestComponentClassMtbf:
    def test_values_from_span(self):
        records = (
            [make_record(i, hours=1 + i, category="GPU") for i in range(10)]
            + [make_record(20, hours=50, category="CPU")]
        )
        log = make_log(records, span_hours=1000.0)
        result = component_class_mtbf(log)
        assert result.gpu_mtbf_hours == pytest.approx(100.0)
        assert result.cpu_mtbf_hours == pytest.approx(1000.0)
        assert result.gpu_failures == 10
        assert result.cpu_failures == 1

    def test_missing_gpu_failures_rejected(self):
        log = make_log([make_record(0, hours=1, category="CPU")])
        with pytest.raises(AnalysisError):
            component_class_mtbf(log)

    def test_missing_cpu_failures_rejected(self):
        log = make_log([make_record(0, hours=1, category="GPU")])
        with pytest.raises(AnalysisError):
            component_class_mtbf(log)

    def test_gpu_reliability_improved_across_generations(
        self, t2_log, t3_log
    ):
        t2 = component_class_mtbf(t2_log)
        t3 = component_class_mtbf(t3_log)
        improvement = t3.gpu_improvement_over(t2)
        # The paper reports ~10x with its estimator; the span
        # estimator gives ~7.5x.  Either way the improvement far
        # exceeds the 2x drop in GPU count.
        assert improvement > 5.0

    def test_cpu_reliability_improved_across_generations(
        self, t2_log, t3_log
    ):
        t2 = component_class_mtbf(t2_log)
        t3 = component_class_mtbf(t3_log)
        assert 1.5 < t3.cpu_improvement_over(t2) < 5.0

    def test_improvement_against_zero_rejected(self, t2_log):
        from dataclasses import replace

        result = component_class_mtbf(t2_log)
        broken = replace(result, gpu_mtbf_hours=0.0, cpu_mtbf_hours=0.0)
        with pytest.raises(AnalysisError):
            result.gpu_improvement_over(broken)
        with pytest.raises(AnalysisError):
            result.cpu_improvement_over(broken)
