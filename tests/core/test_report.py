"""Tests for the text report renderers."""

import pytest

from repro.core import report
from repro.errors import AnalysisError


class TestIndividualReports:
    def test_table1_lists_both_machines(self):
        text = report.report_table1()
        assert "Tsubame-2" in text
        assert "Tsubame-3" in text
        assert "NVIDIA Tesla K20X" in text

    def test_table2_lists_categories(self):
        text = report.report_table2()
        assert "Omni-Path" in text
        assert "PBS" in text

    def test_fig2_shows_shares(self, t2_log):
        text = report.report_fig2(t2_log)
        assert "44.37%" in text
        assert "GPU" in text

    def test_fig3_top16(self, t3_log):
        text = report.report_fig3(t3_log)
        assert "gpu_driver" in text
        assert "n=171" in text

    def test_fig4_node_counts(self, t3_log):
        text = report.report_fig4(t3_log)
        assert "1 failure(s)" in text
        assert "affected nodes" in text

    def test_fig5_gpu_slots(self, t2_log):
        text = report.report_fig5(t2_log)
        assert "GPU 0" in text
        assert "GPU 2" in text

    def test_table3_rows(self, t2_log):
        text = report.report_table3(t2_log)
        assert "368" in text
        assert "Total" in text

    def test_fig6_mtbf_summary(self, t2_log, t3_log):
        text = report.report_fig6([t2_log, t3_log])
        assert "MTBF" in text
        assert "tsubame2" in text
        assert "tsubame3" in text

    def test_fig7_sorted_boxplots(self, t2_log):
        text = report.report_fig7(t2_log)
        assert "sorted by mean" in text
        assert "GPU" in text

    def test_fig8_timeline_and_ratio(self, t2_log):
        text = report.report_fig8(t2_log)
        assert "clustering ratio" in text
        assert "|" in text

    def test_fig9_mttr_summary(self, t2_log, t3_log):
        text = report.report_fig9([t2_log, t3_log])
        assert "MTTR 55.0 h" in text

    def test_fig10_by_type(self, t3_log):
        text = report.report_fig10(t3_log)
        assert "Power-Board" in text

    def test_fig11_by_month(self, t2_log):
        text = report.report_fig11(t2_log)
        assert "month  1" in text or "month 1" in text

    def test_fig12_monthly_counts(self, t3_log):
        text = report.report_fig12(t3_log)
        assert "Jan" in text
        assert "Dec" in text
        assert "total 338" in text

    def test_component_mtbf_table(self, t2_log, t3_log):
        text = report.report_component_mtbf([t2_log, t3_log])
        assert "GPU MTBF" in text
        assert "FLOP per failure-free period" in text

    def test_table1_needs_machines(self):
        with pytest.raises(AnalysisError):
            report.report_table1([])


class TestFullReport:
    def test_contains_every_exhibit(self, t2_log, t3_log):
        text = report.full_report(t2_log, t3_log)
        for marker in (
            "Table I.", "Table II.", "Fig 2 (tsubame2)",
            "Fig 2 (tsubame3)", "Fig 3 (tsubame3)", "Fig 4 (tsubame2)",
            "Fig 5 (tsubame3)", "Table III (tsubame2)", "Fig 6.",
            "Fig 7 (tsubame2)", "Fig 8 (tsubame3)", "Fig 9.",
            "Fig 10 (tsubame3)", "Fig 11 (tsubame2)", "Fig 12 (tsubame3)",
        ):
            assert marker in text, marker

    def test_report_is_plain_ascii(self, t2_log, t3_log):
        text = report.full_report(t2_log, t3_log)
        assert text.isascii()
