"""Tests for the failure-category taxonomy."""

import pytest

from repro.core import taxonomy
from repro.core.taxonomy import FailureClass
from repro.errors import TaxonomyError


class TestCategoryTables:
    def test_tsubame2_has_17_categories(self):
        assert len(taxonomy.TSUBAME2_CATEGORIES) == 17

    def test_tsubame3_has_16_categories(self):
        assert len(taxonomy.TSUBAME3_CATEGORIES) == 16

    def test_table2_tsubame2_names(self):
        names = {c.name for c in taxonomy.TSUBAME2_CATEGORIES}
        assert names == {
            "Boot", "CPU", "Disk", "Down", "FAN", "GPU", "IB", "Memory",
            "Network", "OtherHW", "OtherSW", "PBS", "PSU", "Rack", "SSD",
            "System Board", "VM",
        }

    def test_table2_tsubame3_names(self):
        names = {c.name for c in taxonomy.TSUBAME3_CATEGORIES}
        assert names == {
            "CPU", "CRC", "Disk", "GPU", "GPUDriver", "IP",
            "Led Front Panel", "Lustre", "Memory", "Omni-Path",
            "Power-Board", "Ribbon Cable", "Software", "SXM2_Cable",
            "SXM2-Board", "Unknown",
        }

    def test_category_names_unique_per_machine(self):
        for cats in (taxonomy.TSUBAME2_CATEGORIES,
                     taxonomy.TSUBAME3_CATEGORIES):
            names = [c.name for c in cats]
            assert len(names) == len(set(names))


class TestClassification:
    def test_gpu_is_hardware_on_both(self):
        for machine in ("tsubame2", "tsubame3"):
            assert (taxonomy.failure_class(machine, "GPU")
                    is FailureClass.HARDWARE)

    def test_software_classes_tsubame2(self):
        for name in ("Boot", "Down", "OtherSW", "PBS", "VM"):
            assert (taxonomy.failure_class("tsubame2", name)
                    is FailureClass.SOFTWARE)

    def test_software_classes_tsubame3(self):
        for name in ("Software", "GPUDriver", "Lustre"):
            assert (taxonomy.failure_class("tsubame3", name)
                    is FailureClass.SOFTWARE)

    def test_unknown_class_tsubame3(self):
        assert (taxonomy.failure_class("tsubame3", "Unknown")
                is FailureClass.UNKNOWN)

    def test_gpu_related_flags(self):
        assert taxonomy.is_gpu_category("tsubame2", "GPU")
        assert not taxonomy.is_gpu_category("tsubame2", "CPU")
        assert taxonomy.is_gpu_category("tsubame3", "GPUDriver")
        assert taxonomy.is_gpu_category("tsubame3", "SXM2-Board")
        assert not taxonomy.is_gpu_category("tsubame3", "Lustre")


class TestLookups:
    def test_categories_for_unknown_machine(self):
        with pytest.raises(TaxonomyError):
            taxonomy.categories_for("tsubame9")

    def test_category_unknown_name(self):
        with pytest.raises(TaxonomyError):
            taxonomy.category("tsubame2", "Omni-Path")

    def test_category_unknown_machine(self):
        with pytest.raises(TaxonomyError):
            taxonomy.category("frontier", "GPU")

    def test_category_lookup_returns_metadata(self):
        cat = taxonomy.category("tsubame3", "Power-Board")
        assert cat.failure_class is FailureClass.HARDWARE
        assert cat.description


class TestRootLoci:
    def test_sixteen_loci(self):
        assert len(taxonomy.root_loci_names()) == 16

    def test_paper_named_loci_present(self):
        loci = set(taxonomy.root_loci_names())
        assert "gpu_driver" in loci
        assert "unknown" in loci
        assert "kernel_panic" in loci
        assert "lustre_bug" in loci

    def test_loci_unique(self):
        loci = taxonomy.root_loci_names()
        assert len(loci) == len(set(loci))
