"""Tests for the monthly (seasonal) analyses — Figures 11 and 12."""

from datetime import datetime, timedelta

import pytest

from repro.core.records import FailureLog, FailureRecord
from repro.core.seasonal import (
    monthly_failure_counts,
    monthly_ttr,
    ttr_density_correlation,
)
from repro.errors import AnalysisError
from tests.conftest import make_log


def _record_in_month(record_id, month, ttr=10.0, day=5):
    return FailureRecord(
        record_id=record_id,
        timestamp=datetime(2020, month, day),
        node_id=0,
        category="GPU",
        ttr_hours=ttr,
    )


def _year_log(records):
    return FailureLog(
        machine="tsubame2",
        records=tuple(records),
        window_start=datetime(2020, 1, 1),
        window_end=datetime(2021, 1, 1),
    )


class TestMonthlyTtr:
    def test_summaries_per_month(self):
        log = _year_log(
            [
                _record_in_month(0, 1, ttr=10.0),
                _record_in_month(1, 1, ttr=30.0, day=9),
                _record_in_month(2, 6, ttr=5.0),
            ]
        )
        result = monthly_ttr(log)
        assert result.summaries[1].mean == pytest.approx(20.0)
        assert result.summaries[6].mean == pytest.approx(5.0)
        assert 2 not in result.summaries

    def test_mean_for_missing_month_is_nan(self):
        log = _year_log([_record_in_month(0, 1)])
        import math

        assert math.isnan(monthly_ttr(log).mean_for(3))

    def test_means_has_12_entries(self):
        log = _year_log([_record_in_month(0, 1)])
        assert len(monthly_ttr(log).means()) == 12

    def test_half_year_means(self):
        log = _year_log(
            [
                _record_in_month(0, 2, ttr=10.0),
                _record_in_month(1, 9, ttr=50.0),
            ]
        )
        first, second = monthly_ttr(log).half_year_means()
        assert first == pytest.approx(10.0)
        assert second == pytest.approx(50.0)

    def test_empty_log_rejected(self):
        with pytest.raises(AnalysisError):
            monthly_ttr(make_log([]))

    def test_t2_second_half_recovers_slower(self, t2_log):
        # Figure 11a: Tsubame-2 TTR runs higher Jul-Dec.
        first, second = monthly_ttr(t2_log).half_year_means()
        assert second > first

    def test_t3_no_half_year_trend(self, t3_log):
        first, second = monthly_ttr(t3_log).half_year_means()
        assert abs(second - first) / first < 0.35


class TestMonthlyFailureCounts:
    def test_counts(self):
        log = _year_log(
            [
                _record_in_month(0, 3),
                _record_in_month(1, 3, day=9),
                _record_in_month(2, 12),
            ]
        )
        result = monthly_failure_counts(log)
        assert result.count_for(3) == 2
        assert result.count_for(12) == 1
        assert result.count_for(7) == 0
        assert result.total == 3

    def test_series_and_rows(self):
        log = _year_log([_record_in_month(0, 5)])
        result = monthly_failure_counts(log)
        assert len(result.series()) == 12
        assert result.rows()[4] == ("May", 1)

    def test_peak_month(self):
        log = _year_log(
            [
                _record_in_month(0, 2),
                _record_in_month(1, 8),
                _record_in_month(2, 8, day=9),
            ]
        )
        assert monthly_failure_counts(log).peak_month() == 8

    def test_empty_log_rejected(self):
        with pytest.raises(AnalysisError):
            monthly_failure_counts(make_log([]))

    def test_calibrated_counts_sum_to_log_size(self, t2_log, t3_log):
        for log in (t2_log, t3_log):
            assert monthly_failure_counts(log).total == len(log)

    def test_calibrated_counts_non_uniform(self, t2_log):
        # Figure 12 shows visible month-to-month variation.
        series = monthly_failure_counts(t2_log).series()
        assert max(series) > 1.3 * min(series)


class TestSeasonalCorrelation:
    def test_needs_three_months(self):
        log = _year_log([_record_in_month(0, 1), _record_in_month(1, 2)])
        with pytest.raises(AnalysisError):
            ttr_density_correlation(log)

    def test_detects_engineered_correlation(self):
        # Months with more failures get much longer recoveries.
        records = []
        rid = 0
        for month, count in ((1, 1), (4, 3), (8, 6)):
            for index in range(count):
                records.append(
                    _record_in_month(
                        rid, month, ttr=10.0 * count, day=2 + index
                    )
                )
                rid += 1
        result = ttr_density_correlation(_year_log(records))
        assert result.pearson.coefficient > 0.9

    def test_no_density_correlation_on_calibrated_logs(
        self, t2_log, t3_log
    ):
        # The paper's RQ5 conclusion: monthly TTR does not track
        # monthly failure density.
        for log in (t2_log, t3_log):
            result = ttr_density_correlation(log)
            assert result.supports_no_correlation, (
                f"{log.machine}: r={result.pearson.coefficient:.2f} "
                f"p={result.pearson.pvalue:.3f}"
            )

    def test_months_used_counted(self, t2_log):
        result = ttr_density_correlation(t2_log)
        assert 3 <= result.months_used <= 12


class TestWeekdayProfile:
    def test_counts_by_weekday(self):
        from repro.core.seasonal import weekday_profile

        # 2020-01-06 is a Monday.
        log = _year_log(
            [
                _record_in_month(0, 1, day=6),   # Monday
                _record_in_month(1, 1, day=7),   # Tuesday
                _record_in_month(2, 1, day=11),  # Saturday
            ]
        )
        profile = weekday_profile(log)
        assert profile.counts[0] == 1
        assert profile.counts[1] == 1
        assert profile.counts[5] == 1
        assert profile.total == 3
        assert profile.weekend_share() == pytest.approx(1 / 3)

    def test_share_bounds_validated(self):
        from repro.core.seasonal import weekday_profile

        profile = weekday_profile(_year_log([_record_in_month(0, 1)]))
        with pytest.raises(AnalysisError):
            profile.share_of(7)

    def test_empty_log_rejected(self):
        from repro.core.seasonal import weekday_profile

        with pytest.raises(AnalysisError):
            weekday_profile(make_log([]))

    def test_generated_logs_roughly_flat(self, t2_log):
        from repro.core.seasonal import weekday_profile

        profile = weekday_profile(t2_log)
        # No weekday structure is encoded in the generator.
        assert profile.max_min_ratio() < 1.6
        assert profile.weekend_share() == pytest.approx(2 / 7, abs=0.08)


class TestHourOfDayProfile:
    def test_counts_by_hour(self):
        from datetime import datetime

        from repro.core.records import FailureRecord
        from repro.core.seasonal import hour_of_day_profile

        records = [
            FailureRecord(record_id=i,
                          timestamp=datetime(2020, 3, 5, hour),
                          node_id=0, category="GPU", ttr_hours=1.0)
            for i, hour in enumerate((2, 2, 14))
        ]
        log = _year_log(records)
        profile = hour_of_day_profile(log)
        assert profile.counts[2] == 2
        assert profile.counts[14] == 1
        assert profile.share_of(2) == pytest.approx(2 / 3)

    def test_business_hours_share(self):
        from datetime import datetime

        from repro.core.records import FailureRecord
        from repro.core.seasonal import hour_of_day_profile

        records = [
            FailureRecord(record_id=i,
                          timestamp=datetime(2020, 3, 5, hour),
                          node_id=0, category="GPU", ttr_hours=1.0)
            for i, hour in enumerate((10, 11, 22))
        ]
        profile = hour_of_day_profile(_year_log(records))
        assert profile.business_hours_share() == pytest.approx(2 / 3)
        with pytest.raises(AnalysisError):
            profile.business_hours_share(start=10, end=10)

    def test_invalid_hour_rejected(self):
        from repro.core.seasonal import hour_of_day_profile

        profile = hour_of_day_profile(
            _year_log([_record_in_month(0, 1)])
        )
        with pytest.raises(AnalysisError):
            profile.share_of(24)

    def test_empty_log_rejected(self):
        from repro.core.seasonal import hour_of_day_profile

        with pytest.raises(AnalysisError):
            hour_of_day_profile(make_log([]))

    def test_generated_logs_roughly_flat(self, t3_log):
        from repro.core.seasonal import hour_of_day_profile

        profile = hour_of_day_profile(t3_log)
        assert profile.business_hours_share() == pytest.approx(
            9 / 24, abs=0.12
        )
