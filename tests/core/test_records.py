"""Tests for the failure-record data model."""

from datetime import datetime, timedelta

import pytest

from repro.core.records import FailureLog, FailureRecord
from repro.core.taxonomy import FailureClass
from repro.errors import ValidationError
from tests.conftest import T0, make_log, make_record


class TestFailureRecordValidation:
    def test_valid_record_constructs(self):
        record = make_record()
        assert record.category == "GPU"
        assert record.ttr_hours == 10.0

    def test_negative_record_id_rejected(self):
        with pytest.raises(ValidationError):
            make_record(record_id=-1)

    def test_negative_node_id_rejected(self):
        with pytest.raises(ValidationError):
            make_record(node_id=-5)

    def test_empty_category_rejected(self):
        with pytest.raises(ValidationError):
            make_record(category="")

    def test_negative_ttr_rejected(self):
        with pytest.raises(ValidationError):
            make_record(ttr_hours=-0.1)

    def test_nan_ttr_rejected(self):
        with pytest.raises(ValidationError):
            make_record(ttr_hours=float("nan"))

    def test_zero_ttr_allowed(self):
        assert make_record(ttr_hours=0.0).ttr_hours == 0.0

    def test_negative_gpu_slot_rejected(self):
        with pytest.raises(ValidationError):
            make_record(gpus_involved=(0, -1))

    def test_duplicate_gpu_slots_rejected(self):
        with pytest.raises(ValidationError):
            make_record(gpus_involved=(1, 1))

    def test_unsorted_gpu_slots_normalised(self):
        record = make_record(gpus_involved=(2, 0, 1))
        assert record.gpus_involved == (0, 1, 2)

    def test_num_gpus_involved(self):
        assert make_record(gpus_involved=(0, 2)).num_gpus_involved == 2
        assert make_record().num_gpus_involved == 0

    def test_recovered_at(self):
        record = make_record(hours=0.0, ttr_hours=12.0)
        assert record.recovered_at == T0 + timedelta(hours=12)

    def test_with_ttr_returns_copy(self):
        record = make_record(ttr_hours=10.0)
        updated = record.with_ttr(20.0)
        assert updated.ttr_hours == 20.0
        assert record.ttr_hours == 10.0
        assert updated.record_id == record.record_id

    def test_records_are_hashable_and_frozen(self):
        record = make_record()
        assert hash(record) == hash(make_record())
        with pytest.raises(AttributeError):
            record.node_id = 3


class TestFailureLogConstruction:
    def test_records_sorted_by_timestamp(self):
        log = make_log([make_record(0, hours=50), make_record(1, hours=10)])
        assert [r.record_id for r in log] == [1, 0]

    def test_timestamp_ties_break_by_record_id(self):
        log = make_log([make_record(5, hours=10), make_record(2, hours=10)])
        assert [r.record_id for r in log] == [2, 5]

    def test_duplicate_record_ids_rejected(self):
        with pytest.raises(ValidationError):
            make_log([make_record(0, hours=1), make_record(0, hours=2)])

    def test_record_outside_window_rejected(self):
        with pytest.raises(ValidationError):
            make_log([make_record(0, hours=2000)], span_hours=1000)

    def test_degenerate_window_rejected(self):
        with pytest.raises(ValidationError):
            FailureLog(
                machine="tsubame2",
                records=(),
                window_start=T0,
                window_end=T0,
            )

    def test_unknown_category_rejected_when_strict(self):
        with pytest.raises(ValidationError):
            make_log([make_record(category="Gremlins")])

    def test_unknown_category_allowed_when_lenient(self):
        log = make_log(
            [make_record(category="Gremlins")], strict_taxonomy=False
        )
        assert log[0].category == "Gremlins"

    def test_t3_category_rejected_on_t2(self):
        with pytest.raises(ValidationError):
            make_log([make_record(category="Omni-Path")], machine="tsubame2")

    def test_empty_log_is_valid_with_window(self):
        log = make_log([])
        assert len(log) == 0

    def test_from_records_infers_padded_window(self):
        records = [make_record(0, hours=5), make_record(1, hours=25)]
        log = FailureLog.from_records("tsubame2", records)
        assert log.window_start == T0 + timedelta(hours=4)
        assert log.window_end == T0 + timedelta(hours=26)

    def test_from_records_empty_without_window_rejected(self):
        with pytest.raises(ValidationError):
            FailureLog.from_records("tsubame2", [])

    def test_from_records_explicit_window(self):
        log = FailureLog.from_records(
            "tsubame2",
            [make_record(0, hours=5)],
            window_start=T0,
            window_end=T0 + timedelta(hours=10),
        )
        assert log.span_hours == pytest.approx(10.0)


class TestFailureLogQueries:
    def _log(self) -> FailureLog:
        return make_log(
            [
                make_record(0, hours=10, node_id=1, category="GPU",
                            gpus_involved=(0,)),
                make_record(1, hours=20, node_id=2, category="CPU"),
                make_record(2, hours=30, node_id=1, category="PBS"),
                make_record(3, hours=40, node_id=3, category="GPU"),
            ]
        )

    def test_len_iter_getitem(self):
        log = self._log()
        assert len(log) == 4
        assert [r.record_id for r in log] == [0, 1, 2, 3]
        assert log[2].category == "PBS"

    def test_span_hours(self):
        assert self._log().span_hours == pytest.approx(1000.0)

    def test_hours_since_start(self):
        log = self._log()
        assert log.hours_since_start(log[1]) == pytest.approx(20.0)

    def test_timestamps_hours_sorted(self):
        assert self._log().timestamps_hours() == [10.0, 20.0, 30.0, 40.0]

    def test_categories_sorted_unique(self):
        assert self._log().categories() == ["CPU", "GPU", "PBS"]

    def test_node_ids(self):
        assert self._log().node_ids() == [1, 2, 3]

    def test_by_category(self):
        gpu = self._log().by_category("GPU")
        assert len(gpu) == 2
        assert all(r.category == "GPU" for r in gpu)

    def test_by_category_multiple_names(self):
        sub = self._log().by_category("GPU", "CPU")
        assert len(sub) == 3

    def test_by_class_hardware(self):
        hardware = self._log().by_class(FailureClass.HARDWARE)
        assert {r.category for r in hardware} == {"GPU", "CPU"}

    def test_by_class_software(self):
        software = self._log().by_class(FailureClass.SOFTWARE)
        assert {r.category for r in software} == {"PBS"}

    def test_gpu_failures_includes_category_and_involvement(self):
        log = self._log()
        gpu = log.gpu_failures()
        # Both GPU-category records qualify, involvement or not.
        assert {r.record_id for r in gpu} == {0, 3}

    def test_by_node(self):
        node1 = self._log().by_node(1)
        assert {r.record_id for r in node1} == {0, 2}

    def test_between_half_open(self):
        log = self._log()
        sub = log.between(
            T0 + timedelta(hours=20), T0 + timedelta(hours=40)
        )
        assert {r.record_id for r in sub} == {1, 2}

    def test_between_invalid_range_rejected(self):
        log = self._log()
        with pytest.raises(ValidationError):
            log.between(T0 + timedelta(hours=5), T0)

    def test_filter_preserves_window(self):
        log = self._log()
        sub = log.filter(lambda r: r.node_id == 1)
        assert sub.window_start == log.window_start
        assert sub.window_end == log.window_end

    def test_filter_returns_new_log(self):
        log = self._log()
        sub = log.filter(lambda r: False)
        assert len(sub) == 0
        assert len(log) == 4
