"""Parity suite: every vectorized kernel against its retained
pure-Python ``_reference_*`` implementation.

Property-based over randomly built logs (hypothesis) plus the
calibrated Tsubame logs, asserting results equal within 1e-9 so the
columnar backend can never silently drift from the record-path
semantics it replaced.
"""

from datetime import timedelta

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import metrics, multigpu, seasonal, spatial, temporal
from repro.core.records import FailureLog, FailureRecord
from repro.core.taxonomy import TSUBAME2_CATEGORIES, FailureClass
from repro.errors import AnalysisError
from repro.machines.racks import rack_layout_for
from tests.conftest import T0, make_log

TOL = 1e-9

_CATEGORY_NAMES = tuple(cat.name for cat in TSUBAME2_CATEGORIES)

_SPAN_HOURS = 2000.0


@st.composite
def failure_logs(draw, min_size=2, max_size=60):
    """Random but valid Tsubame-2 logs."""
    n = draw(st.integers(min_value=min_size, max_value=max_size))
    records = []
    for record_id in range(n):
        hours = draw(
            st.floats(
                min_value=0.0,
                max_value=_SPAN_HOURS,
                allow_nan=False,
                allow_infinity=False,
            )
        )
        category = draw(st.sampled_from(_CATEGORY_NAMES))
        slots = ()
        if category == "GPU" and draw(st.booleans()):
            slots = tuple(
                sorted(
                    draw(
                        st.sets(
                            st.integers(min_value=0, max_value=2),
                            min_size=1,
                            max_size=3,
                        )
                    )
                )
            )
        records.append(
            FailureRecord(
                record_id=record_id,
                timestamp=T0 + timedelta(hours=hours),
                node_id=draw(st.integers(min_value=0, max_value=12)),
                category=category,
                ttr_hours=draw(
                    st.floats(
                        min_value=0.0,
                        max_value=500.0,
                        allow_nan=False,
                        allow_infinity=False,
                    )
                ),
                gpus_involved=slots,
            )
        )
    return make_log(records, span_hours=_SPAN_HOURS)


def _assert_close_lists(actual, expected):
    assert len(actual) == len(expected)
    for a, e in zip(actual, expected):
        assert a == pytest.approx(e, abs=TOL)


class TestMetricsParity:
    @settings(max_examples=40, deadline=None)
    @given(log=failure_logs())
    def test_tbf_series(self, log):
        _assert_close_lists(
            metrics.tbf_series_hours(log),
            metrics._reference_tbf_series_hours(log),
        )

    @settings(max_examples=40, deadline=None)
    @given(log=failure_logs())
    def test_ttr_series(self, log):
        _assert_close_lists(
            metrics.ttr_series_hours(log),
            metrics._reference_ttr_series_hours(log),
        )

    def test_series_on_calibrated_logs(self, t2_log, t3_log):
        for log in (t2_log, t3_log):
            _assert_close_lists(
                metrics.tbf_series_hours(log),
                metrics._reference_tbf_series_hours(log),
            )
            _assert_close_lists(
                metrics.ttr_series_hours(log),
                metrics._reference_ttr_series_hours(log),
            )


class TestTemporalParity:
    @settings(max_examples=30, deadline=None)
    @given(log=failure_logs(min_size=6))
    def test_tbf_by_category(self, log):
        try:
            expected = temporal._reference_tbf_by_category(log)
        except AnalysisError:
            with pytest.raises(AnalysisError):
                temporal.tbf_by_category(log)
            return
        actual = temporal.tbf_by_category(log)
        assert [e.category for e in actual] == [
            e.category for e in expected
        ]
        for a, e in zip(actual, expected):
            assert a.summary.as_row() == pytest.approx(
                e.summary.as_row(), abs=TOL
            )

    def test_tbf_by_category_calibrated(self, t2_log):
        actual = temporal.tbf_by_category(t2_log)
        expected = temporal._reference_tbf_by_category(t2_log)
        assert [e.category for e in actual] == [
            e.category for e in expected
        ]


class TestSpatialParity:
    @settings(max_examples=40, deadline=None)
    @given(log=failure_logs())
    def test_node_failure_distribution(self, log):
        actual = spatial.node_failure_distribution(log)
        expected = spatial._reference_node_failure_distribution(log)
        assert actual.counts_per_node == expected.counts_per_node
        assert actual.histogram == expected.histogram

    @settings(max_examples=40, deadline=None)
    @given(log=failure_logs())
    def test_repeat_failure_class_split(self, log):
        assert spatial.repeat_failure_class_split(
            log
        ) == spatial._reference_repeat_failure_class_split(log)

    @settings(max_examples=40, deadline=None)
    @given(log=failure_logs())
    def test_gpu_slot_distribution(self, log):
        slots = (0, 1, 2)
        assert spatial.gpu_slot_distribution(
            log, slots
        ) == spatial._reference_gpu_slot_distribution(log, slots)

    def test_rack_failure_distribution_calibrated(self, t2_log, t3_log):
        for log in (t2_log, t3_log):
            layout = rack_layout_for(log.machine)
            assert spatial.rack_failure_distribution(
                log, layout
            ) == spatial._reference_rack_failure_distribution(log, layout)


class TestSeasonalParity:
    @settings(max_examples=40, deadline=None)
    @given(log=failure_logs())
    def test_monthly_ttr(self, log):
        actual = seasonal.monthly_ttr(log)
        expected = seasonal._reference_monthly_ttr(log)
        assert sorted(actual.summaries) == sorted(expected.summaries)
        for month, summary in expected.summaries.items():
            assert actual.summaries[month].as_row() == pytest.approx(
                summary.as_row(), abs=TOL
            )

    @settings(max_examples=40, deadline=None)
    @given(log=failure_logs())
    def test_monthly_failure_counts(self, log):
        assert seasonal.monthly_failure_counts(
            log
        ).counts == seasonal._reference_monthly_failure_counts(log).counts

    @settings(max_examples=40, deadline=None)
    @given(log=failure_logs())
    def test_weekday_profile(self, log):
        assert seasonal.weekday_profile(
            log
        ) == seasonal._reference_weekday_profile(log)

    @settings(max_examples=40, deadline=None)
    @given(log=failure_logs())
    def test_hour_of_day_profile(self, log):
        assert seasonal.hour_of_day_profile(
            log
        ) == seasonal._reference_hour_of_day_profile(log)


class TestMultiGpuParity:
    @settings(max_examples=40, deadline=None)
    @given(log=failure_logs())
    def test_multi_gpu_involvement(self, log):
        assert multigpu.multi_gpu_involvement(
            log, 3
        ) == multigpu._reference_multi_gpu_involvement(log, 3)

    @settings(max_examples=40, deadline=None)
    @given(log=failure_logs(min_size=4))
    def test_multi_gpu_clustering(self, log):
        try:
            expected = multigpu._reference_multi_gpu_clustering(log)
        except AnalysisError:
            with pytest.raises(AnalysisError):
                multigpu.multi_gpu_clustering(log)
            return
        actual = multigpu.multi_gpu_clustering(log)
        assert len(actual.events) == len(expected.events)
        for (a_time, a_num), (e_time, e_num) in zip(
            actual.events, expected.events
        ):
            assert a_time == pytest.approx(e_time, abs=TOL)
            assert a_num == e_num
        _assert_close_lists(
            actual.gaps_after_multi, expected.gaps_after_multi
        )
        _assert_close_lists(
            actual.gaps_after_single, expected.gaps_after_single
        )

    def test_clustering_calibrated(self, t2_log):
        actual = multigpu.multi_gpu_clustering(t2_log)
        expected = multigpu._reference_multi_gpu_clustering(t2_log)
        _assert_close_lists(
            actual.gaps_after_multi, expected.gaps_after_multi
        )
        _assert_close_lists(
            actual.gaps_after_single, expected.gaps_after_single
        )


class TestFilterParity:
    """Mask-based filters against predicate filters through the
    validating constructor — the reference path the fast path replaced."""

    def _reference_filter(self, log, predicate):
        return FailureLog(
            machine=log.machine,
            records=tuple(r for r in log.records if predicate(r)),
            window_start=log.window_start,
            window_end=log.window_end,
        )

    @settings(max_examples=30, deadline=None)
    @given(log=failure_logs())
    def test_by_category(self, log):
        fast = log.by_category("GPU", "CPU")
        slow = self._reference_filter(
            log, lambda r: r.category in {"GPU", "CPU"}
        )
        assert fast.records == slow.records

    @settings(max_examples=30, deadline=None)
    @given(log=failure_logs())
    def test_by_class(self, log):
        from repro.core import taxonomy

        for cls in FailureClass:
            fast = log.by_class(cls)
            slow = self._reference_filter(
                log,
                lambda r: taxonomy.failure_class(log.machine, r.category)
                is cls,
            )
            assert fast.records == slow.records

    @settings(max_examples=30, deadline=None)
    @given(log=failure_logs())
    def test_gpu_failures(self, log):
        from repro.core import taxonomy

        fast = log.gpu_failures()
        slow = self._reference_filter(
            log,
            lambda r: bool(r.gpus_involved)
            or taxonomy.is_gpu_category(log.machine, r.category),
        )
        assert fast.records == slow.records

    @settings(max_examples=30, deadline=None)
    @given(log=failure_logs(), data=st.data())
    def test_between(self, log, data):
        lo = data.draw(
            st.floats(min_value=0.0, max_value=_SPAN_HOURS / 2)
        )
        hi = data.draw(
            st.floats(min_value=lo + 1.0, max_value=_SPAN_HOURS)
        )
        start = T0 + timedelta(hours=lo)
        end = T0 + timedelta(hours=hi)
        fast = log.between(start, end)
        slow = self._reference_filter(
            log, lambda r: start <= r.timestamp < end
        )
        assert fast.records == slow.records

    @settings(max_examples=30, deadline=None)
    @given(log=failure_logs())
    def test_chained_filters(self, log):
        fast = log.by_category("GPU").gpu_failures().by_node(3)
        slow = self._reference_filter(
            log,
            lambda r: r.category == "GPU" and r.node_id == 3,
        )
        assert fast.records == slow.records
