"""Tests for the concurrent-outage analysis."""

import pytest

from repro.core.overlap import concurrent_outages
from repro.errors import AnalysisError
from tests.conftest import make_log, make_record


class TestConcurrentOutages:
    def test_non_overlapping_outages(self):
        log = make_log(
            [
                make_record(0, hours=10, ttr_hours=5.0),
                make_record(1, hours=100, ttr_hours=5.0),
            ],
            span_hours=1000.0,
        )
        result = concurrent_outages(log)
        assert result.max_concurrent == 1
        assert result.time_at_level[1] == pytest.approx(10.0)
        assert result.time_at_level[0] == pytest.approx(990.0)
        assert result.overlap_fraction == 0.0

    def test_overlapping_outages(self):
        # [10, 40) and [20, 50): overlap [20, 40).
        log = make_log(
            [
                make_record(0, hours=10, ttr_hours=30.0),
                make_record(1, hours=20, ttr_hours=30.0),
            ],
            span_hours=100.0,
        )
        result = concurrent_outages(log)
        assert result.max_concurrent == 2
        assert result.time_at_level[2] == pytest.approx(20.0)
        assert result.time_at_level[1] == pytest.approx(20.0)
        assert result.overlap_fraction == pytest.approx(0.2)
        assert result.any_outage_fraction == pytest.approx(0.4)

    def test_levels_partition_the_span(self):
        log = make_log(
            [
                make_record(i, hours=10.0 * i + 5, ttr_hours=25.0)
                for i in range(10)
            ],
            span_hours=500.0,
        )
        result = concurrent_outages(log)
        assert sum(result.time_at_level.values()) == pytest.approx(500.0)

    def test_outage_truncated_at_window_end(self):
        log = make_log(
            [make_record(0, hours=990, ttr_hours=100.0)],
            span_hours=1000.0,
        )
        result = concurrent_outages(log)
        assert result.time_at_level[1] == pytest.approx(10.0)

    def test_zero_ttr_contributes_nothing(self):
        log = make_log(
            [make_record(0, hours=10, ttr_hours=0.0)], span_hours=100.0
        )
        result = concurrent_outages(log)
        assert result.max_concurrent == 0
        assert result.any_outage_fraction == 0.0

    def test_mean_concurrent_is_load(self):
        # One outage of 50 h over a 100 h span: L = 0.5.
        log = make_log(
            [make_record(0, hours=10, ttr_hours=50.0)], span_hours=100.0
        )
        assert concurrent_outages(log).mean_concurrent() == (
            pytest.approx(0.5)
        )

    def test_implied_parallelism(self):
        log = make_log(
            [
                make_record(0, hours=10, ttr_hours=30.0),
                make_record(1, hours=20, ttr_hours=30.0),
            ],
            span_hours=100.0,
        )
        result = concurrent_outages(log)
        assert result.implied_repair_parallelism(coverage=1.0) == 2
        # 80% coverage tolerates the 20 h of depth-2 overlap.
        assert result.implied_repair_parallelism(coverage=0.8) == 1

    def test_invalid_inputs(self):
        with pytest.raises(AnalysisError):
            concurrent_outages(make_log([]))
        log = make_log([make_record(0, hours=1)], span_hours=10.0)
        result = concurrent_outages(log)
        with pytest.raises(AnalysisError):
            result.fraction_at_least(-1)
        with pytest.raises(AnalysisError):
            result.implied_repair_parallelism(coverage=0.0)


class TestCalibratedOverlap:
    def test_mean_concurrent_tracks_mttr_over_mtbf(self, t2_log):
        from repro.core.metrics import mtbf, mttr

        result = concurrent_outages(t2_log)
        littles_law = mttr(t2_log) / mtbf(t2_log)
        assert result.mean_concurrent() == pytest.approx(
            littles_law, rel=0.05
        )

    def test_overlap_is_the_norm_on_t2(self, t2_log):
        # MTTR (~55 h) >> MTBF (~15 h): repairs overlap most of the
        # time — the paper's RQ5 alarm, quantified.
        result = concurrent_outages(t2_log)
        assert result.overlap_fraction > 0.5
        assert result.max_concurrent >= 6

    def test_overlap_still_present_on_t3(self, t3_log):
        # Even with MTBF ~72 h vs MTTR ~55 h, overlap persists.
        result = concurrent_outages(t3_log)
        assert result.overlap_fraction > 0.1
        assert result.max_concurrent >= 3

    def test_parallelism_requirement_higher_on_t2(self, t2_log, t3_log):
        t2 = concurrent_outages(t2_log).implied_repair_parallelism()
        t3 = concurrent_outages(t3_log).implied_repair_parallelism()
        assert t2 > t3
