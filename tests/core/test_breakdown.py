"""Tests for RQ1 — category and root-locus breakdowns."""

import pytest

from repro.core.breakdown import category_breakdown, software_root_loci
from repro.core.taxonomy import FailureClass
from repro.errors import AnalysisError
from tests.conftest import make_log, make_record


def _mixed_log():
    records = (
        [make_record(i, hours=i + 1, category="GPU") for i in range(6)]
        + [make_record(10 + i, hours=20 + i, category="CPU")
           for i in range(3)]
        + [make_record(20, hours=50, category="PBS")]
    )
    return make_log(records)


class TestCategoryBreakdown:
    def test_counts_and_shares(self):
        result = category_breakdown(_mixed_log())
        assert result.total == 10
        assert result.count_of("GPU") == 6
        assert result.share_of("GPU") == pytest.approx(0.6)
        assert result.share_of("CPU") == pytest.approx(0.3)

    def test_shares_sum_to_one(self):
        result = category_breakdown(_mixed_log())
        assert sum(e.share for e in result.shares) == pytest.approx(1.0)

    def test_sorted_by_descending_count(self):
        result = category_breakdown(_mixed_log())
        counts = [e.count for e in result.shares]
        assert counts == sorted(counts, reverse=True)

    def test_dominant_category(self):
        assert category_breakdown(_mixed_log()).dominant_category == "GPU"

    def test_absent_category_is_zero(self):
        result = category_breakdown(_mixed_log())
        assert result.share_of("SSD") == 0.0
        assert result.count_of("SSD") == 0

    def test_top_k(self):
        result = category_breakdown(_mixed_log())
        assert [e.category for e in result.top(2)] == ["GPU", "CPU"]

    def test_class_share(self):
        result = category_breakdown(_mixed_log())
        assert result.class_share(FailureClass.HARDWARE) == pytest.approx(0.9)
        assert result.class_share(FailureClass.SOFTWARE) == pytest.approx(0.1)

    def test_empty_log_rejected(self):
        with pytest.raises(AnalysisError):
            category_breakdown(make_log([]))

    def test_tie_broken_by_name(self):
        records = [
            make_record(0, hours=1, category="SSD"),
            make_record(1, hours=2, category="Disk"),
        ]
        result = category_breakdown(make_log(records))
        assert [e.category for e in result.shares] == ["Disk", "SSD"]


class TestCalibratedBreakdown:
    """The paper's Figure 2 numbers on the calibrated logs."""

    def test_t2_gpu_share(self, t2_log):
        result = category_breakdown(t2_log)
        assert result.share_of("GPU") == pytest.approx(0.4437, abs=0.001)

    def test_t2_cpu_share(self, t2_log):
        result = category_breakdown(t2_log)
        assert result.share_of("CPU") == pytest.approx(0.0178, abs=0.001)

    def test_t2_dominant_is_gpu(self, t2_log):
        assert category_breakdown(t2_log).dominant_category == "GPU"

    def test_t3_software_share(self, t3_log):
        result = category_breakdown(t3_log)
        assert result.share_of("Software") == pytest.approx(0.5059, abs=0.001)

    def test_t3_gpu_share(self, t3_log):
        result = category_breakdown(t3_log)
        assert result.share_of("GPU") == pytest.approx(0.2781, abs=0.001)

    def test_t3_dominant_is_software(self, t3_log):
        assert category_breakdown(t3_log).dominant_category == "Software"

    def test_gpu_failures_exceed_cpu_on_both(self, t2_log, t3_log):
        for log in (t2_log, t3_log):
            result = category_breakdown(log)
            assert result.count_of("GPU") > 5 * result.count_of("CPU")


class TestSoftwareRootLoci:
    def test_loci_counts(self):
        records = [
            make_record(0, hours=1, category="Software",
                        root_locus="gpu_driver"),
            make_record(1, hours=2, category="Software",
                        root_locus="gpu_driver"),
            make_record(2, hours=3, category="Software",
                        root_locus=None),
            make_record(3, hours=4, category="GPU"),
        ]
        log = make_log(records, machine="tsubame3")
        result = software_root_loci(log)
        assert result.total_software == 3
        assert result.share_of("gpu_driver") == pytest.approx(2 / 3)
        # A missing locus is grouped under "unknown".
        assert result.share_of("unknown") == pytest.approx(1 / 3)

    def test_no_software_failures_rejected(self):
        log = make_log([make_record(0, hours=1, category="GPU")],
                       machine="tsubame3")
        with pytest.raises(AnalysisError):
            software_root_loci(log)

    def test_t3_driver_share_near_43_percent(self, t3_log):
        result = software_root_loci(t3_log)
        assert result.share_of("gpu_driver") == pytest.approx(0.43, abs=0.02)

    def test_t3_unknown_share_near_20_percent(self, t3_log):
        result = software_root_loci(t3_log)
        assert result.share_of("unknown") == pytest.approx(0.20, abs=0.02)

    def test_t3_top16_covers_everything(self, t3_log):
        result = software_root_loci(t3_log)
        assert sum(e.count for e in result.top(16)) == result.total_software

    def test_t3_kernel_panics_and_lustre_rare(self, t3_log):
        result = software_root_loci(t3_log)
        assert result.share_of("kernel_panic") < 0.03
        assert result.share_of("lustre_bug") < 0.03

    def test_t3_total_matches_paper(self, t3_log):
        # 171 reported root loci (Section III, RQ1).
        assert software_root_loci(t3_log).total_software == 171
