"""Tests for the user-exposure report."""

import pytest

from repro.core.exposure import exposure_report
from repro.errors import AnalysisError


class TestExposureReport:
    def test_grid_covered(self, t2_log):
        report = exposure_report(
            t2_log, job_nodes_grid=(1, 64), job_hours_grid=(6.0, 24.0)
        )
        assert len(report.rows) == 4
        assert report.row_for(64, 24.0).job_nodes == 64

    def test_probability_monotone_in_size_and_duration(self, t2_log):
        report = exposure_report(t2_log)
        small = report.row_for(1, 6.0)
        big = report.row_for(256, 96.0)
        assert big.interruption_probability > (
            small.interruption_probability
        )
        longer = report.row_for(16, 96.0)
        shorter = report.row_for(16, 6.0)
        assert longer.interruption_probability > (
            shorter.interruption_probability
        )

    def test_checkpoint_interval_shrinks_with_job_size(self, t2_log):
        report = exposure_report(t2_log)
        assert (report.row_for(256, 24.0).checkpoint_interval_hours
                < report.row_for(1, 24.0).checkpoint_interval_hours)

    def test_expected_interruptions_consistent(self, t2_log):
        import math

        report = exposure_report(t2_log)
        for row in report.rows:
            assert row.interruption_probability == pytest.approx(
                1.0 - math.exp(-row.expected_interruptions)
            )

    def test_t3_safer_than_t2_for_same_job(self, t2_log, t3_log):
        t2 = exposure_report(t2_log).row_for(64, 24.0)
        t3 = exposure_report(t3_log).row_for(64, 24.0)
        assert (t3.interruption_probability
                < t2.interruption_probability)

    def test_needs_checkpointing_threshold(self, t2_log):
        report = exposure_report(t2_log)
        big = report.row_for(256, 96.0)
        assert big.needs_checkpointing
        assert 0.0 <= report.fraction_needing_checkpointing() <= 1.0

    def test_missing_shape_rejected(self, t2_log):
        report = exposure_report(t2_log)
        with pytest.raises(AnalysisError):
            report.row_for(3, 7.0)

    def test_invalid_inputs_rejected(self, t2_log):
        with pytest.raises(AnalysisError):
            exposure_report(t2_log, job_nodes_grid=())
        with pytest.raises(AnalysisError):
            exposure_report(t2_log, checkpoint_cost_hours=0.0)


class TestYoungDalyConsistency:
    def test_inlined_formula_matches_sim_checkpoint(self, t2_log):
        # exposure inlines sqrt(2 C M) to avoid a core -> sim import
        # cycle; it must stay equal to the simulator's implementation.
        from repro.sim.checkpoint import young_daly_interval

        report = exposure_report(t2_log, checkpoint_cost_hours=0.25)
        from repro.machines import get_machine

        spec = get_machine(t2_log.machine)
        for row in report.rows:
            job_mtbf = (report.system_mtbf_hours * spec.num_nodes
                        / row.job_nodes)
            assert row.checkpoint_interval_hours == pytest.approx(
                young_daly_interval(0.25, job_mtbf)
            )
