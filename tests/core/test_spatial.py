"""Tests for RQ2 — per-node and per-GPU-slot distributions."""

import pytest

from repro.core.spatial import (
    gpu_slot_distribution,
    node_failure_distribution,
    repeat_failure_class_split,
)
from repro.errors import AnalysisError
from repro.machines.specs import TSUBAME2, TSUBAME3
from tests.conftest import make_log, make_record


def _node_log():
    # node 1: three failures; node 2: two; nodes 3, 4: one each.
    hours = iter(range(1, 100))
    records = []
    rid = iter(range(100))
    for node, count in ((1, 3), (2, 2), (3, 1), (4, 1)):
        for _ in range(count):
            records.append(
                make_record(next(rid), hours=next(hours), node_id=node)
            )
    return make_log(records)


class TestNodeFailureDistribution:
    def test_counts_per_node(self):
        result = node_failure_distribution(_node_log())
        assert result.counts_per_node == {1: 3, 2: 2, 3: 1, 4: 1}

    def test_histogram(self):
        result = node_failure_distribution(_node_log())
        assert result.histogram == {3: 1, 2: 1, 1: 2}

    def test_fractions(self):
        result = node_failure_distribution(_node_log())
        assert result.fraction_with_exactly(1) == pytest.approx(0.5)
        assert result.fraction_with_more_than(1) == pytest.approx(0.5)
        assert result.fraction_with_more_than(3) == 0.0

    def test_totals(self):
        result = node_failure_distribution(_node_log())
        assert result.num_affected_nodes == 4
        assert result.total_failures == 7

    def test_cdf_points_monotone_to_one(self):
        points = node_failure_distribution(_node_log()).cdf_points()
        fractions = [f for _, f in points]
        assert fractions == sorted(fractions)
        assert fractions[-1] == pytest.approx(1.0)

    def test_top_nodes(self):
        result = node_failure_distribution(_node_log())
        assert result.top_nodes(2) == [(1, 3), (2, 2)]

    def test_empty_log_rejected(self):
        with pytest.raises(AnalysisError):
            node_failure_distribution(make_log([]))


class TestCalibratedNodeDistribution:
    """Figure 4 on the calibrated logs."""

    def test_t2_most_nodes_fail_once(self, t2_log):
        result = node_failure_distribution(t2_log)
        assert result.fraction_with_exactly(1) == pytest.approx(0.60,
                                                                abs=0.06)

    def test_t3_most_nodes_fail_more_than_once(self, t3_log):
        result = node_failure_distribution(t3_log)
        assert result.fraction_with_more_than(1) == pytest.approx(0.60,
                                                                  abs=0.10)

    def test_two_failure_share_near_ten_percent_on_both(
        self, t2_log, t3_log
    ):
        for log in (t2_log, t3_log):
            result = node_failure_distribution(log)
            assert result.fraction_with_exactly(2) == pytest.approx(
                0.10, abs=0.05
            )

    def test_t3_three_failure_share_higher_than_t2(self, t2_log, t3_log):
        t2 = node_failure_distribution(t2_log).fraction_with_exactly(3)
        t3 = node_failure_distribution(t3_log).fraction_with_exactly(3)
        assert t3 > 1.2 * t2  # paper: ~50% more

    def test_affected_nodes_fit_fleet(self, t2_log, t3_log):
        assert (node_failure_distribution(t2_log).num_affected_nodes
                <= TSUBAME2.num_nodes)
        assert (node_failure_distribution(t3_log).num_affected_nodes
                <= TSUBAME3.num_nodes)


class TestRepeatFailureClassSplit:
    def test_split_on_hand_built_log(self):
        records = [
            # node 1 fails three times: two hardware, one software.
            make_record(0, hours=1, node_id=1, category="GPU"),
            make_record(1, hours=2, node_id=1, category="Disk"),
            make_record(2, hours=3, node_id=1, category="PBS"),
            # node 2 fails once (excluded from the split).
            make_record(3, hours=4, node_id=2, category="GPU"),
        ]
        split = repeat_failure_class_split(make_log(records))
        assert split.num_multi_failure_nodes == 1
        assert split.hardware_failures == 2
        assert split.software_failures == 1
        assert split.total == 3

    def test_t2_repeats_almost_all_hardware(self, t2_log):
        split = repeat_failure_class_split(t2_log)
        software_share = split.software_failures / split.total
        assert software_share < 0.05  # paper: 1 of 353

    def test_t3_repeats_balanced(self, t3_log):
        split = repeat_failure_class_split(t3_log)
        software_share = (
            (split.software_failures + split.unknown_failures) / split.total
        )
        assert 0.30 < software_share < 0.65  # paper: 95 of 199


class TestGpuSlotDistribution:
    def test_counts_weighted_by_involvement(self):
        records = [
            make_record(0, hours=1, category="GPU", gpus_involved=(0,)),
            make_record(1, hours=2, category="GPU", gpus_involved=(1, 2)),
            make_record(2, hours=3, category="GPU", gpus_involved=(1,)),
        ]
        result = gpu_slot_distribution(make_log(records), (0, 1, 2))
        assert result.counts == {0: 1, 1: 2, 2: 1}
        assert result.total == 4

    def test_unrecorded_involvement_ignored(self):
        records = [make_record(0, hours=1, category="GPU")]
        result = gpu_slot_distribution(make_log(records), (0, 1, 2))
        assert result.total == 0

    def test_share_and_relative(self):
        records = [
            make_record(0, hours=1, category="GPU", gpus_involved=(0,)),
            make_record(1, hours=2, category="GPU", gpus_involved=(0,)),
            make_record(2, hours=3, category="GPU", gpus_involved=(1,)),
        ]
        result = gpu_slot_distribution(make_log(records), (0, 1, 2))
        assert result.share_of(0) == pytest.approx(2 / 3)
        assert result.relative_to_mean(0) == pytest.approx(2.0)
        assert result.relative_to_mean(2) == 0.0

    def test_out_of_range_slot_rejected(self):
        records = [make_record(0, hours=1, category="GPU",
                               gpus_involved=(5,))]
        with pytest.raises(AnalysisError):
            gpu_slot_distribution(make_log(records), (0, 1, 2))

    def test_empty_slots_rejected(self):
        with pytest.raises(AnalysisError):
            gpu_slot_distribution(make_log([]), ())

    def test_imbalance_uniform_is_one(self):
        records = [
            make_record(i, hours=i + 1, category="GPU", gpus_involved=(i,))
            for i in range(3)
        ]
        result = gpu_slot_distribution(make_log(records), (0, 1, 2))
        assert result.imbalance() == pytest.approx(1.0)

    def test_imbalance_with_zero_slot_is_infinite(self):
        records = [make_record(0, hours=1, category="GPU",
                               gpus_involved=(0,))]
        result = gpu_slot_distribution(make_log(records), (0, 1))
        assert result.imbalance() == float("inf")


class TestCalibratedSlotDistribution:
    """Figure 5 on the calibrated logs."""

    def test_t2_gpu1_fails_most(self, t2_log):
        result = gpu_slot_distribution(
            t2_log.gpu_failures(), TSUBAME2.gpu_slots
        )
        assert result.counts[1] > result.counts[0]
        assert result.counts[1] > result.counts[2]
        # ~20% more than the per-slot mean.
        assert 1.05 < result.relative_to_mean(1) < 1.40

    def test_t3_outer_gpus_fail_most(self, t3_log):
        result = gpu_slot_distribution(
            t3_log.gpu_failures(), TSUBAME3.gpu_slots
        )
        inner = max(result.counts[1], result.counts[2])
        assert result.counts[0] > inner
        assert result.counts[3] > inner

    def test_non_identical_distribution_on_both(self, t2_log, t3_log):
        for log, spec in ((t2_log, TSUBAME2), (t3_log, TSUBAME3)):
            result = gpu_slot_distribution(log.gpu_failures(),
                                           spec.gpu_slots)
            assert result.imbalance() > 1.15
