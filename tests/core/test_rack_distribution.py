"""Tests for the rack-level spatial analysis."""

import pytest

from repro.core.spatial import rack_failure_distribution
from repro.errors import AnalysisError
from repro.machines.racks import RackLayout, rack_layout_for
from repro.synth import GeneratorConfig, TraceGenerator, profile_for
from tests.conftest import make_log, make_record


def _layout(num_nodes=100, per_rack=10):
    return RackLayout("tsubame2", num_nodes=num_nodes,
                      nodes_per_rack=per_rack)


class TestRackDistribution:
    def test_counts_aggregate_by_rack(self):
        log = make_log(
            [
                make_record(0, hours=1, node_id=3),    # rack 0
                make_record(1, hours=2, node_id=9),    # rack 0
                make_record(2, hours=3, node_id=15),   # rack 1
            ]
        )
        result = rack_failure_distribution(log, _layout())
        assert result.counts == {0: 2, 1: 1}
        assert result.total == 3
        assert result.affected_racks == 2
        assert result.count_for(5) == 0

    def test_top_racks(self):
        log = make_log(
            [make_record(i, hours=i + 1, node_id=0) for i in range(3)]
            + [make_record(10, hours=50, node_id=50)]
        )
        result = rack_failure_distribution(log, _layout())
        assert result.top_racks(1) == [(0, 3)]

    def test_concentration_uniform_vs_skewed(self):
        uniform = make_log(
            [
                make_record(i, hours=i + 1, node_id=(i * 10) % 100)
                for i in range(10)
            ]
        )
        skewed = make_log(
            [make_record(i, hours=i + 1, node_id=5) for i in range(10)]
        )
        layout = _layout()
        assert (rack_failure_distribution(skewed, layout)
                .concentration(0.1)
                == pytest.approx(1.0))
        assert (rack_failure_distribution(uniform, layout)
                .concentration(0.1)
                == pytest.approx(0.1))

    def test_gini_bounds(self):
        skewed = make_log(
            [make_record(i, hours=i + 1, node_id=5) for i in range(10)]
        )
        result = rack_failure_distribution(skewed, _layout())
        assert 0.85 <= result.gini() <= 1.0

    def test_gini_uniform_is_zero(self):
        # One failure in every rack.
        log = make_log(
            [
                make_record(i, hours=i + 1, node_id=i * 10)
                for i in range(10)
            ]
        )
        assert rack_failure_distribution(log, _layout()).gini() == (
            pytest.approx(0.0)
        )

    def test_machine_mismatch_rejected(self):
        log = make_log([make_record(0, hours=1)], machine="tsubame3")
        with pytest.raises(AnalysisError):
            rack_failure_distribution(log, _layout())

    def test_empty_log_rejected(self):
        with pytest.raises(AnalysisError):
            rack_failure_distribution(make_log([]), _layout())

    def test_bad_fraction_rejected(self):
        log = make_log([make_record(0, hours=1)])
        result = rack_failure_distribution(log, _layout())
        with pytest.raises(AnalysisError):
            result.concentration(0.0)


class TestGeneratedRackSkew:
    def test_rack_skew_raises_gini(self):
        profile = profile_for("tsubame2")
        layout = rack_layout_for("tsubame2")
        skewed = TraceGenerator(
            profile, GeneratorConfig(seed=42)
        ).generate()
        flat = TraceGenerator(
            profile, GeneratorConfig(seed=42, rack_skew=False)
        ).generate()
        skewed_gini = rack_failure_distribution(skewed, layout).gini()
        flat_gini = rack_failure_distribution(flat, layout).gini()
        assert skewed_gini > flat_gini

    def test_rack_skew_preserves_node_distribution(self, t2_log):
        # Figure 4's per-node histogram must survive the rack skew.
        from repro.core.spatial import node_failure_distribution

        result = node_failure_distribution(t2_log)
        assert result.fraction_with_exactly(1) == pytest.approx(
            0.60, abs=0.06
        )

    def test_calibrated_logs_show_rack_nonuniformity(self, t2_log, t3_log):
        for log in (t2_log, t3_log):
            layout = rack_layout_for(log.machine)
            result = rack_failure_distribution(log, layout)
            assert result.concentration(0.1) > 0.15
