"""Property-based tests (hypothesis) for core invariants."""

from datetime import timedelta

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.breakdown import category_breakdown
from repro.core.metrics import mtbf, tbf_series_hours
from repro.core.records import FailureLog, FailureRecord
from repro.core.spatial import node_failure_distribution
from repro.io import record_from_row, record_to_row
from repro.stats.ecdf import ECDF
from repro.stats.summary import five_number_summary
from repro.stats.survival import KaplanMeier
from repro.synth.recovery import normalize_to_mean
from repro.synth.sampling import allocate_counts
from tests.conftest import T0

_T2_CATEGORIES = st.sampled_from(
    ["GPU", "CPU", "SSD", "FAN", "PBS", "Memory", "Network", "Boot"]
)

_record_tuples = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=999.0, allow_nan=False),
        st.integers(min_value=0, max_value=50),
        _T2_CATEGORIES,
        st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
    ),
    min_size=1,
    max_size=60,
)


def _build_log(tuples) -> FailureLog:
    records = [
        FailureRecord(
            record_id=index,
            timestamp=T0 + timedelta(hours=hours),
            node_id=node,
            category=category,
            ttr_hours=ttr,
        )
        for index, (hours, node, category, ttr) in enumerate(tuples)
    ]
    return FailureLog(
        machine="tsubame2",
        records=tuple(records),
        window_start=T0,
        window_end=T0 + timedelta(hours=1000.0),
    )


class TestAllocateCountsProperties:
    @given(
        weights=st.dictionaries(
            st.text(min_size=1, max_size=5),
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            min_size=1,
            max_size=10,
        ).filter(lambda w: sum(w.values()) > 0),
        total=st.integers(min_value=0, max_value=5000),
    )
    def test_sums_exactly_and_stays_within_one_of_ideal(
        self, weights, total
    ):
        counts = allocate_counts(weights, total)
        assert sum(counts.values()) == total
        weight_sum = sum(weights.values())
        for label, weight in weights.items():
            ideal = total * weight / weight_sum
            assert abs(counts[label] - ideal) < 1.0 + 1e-9


class TestEcdfProperties:
    @given(
        sample=st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=100,
        )
    )
    def test_monotone_and_bounded(self, sample):
        ecdf = ECDF(sample)
        grid = np.linspace(min(sample) - 1, max(sample) + 1, 30)
        values = ecdf.evaluate(grid)
        assert np.all(np.diff(values) >= 0)
        assert np.all((values >= 0) & (values <= 1))
        assert ecdf(max(sample)) == 1.0

    @given(
        sample=st.lists(
            st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
            min_size=2,
            max_size=80,
        ),
        q=st.floats(min_value=0.01, max_value=1.0),
    )
    def test_quantile_is_generalised_inverse(self, sample, q):
        ecdf = ECDF(sample)
        x = ecdf.quantile(q)
        assert ecdf(x) >= q - 1e-12
        assert x in sample


class TestSummaryProperties:
    @given(
        sample=st.lists(
            st.floats(min_value=-1e5, max_value=1e5, allow_nan=False),
            min_size=1,
            max_size=100,
        )
    )
    def test_five_numbers_ordered(self, sample):
        summary = five_number_summary(sample)
        assert (summary.minimum <= summary.q1 <= summary.median
                <= summary.q3 <= summary.maximum)
        # Mean comparison tolerates float summation error on
        # denormal-scale inputs.
        slack = 1e-9 * max(1.0, abs(summary.minimum), abs(summary.maximum))
        assert summary.minimum - slack <= summary.mean
        assert summary.mean <= summary.maximum + slack
        assert summary.iqr >= 0


class TestKaplanMeierProperties:
    @given(
        durations=st.lists(
            st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
            min_size=1,
            max_size=60,
        )
    )
    def test_survival_non_increasing_from_one_to_zero(self, durations):
        km = KaplanMeier(durations)
        _, survival = km.steps()
        assert all(0.0 <= s <= 1.0 for s in survival)
        assert all(a >= b for a, b in zip(survival, survival[1:]))
        # Fully observed data ends at zero.
        assert km.survival_at(max(durations)) == pytest.approx(0.0)


class TestLogProperties:
    @given(tuples=_record_tuples)
    @settings(max_examples=50)
    def test_records_always_sorted(self, tuples):
        log = _build_log(tuples)
        stamps = [r.timestamp for r in log]
        assert stamps == sorted(stamps)

    @given(tuples=_record_tuples)
    @settings(max_examples=50)
    def test_breakdown_shares_sum_to_one(self, tuples):
        log = _build_log(tuples)
        result = category_breakdown(log)
        assert sum(e.share for e in result.shares) == pytest.approx(1.0)
        assert sum(e.count for e in result.shares) == len(log)

    @given(tuples=_record_tuples)
    @settings(max_examples=50)
    def test_tbf_non_negative_and_telescopes(self, tuples):
        log = _build_log(tuples)
        if len(log) < 2:
            return
        gaps = tbf_series_hours(log)
        assert len(gaps) == len(log) - 1
        assert all(gap >= 0 for gap in gaps)
        stamps = log.timestamps_hours()
        assert sum(gaps) == pytest.approx(stamps[-1] - stamps[0])
        assert mtbf(log) == pytest.approx(
            (stamps[-1] - stamps[0]) / (len(log) - 1)
        )

    @given(tuples=_record_tuples)
    @settings(max_examples=50)
    def test_node_distribution_conserves_failures(self, tuples):
        log = _build_log(tuples)
        result = node_failure_distribution(log)
        assert result.total_failures == len(log)
        assert sum(
            k * n for k, n in result.histogram.items()
        ) == len(log)

    @given(tuples=_record_tuples)
    @settings(max_examples=50)
    def test_filter_partition(self, tuples):
        log = _build_log(tuples)
        gpu = log.by_category("GPU")
        rest = log.filter(lambda r: r.category != "GPU")
        assert len(gpu) + len(rest) == len(log)


class TestSerializationProperties:
    @given(
        hours=st.floats(min_value=0.0, max_value=1e5, allow_nan=False),
        node=st.integers(min_value=0, max_value=10**6),
        ttr=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        gpus=st.sets(st.integers(min_value=0, max_value=7), max_size=4),
        locus=st.one_of(st.none(), st.sampled_from(["gpu_driver",
                                                    "unknown"])),
    )
    def test_row_roundtrip_identity(self, hours, node, ttr, gpus, locus):
        record = FailureRecord(
            record_id=0,
            timestamp=T0 + timedelta(hours=hours),
            node_id=node,
            category="Software",
            ttr_hours=ttr,
            gpus_involved=tuple(sorted(gpus)),
            root_locus=locus,
        )
        assert record_from_row(record_to_row(record)) == record


class TestNormalizeProperties:
    @given(
        values=st.lists(
            st.floats(min_value=0.01, max_value=1e4, allow_nan=False),
            min_size=1,
            max_size=50,
        ),
        target=st.floats(min_value=0.1, max_value=1e3),
    )
    def test_mean_pinned_and_ratios_preserved(self, values, target):
        result = normalize_to_mean(values, target)
        assert float(np.mean(result)) == pytest.approx(target, rel=1e-9)
        if len(values) >= 2 and values[0] > 0:
            assert result[1] / result[0] == pytest.approx(
                values[1] / values[0], rel=1e-9
            )


class TestOverlapProperties:
    @given(tuples=_record_tuples)
    @settings(max_examples=50)
    def test_levels_partition_span(self, tuples):
        from repro.core.overlap import concurrent_outages

        log = _build_log(tuples)
        result = concurrent_outages(log)
        assert sum(result.time_at_level.values()) == pytest.approx(
            log.span_hours
        )
        assert all(level >= 0 for level in result.time_at_level)
        assert result.fraction_at_least(0) == pytest.approx(1.0)

    @given(tuples=_record_tuples)
    @settings(max_examples=50)
    def test_fraction_at_least_is_monotone(self, tuples):
        from repro.core.overlap import concurrent_outages

        log = _build_log(tuples)
        result = concurrent_outages(log)
        fractions = [
            result.fraction_at_least(k)
            for k in range(result.max_concurrent + 2)
        ]
        assert all(a >= b - 1e-12
                   for a, b in zip(fractions, fractions[1:]))


class TestScenarioProperties:
    @given(factor=st.floats(min_value=0.2, max_value=5.0))
    @settings(max_examples=25, deadline=None)
    def test_rate_scaling_conserves_structure(self, factor):
        from repro.synth import profile_for, with_failure_rate_scaled

        base = profile_for("tsubame2")
        scaled = with_failure_rate_scaled(base, factor)
        assert sum(scaled.category_counts.values()) == (
            scaled.total_failures
        )
        gpu = scaled.category_counts.get("GPU", 0)
        assert (sum(scaled.gpu_involvement_counts.values())
                + scaled.gpu_involvement_unrecorded) == gpu

    @given(share=st.floats(min_value=0.0, max_value=0.95))
    @settings(max_examples=25, deadline=None)
    def test_software_share_scenario_valid(self, share):
        from repro.synth import profile_for, with_software_share

        scenario = with_software_share(
            profile_for("tsubame3"), share, "Software"
        )
        assert scenario.total_failures == 338
        assert scenario.category_counts["Software"] == round(338 * share)


class TestDispersionProperties:
    @given(
        times=st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            min_size=1,
            max_size=80,
        ),
        num_windows=st.integers(min_value=1, max_value=20),
    )
    def test_window_counts_conserve_events(self, times, num_windows):
        from repro.stats.dispersion import window_counts

        counts = window_counts(times, span=100.0,
                               num_windows=num_windows)
        assert sum(counts) == len(times)
        assert len(counts) == num_windows

    @given(
        counts=st.lists(st.integers(min_value=0, max_value=100),
                        min_size=2, max_size=60).filter(
                            lambda c: sum(c) > 0),
    )
    def test_index_of_dispersion_non_negative(self, counts):
        from repro.stats.dispersion import index_of_dispersion

        assert index_of_dispersion(counts) >= 0.0


class TestImpactProperties:
    @given(tuples=_record_tuples)
    @settings(max_examples=50)
    def test_impact_ranks_are_permutations(self, tuples):
        from repro.core.impact import impact_ranking
        from repro.errors import AnalysisError

        log = _build_log(tuples)
        try:
            ranking = impact_ranking(log, min_failures=1)
        except AnalysisError:
            return  # all-zero TTR logs carry no impact to rank
        n = len(ranking.entries)
        assert sorted(e.impact_rank for e in ranking.entries) == (
            list(range(1, n + 1))
        )
        assert sorted(e.frequency_rank for e in ranking.entries) == (
            list(range(1, n + 1))
        )
        assert sum(e.rank_shift for e in ranking.entries) == 0
