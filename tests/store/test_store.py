"""The store facade: init, append invariants, reads, time travel."""

from __future__ import annotations

import dataclasses
import json
from datetime import timedelta

import pytest

from repro.core.records import FailureLog
from repro.errors import MachineError, StoreCorruptError, StoreError
from repro.sim import ClusterSimulator
from repro.store import (
    FailureStore,
    ingest_log,
    init_store,
    open_store,
)
from repro.store.views import verify_parity
from repro.synth import GeneratorConfig, TraceGenerator
from repro.synth.profiles import profile_for
from tests.conftest import make_log, make_record
from tests.store.conftest import assert_log_roundtrip, split_log, sub_log


def _payload_bytes(store: FailureStore) -> bytes:
    return json.dumps(store.payloads(), sort_keys=True).encode()


def _late_records(log: FailureLog, n: int, start_id: int = 50_000):
    """``n`` fresh records strictly after ``log``'s last event."""
    last = log.records[-1]
    return [
        dataclasses.replace(
            last,
            record_id=start_id + i,
            timestamp=last.timestamp + timedelta(seconds=i + 1),
        )
        for i in range(n)
    ]


class TestInit:
    def test_init_then_open_empty(self, tmp_path):
        path = tmp_path / "s"
        store = init_store(path, "tsubame2")
        assert store.machine == "tsubame2"
        assert store.strict_taxonomy is True
        assert store.rows == 0
        assert store.watermark is None
        assert store.payloads() == {}
        reopened = open_store(path)
        assert reopened.rows == 0
        assert reopened.fingerprint == store.fingerprint
        with pytest.raises(StoreError, match="empty"):
            reopened.log()

    def test_double_init_rejected(self, tmp_path):
        init_store(tmp_path / "s", "tsubame2")
        with pytest.raises(StoreError, match="already holds a store"):
            init_store(tmp_path / "s", "tsubame2")

    def test_unknown_machine_rejected(self, tmp_path):
        with pytest.raises(MachineError):
            init_store(tmp_path / "s", "summit")
        # Validation happens before any filesystem writes.
        assert not (tmp_path / "s").exists()

    def test_half_window_rejected(self, tmp_path):
        log = make_log([make_record(0, 1.0)])
        with pytest.raises(StoreError, match="both"):
            init_store(
                tmp_path / "s", "tsubame2",
                window_start=log.window_start,
            )

    def test_inverted_window_rejected(self, tmp_path):
        log = make_log([make_record(0, 1.0)])
        with pytest.raises(StoreError, match="after"):
            init_store(
                tmp_path / "s", "tsubame2",
                window_start=log.window_end,
                window_end=log.window_start,
            )

    def test_open_non_store_directory(self, tmp_path):
        with pytest.raises(StoreCorruptError, match="no store manifest"):
            open_store(tmp_path)


class TestRoundTrip:
    def test_two_batch_append_is_bit_identical(self, stored, t3_small):
        path, store = stored
        assert store.rows == len(t3_small)
        assert_log_roundtrip(store.log(), t3_small)
        # A fresh process sees the same bytes.
        assert_log_roundtrip(open_store(path).log(), t3_small)

    def test_single_batch_equals_multi_batch(self, tmp_path, t3_small):
        one = init_store(
            tmp_path / "one", t3_small.machine,
            window_start=t3_small.window_start,
            window_end=t3_small.window_end,
        )
        one.append(t3_small)
        many = init_store(
            tmp_path / "many", t3_small.machine,
            window_start=t3_small.window_start,
            window_end=t3_small.window_end,
        )
        for batch in split_log(t3_small, 5):
            many.append(batch)
        assert_log_roundtrip(many.log(), one.log())
        assert _payload_bytes(many) == _payload_bytes(one)

    def test_raw_record_append_pads_window(self, tmp_path):
        records = [make_record(i, 10.0 + i) for i in range(4)]
        store = init_store(tmp_path / "s", "tsubame2")
        summary = store.append(records)
        assert summary["rows"] == 4
        log = store.log()
        pad = timedelta(hours=1)
        assert log.window_start == records[0].timestamp - pad
        assert log.window_end == records[-1].timestamp + pad

    def test_append_summary_shape(self, tmp_path, t2_small):
        store = init_store(
            tmp_path / "s", "tsubame2",
            window_start=t2_small.window_start,
            window_end=t2_small.window_end,
        )
        summary = store.append(t2_small)
        assert summary["rows"] == len(t2_small)
        assert summary["rows_total"] == len(t2_small)
        assert summary["segment"].startswith("seg-000000")
        assert summary["fingerprint"] == store.fingerprint

    def test_parity_with_cold_kernels(self, stored):
        _, store = stored
        payloads = store.payloads()
        assert set(payloads) == {
            "breakdown", "metrics", "spatial", "seasonal", "multigpu",
        }
        verify_parity(payloads, store.log())


class TestAppendInvariants:
    def test_non_monotone_batch_rejected(self, stored, t3_small):
        _, store = stored
        with pytest.raises(StoreError, match="not time-monotone"):
            store.append(sub_log(t3_small, 0, 5))

    def test_id_collision_rejected(self, tmp_path, t3_small):
        store = init_store(
            tmp_path / "s", t3_small.machine,
            window_start=t3_small.window_start,
            window_end=t3_small.window_end,
        )
        half = len(t3_small) // 2
        store.append(sub_log(t3_small, 0, half))
        # The second half, renumbered from zero: monotone in time but
        # every id collides with the committed first half.
        second = sub_log(t3_small, half, len(t3_small))
        renumbered = FailureLog(
            machine=second.machine,
            records=tuple(
                dataclasses.replace(r, record_id=i)
                for i, r in enumerate(second.records)
            ),
            window_start=second.window_start,
            window_end=second.window_end,
            _strict_taxonomy=second._strict_taxonomy,
        )
        with pytest.raises(StoreError, match="collides"):
            store.append(renumbered)

    def test_reindex_renumbers_sequentially(self, tmp_path, t2_small):
        store = init_store(
            tmp_path / "s", "tsubame2",
            window_start=t2_small.window_start,
            window_end=t2_small.window_end,
        )
        store.append(t2_small)
        last = max(r.record_id for r in t2_small.records)
        # Colliding ids (0..4) are renumbered after the committed tail.
        batch = _late_records(t2_small, 5, start_id=0)
        summary = store.append(batch, reindex=True)
        assert summary["rows"] == 5
        ids = [r.record_id for r in store.log().records[-5:]]
        assert ids == list(range(last + 1, last + 6))

    def test_machine_mismatch_rejected(self, tmp_path, t2_small):
        store = init_store(tmp_path / "s", "tsubame3")
        with pytest.raises(StoreError, match="tsubame3"):
            store.append(t2_small)

    def test_strictness_mismatch_rejected(self, tmp_path, t2_small):
        store = init_store(
            tmp_path / "s", "tsubame2", strict_taxonomy=False
        )
        with pytest.raises(StoreError, match="strictness"):
            store.append(t2_small)

    def test_empty_batch_rejected(self, tmp_path):
        store = init_store(tmp_path / "s", "tsubame2")
        with pytest.raises(StoreError, match="empty batch"):
            store.append([])

    def test_window_origin_is_fixed(self, stored, t3_small):
        _, store = stored
        # A monotone, non-colliding batch whose window starts one hour
        # late: rejected because the first append fixed the origin.
        late = dataclasses.replace(
            t3_small.records[-1],
            record_id=10_000,
            timestamp=t3_small.window_end - timedelta(microseconds=1),
        )
        shifted = FailureLog(
            machine=t3_small.machine,
            records=(late,),
            window_start=t3_small.window_start + timedelta(hours=1),
            window_end=t3_small.window_end,
            _strict_taxonomy=True,
        )
        with pytest.raises(StoreError, match="origin is fixed"):
            store.append(shifted)


class TestTimeTravel:
    def test_as_of_is_a_prefix_cut(self, stored, t3_small):
        path, _ = stored
        half = len(t3_small) // 2
        cutoff = t3_small.records[half - 1].timestamp
        view = open_store(path, as_of=cutoff)
        visible = [
            r for r in t3_small.records if r.timestamp <= cutoff
        ]
        assert view.rows == len(visible)
        log = view.log()
        assert log.records == tuple(visible)
        assert log.window_end == cutoff
        verify_parity(view.payloads(), log)

    def test_as_of_fingerprint_is_distinct_and_stable(
        self, stored, t3_small
    ):
        path, store = stored
        cutoff = t3_small.records[50].timestamp
        first = open_store(path, as_of=cutoff).fingerprint
        second = open_store(path, as_of=cutoff).fingerprint
        assert first == second
        assert first != store.fingerprint
        assert first.startswith(store.fingerprint + "@")

    def test_as_of_handle_is_read_only(self, stored, t3_small):
        path, _ = stored
        cutoff = t3_small.records[50].timestamp
        view = open_store(path, as_of=cutoff)
        with pytest.raises(StoreError, match="read-only"):
            view.append(t3_small)
        with pytest.raises(StoreError, match="read-only"):
            view.compact()

    def test_as_of_before_window_start_rejected(self, stored, t3_small):
        path, _ = stored
        with pytest.raises(StoreError, match="window"):
            open_store(
                path,
                as_of=t3_small.window_start - timedelta(hours=1),
            )


class TestFingerprint:
    def test_stable_across_reopen(self, stored):
        path, store = stored
        assert open_store(path).fingerprint == store.fingerprint

    def test_changes_on_append(self, stored, t3_small):
        _, store = stored
        before = store.fingerprint
        store.append(_late_records(t3_small, 3))
        assert store.fingerprint != before


class TestCompaction:
    def test_compaction_preserves_data_and_payloads(
        self, stored, t3_small
    ):
        path, store = stored
        before = _payload_bytes(store)
        summary = store.compact()
        assert summary["compacted"] is True
        assert summary["segments"] == 2
        assert len(store.segments) == 1
        assert_log_roundtrip(store.log(), t3_small)
        assert _payload_bytes(store) == before
        # A fresh open sees one generation-1 segment and equal bytes.
        reopened = open_store(path)
        assert reopened.manifest["generation"] == 1
        assert_log_roundtrip(reopened.log(), t3_small)
        assert _payload_bytes(reopened) == before

    def test_compact_noop_on_single_segment(self, tmp_path, t2_small):
        store = init_store(
            tmp_path / "s", "tsubame2",
            window_start=t2_small.window_start,
            window_end=t2_small.window_end,
        )
        store.append(t2_small)
        summary = store.compact()
        assert summary["compacted"] is False
        assert "reason" in summary

    def test_append_after_compact(self, stored, t3_small):
        _, store = stored
        store.compact()
        summary = store.append(_late_records(t3_small, 4))
        assert summary["rows_total"] == len(t3_small) + 4
        verify_parity(store.payloads(), store.log())

    def test_old_segment_files_are_deleted(self, stored):
        path, store = stored
        old = [s.path for s in store.segments]
        store.compact()
        for stale in old:
            assert not stale.exists()


class TestInfo:
    def test_info_shape(self, stored, t3_small):
        _, store = stored
        info = store.info()
        assert info["machine"] == "tsubame3"
        assert info["rows"] == len(t3_small)
        assert info["segments"] == 2
        assert info["appends"] == 2
        assert info["recovered"] is False
        assert info["quarantined"] == []
        assert info["analytics"]["rows"] == len(t3_small)
        assert "watermark" in info
        assert "window_start" in info

    def test_empty_store_info(self, tmp_path):
        store = init_store(tmp_path / "s", "tsubame2")
        info = store.info()
        assert info["rows"] == 0
        assert "window_start" not in info
        assert "watermark" not in info


class TestSinks:
    def test_ingest_log_creates_then_appends(self, tmp_path, t2_small):
        path = tmp_path / "s"
        half = len(t2_small) // 2
        first = ingest_log(path, sub_log(t2_small, 0, half))
        assert first["rows"] == half
        second = ingest_log(
            path, sub_log(t2_small, half, len(t2_small))
        )
        assert second["rows_total"] == len(t2_small)
        assert_log_roundtrip(open_store(path).log(), t2_small)

    def test_generator_to_store(self, tmp_path):
        generator = TraceGenerator(
            profile_for("tsubame2"),
            GeneratorConfig(seed=3, num_failures=40),
        )
        summary = generator.to_store(tmp_path / "s")
        assert summary["rows"] == 40
        assert_log_roundtrip(
            open_store(tmp_path / "s").log(), generator.generate()
        )

    def test_simulator_to_store(self, tmp_path):
        simulator = ClusterSimulator("tsubame2", seed=1)
        simulator.run(300.0)
        expected = simulator.injected_log()
        summary = simulator.to_store(tmp_path / "s")
        assert summary["rows"] == len(expected)
        store = open_store(tmp_path / "s")
        assert store.machine == "tsubame2"
        assert store.rows == len(expected)
