"""Fixtures and bit-identity helpers for the store test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.records import FailureLog
from repro.store import init_store
from repro.synth import GeneratorConfig, generate_log

#: ColumnarView array attributes a store round trip must preserve
#: bit-for-bit (values AND dtypes).
COLUMN_ATTRS = (
    "ts_hours",
    "node_ids",
    "ttr_hours",
    "category_codes",
    "class_codes",
    "gpu_counts",
    "gpu_category",
    "months",
    "weekdays",
    "hours_of_day",
    "slot_values",
    "slot_offsets",
)


def sub_log(log: FailureLog, start: int, stop: int) -> FailureLog:
    """A contiguous record slice carrying the full observation window.

    Batches appended to a store must share the store's window origin,
    so slices keep the parent log's window rather than shrinking it.
    """
    return FailureLog(
        machine=log.machine,
        records=log.records[start:stop],
        window_start=log.window_start,
        window_end=log.window_end,
        _strict_taxonomy=log._strict_taxonomy,
    )


def split_log(log: FailureLog, parts: int) -> list[FailureLog]:
    """Split a log into ``parts`` contiguous, time-ordered batches."""
    n = len(log.records)
    bounds = [round(i * n / parts) for i in range(parts + 1)]
    return [
        sub_log(log, a, b)
        for a, b in zip(bounds, bounds[1:])
        if b > a
    ]


def assert_log_roundtrip(actual: FailureLog, expected: FailureLog) -> None:
    """Assert two logs are bit-identical: records, window, columns."""
    assert actual.machine == expected.machine
    assert actual.window_start == expected.window_start
    assert actual.window_end == expected.window_end
    assert len(actual) == len(expected)
    assert actual.records == expected.records
    ours, theirs = actual.columns, expected.columns
    assert ours.category_names == theirs.category_names
    assert ours.taxonomy_complete == theirs.taxonomy_complete
    for name in COLUMN_ATTRS:
        a = getattr(ours, name)
        b = getattr(theirs, name)
        assert a.dtype == b.dtype, name
        assert np.array_equal(a, b), name


@pytest.fixture(scope="session")
def t3_small() -> FailureLog:
    """A small calibrated Tsubame-3 log (software loci + multi-GPU)."""
    return generate_log(
        "tsubame3", config=GeneratorConfig(seed=7, num_failures=160)
    )


@pytest.fixture(scope="session")
def t2_small() -> FailureLog:
    """A small calibrated Tsubame-2 log."""
    return generate_log(
        "tsubame2", config=GeneratorConfig(seed=7, num_failures=120)
    )


@pytest.fixture
def stored(tmp_path, t3_small):
    """A two-segment store holding ``t3_small``: ``(path, store)``."""
    path = tmp_path / "events.store"
    store = init_store(
        path,
        t3_small.machine,
        window_start=t3_small.window_start,
        window_end=t3_small.window_end,
    )
    for batch in split_log(t3_small, 2):
        store.append(batch)
    return path, store
