"""The ``repro-failures store`` command group, end to end."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.io import write_csv
from tests.store.conftest import split_log


@pytest.fixture
def halves(tmp_path, t2_small):
    """The t2_small log written to disk as two CSV halves."""
    paths = []
    for index, batch in enumerate(split_log(t2_small, 2)):
        path = tmp_path / f"half{index}.csv"
        write_csv(batch, path)
        paths.append(path)
    return paths


class TestLifecycle:
    def test_full_cycle(self, tmp_path, t2_small, halves, capsys):
        store = tmp_path / "events.store"

        assert main(["store", "init", str(store),
                     "--machine", "tsubame2"]) == 0
        assert "initialized tsubame2 store" in capsys.readouterr().out

        for path in halves:
            assert main(["store", "append", str(store), str(path)]) == 0
        out = capsys.readouterr().out
        assert f"({len(t2_small)} total" in out

        assert main(["store", "info", str(store)]) == 0
        out = capsys.readouterr().out
        assert "machine:          tsubame2" in out
        assert f"rows:             {len(t2_small)}" in out
        assert "segments:         2" in out
        assert "fingerprint:      store-" in out

        assert main(["store", "query", str(store)]) == 0
        out = capsys.readouterr().out
        assert "MTBF:" in out
        assert "MTTR:" in out
        assert "availability:" in out
        assert "dominant:" in out

        assert main(["store", "compact", str(store)]) == 0
        assert "compacted 2 segments" in capsys.readouterr().out
        # Compacting again is a no-op, not an error.
        assert main(["store", "compact", str(store)]) == 0
        assert "nothing to compact" in capsys.readouterr().out

        # Query still answers identically after compaction.
        assert main(["store", "query", str(store)]) == 0
        assert "MTBF:" in capsys.readouterr().out

    def test_query_as_of(self, tmp_path, t2_small, halves, capsys):
        store = tmp_path / "events.store"
        main(["store", "init", str(store), "--machine", "tsubame2"])
        for path in halves:
            main(["store", "append", str(store), str(path)])
        capsys.readouterr()

        half = len(t2_small) // 2
        cutoff = t2_small.records[half - 1].timestamp
        assert main(["store", "query", str(store),
                     "--as-of", cutoff.isoformat()]) == 0
        out = capsys.readouterr().out
        visible = sum(
            1 for r in t2_small.records if r.timestamp <= cutoff
        )
        assert f"({visible} failures)" in out
        assert cutoff.isoformat() in out


class TestErrors:
    def test_reappend_same_file_is_a_domain_error(
        self, tmp_path, halves, capsys
    ):
        store = tmp_path / "events.store"
        main(["store", "init", str(store), "--machine", "tsubame2"])
        assert main(["store", "append", str(store),
                     str(halves[0])]) == 0
        capsys.readouterr()
        # Appending the same half again breaks time-monotonicity.
        assert main(["store", "append", str(store),
                     str(halves[0])]) == 1
        err = capsys.readouterr().err
        assert "error:" in err
        assert "not time-monotone" in err

    def test_double_init_is_a_domain_error(self, tmp_path, capsys):
        store = tmp_path / "events.store"
        assert main(["store", "init", str(store),
                     "--machine", "tsubame2"]) == 0
        assert main(["store", "init", str(store),
                     "--machine", "tsubame2"]) == 1
        assert "already holds a store" in capsys.readouterr().err

    def test_missing_store_is_a_domain_error(self, tmp_path, capsys):
        assert main(["store", "info", str(tmp_path / "nope")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_bad_as_of_is_a_usage_error(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["store", "query", str(tmp_path / "s"),
                  "--as-of", "not-a-date"])
