"""Manifest commit/load atomicity, fallback, and fingerprints."""

from __future__ import annotations

import json

import pytest

from repro.errors import StoreCorruptError
from repro.store.manifest import (
    MANIFEST_NAME,
    PREV_MANIFEST_NAME,
    commit_manifest,
    load_manifest,
    manifest_fingerprint,
    new_manifest,
)
from repro.testing import flip_byte, truncate_file


def _fresh(tmp_path):
    manifest = new_manifest("tsubame2", 1, True)
    commit_manifest(tmp_path, manifest)
    return manifest


class TestCommitLoad:
    def test_round_trip(self, tmp_path):
        manifest = _fresh(tmp_path)
        loaded, recovered = load_manifest(tmp_path)
        assert recovered is False
        body = {k: v for k, v in loaded.items() if k != "checksum"}
        assert body == manifest

    def test_new_manifest_shape(self):
        manifest = new_manifest("tsubame3", 1, False)
        assert manifest["machine"] == "tsubame3"
        assert manifest["strict_taxonomy"] is False
        assert manifest["rows"] == 0
        assert manifest["last_record_id"] == -1
        assert manifest["watermark_us"] is None
        assert manifest["segments"] == []
        assert manifest["appends"] == []

    def test_second_commit_keeps_previous(self, tmp_path):
        _fresh(tmp_path)
        updated = dict(load_manifest(tmp_path)[0])
        del updated["checksum"]
        updated["rows"] = 7
        commit_manifest(tmp_path, updated)
        assert (tmp_path / PREV_MANIFEST_NAME).exists()
        prev = json.loads((tmp_path / PREV_MANIFEST_NAME).read_bytes())
        assert prev["rows"] == 0
        assert load_manifest(tmp_path)[0]["rows"] == 7

    def test_missing_directory_contents(self, tmp_path):
        with pytest.raises(StoreCorruptError, match="no store manifest"):
            load_manifest(tmp_path)


class TestFallback:
    def _two_commits(self, tmp_path):
        _fresh(tmp_path)
        updated = dict(load_manifest(tmp_path)[0])
        del updated["checksum"]
        updated["rows"] = 7
        commit_manifest(tmp_path, updated)

    def test_corrupt_current_falls_back(self, tmp_path):
        self._two_commits(tmp_path)
        flip_byte(tmp_path / MANIFEST_NAME, seed=3)
        loaded, recovered = load_manifest(tmp_path)
        assert recovered is True
        assert loaded["rows"] == 0  # the previous commit answered

    def test_truncated_current_falls_back(self, tmp_path):
        self._two_commits(tmp_path)
        truncate_file(tmp_path / MANIFEST_NAME, keep_fraction=0.5)
        loaded, recovered = load_manifest(tmp_path)
        assert recovered is True
        assert loaded["rows"] == 0

    def test_corrupt_current_without_previous_raises(self, tmp_path):
        _fresh(tmp_path)
        flip_byte(tmp_path / MANIFEST_NAME, seed=3)
        with pytest.raises(StoreCorruptError):
            load_manifest(tmp_path)

    def test_both_corrupt_raises(self, tmp_path):
        self._two_commits(tmp_path)
        flip_byte(tmp_path / MANIFEST_NAME, seed=3)
        flip_byte(tmp_path / PREV_MANIFEST_NAME, seed=4)
        with pytest.raises(
            StoreCorruptError, match="previous manifest"
        ):
            load_manifest(tmp_path)

    def test_tampered_body_fails_checksum(self, tmp_path):
        _fresh(tmp_path)
        path = tmp_path / MANIFEST_NAME
        manifest = json.loads(path.read_bytes())
        manifest["rows"] = 999  # edit without re-checksumming
        path.write_text(json.dumps(manifest))
        with pytest.raises(StoreCorruptError, match="checksum mismatch"):
            load_manifest(tmp_path)


class TestFingerprint:
    def test_stable_across_loads(self, tmp_path):
        _fresh(tmp_path)
        first = manifest_fingerprint(load_manifest(tmp_path)[0])
        second = manifest_fingerprint(load_manifest(tmp_path)[0])
        assert first == second
        assert first.startswith("store-")

    def test_changes_with_body(self, tmp_path):
        manifest = _fresh(tmp_path)
        changed = dict(manifest)
        changed["rows"] = 1
        assert manifest_fingerprint(manifest) != manifest_fingerprint(
            changed
        )

    def test_ignores_checksum_field(self, tmp_path):
        manifest = _fresh(tmp_path)
        loaded = load_manifest(tmp_path)[0]  # carries "checksum"
        assert manifest_fingerprint(loaded) == manifest_fingerprint(
            manifest
        )
