"""Segment files: layout, round trips, and corruption detection."""

from __future__ import annotations

from datetime import datetime

import numpy as np
import pytest

from repro.errors import StoreCorruptError, StoreError
from repro.store.segments import (
    COLUMN_DTYPES,
    datetimes_to_us,
    open_segment,
    us_to_datetime,
    write_segment,
)
from repro.store.writer import batch_columns
from repro.testing import flip_byte, truncate_file
from tests.conftest import make_log, make_record

_FOOTER_LEN = 8 + 8 + 32


def _sample_columns():
    log = make_log(
        [
            make_record(0, 1.0, node_id=3, category="GPU",
                        gpus_involved=(0, 2)),
            make_record(1, 5.5, node_id=1, category="CPU"),
            make_record(2, 9.25, node_id=3, category="GPU",
                        gpus_involved=(1,)),
            make_record(3, 20.0, node_id=9, category="SSD"),
        ]
    )
    return batch_columns(log)


@pytest.fixture
def segment_path(tmp_path):
    columns, categories, loci = _sample_columns()
    path = tmp_path / "seg-000000-g000.rps"
    entry = write_segment(path, columns, categories, loci)
    return path, columns, categories, loci, entry


class TestRoundTrip:
    def test_columns_round_trip_bit_identically(self, segment_path):
        path, columns, categories, loci, entry = segment_path
        segment = open_segment(path)
        assert segment.rows == 4
        assert len(segment) == 4
        assert segment.category_table == categories
        assert segment.locus_table == loci
        for name, dtype in COLUMN_DTYPES.items():
            array = segment.col(name)
            assert array.dtype == np.dtype(dtype), name
            assert np.array_equal(array, columns[name]), name

    def test_manifest_entry_matches_header(self, segment_path):
        path, columns, _, _, entry = segment_path
        segment = open_segment(path)
        assert entry["file"] == path.name
        assert entry["rows"] == segment.rows
        assert entry["nbytes"] == path.stat().st_size
        assert segment.min_ts_us == int(columns["ts_us"][0])
        assert segment.max_ts_us == int(columns["ts_us"][-1])
        assert segment.min_record_id == 0
        assert segment.max_record_id == 3

    def test_columns_are_read_only(self, segment_path):
        path = segment_path[0]
        segment = open_segment(path)
        with pytest.raises((ValueError, RuntimeError)):
            segment.col("node_id")[0] = 99

    def test_write_is_deterministic(self, tmp_path):
        columns, categories, loci = _sample_columns()
        a = write_segment(tmp_path / "a.rps", columns, categories, loci)
        b = write_segment(tmp_path / "b.rps", columns, categories, loci)
        assert a["sha256"] == b["sha256"]
        assert (tmp_path / "a.rps").read_bytes() == (
            tmp_path / "b.rps"
        ).read_bytes()


class TestValidation:
    def test_missing_column_rejected(self, tmp_path):
        columns, categories, loci = _sample_columns()
        del columns["ttr_hours"]
        with pytest.raises(StoreError, match="missing"):
            write_segment(tmp_path / "x.rps", columns, categories, loci)

    def test_extra_column_rejected(self, tmp_path):
        columns, categories, loci = _sample_columns()
        columns["bogus"] = columns["node_id"]
        with pytest.raises(StoreError, match="unexpected"):
            write_segment(tmp_path / "x.rps", columns, categories, loci)

    def test_length_mismatch_rejected(self, tmp_path):
        columns, categories, loci = _sample_columns()
        columns["node_id"] = columns["node_id"][:-1]
        with pytest.raises(StoreError, match="shape"):
            write_segment(tmp_path / "x.rps", columns, categories, loci)


class TestCorruptionDetection:
    def test_flipped_data_byte_fails_checksum(self, segment_path):
        path = segment_path[0]
        flip_byte(path, offset=-(_FOOTER_LEN + 1))
        with pytest.raises(StoreCorruptError, match="checksum mismatch"):
            open_segment(path)

    def test_verify_false_skips_digest_only(self, segment_path):
        # Structural checks still run; only the sha256 pass is skipped,
        # which is what lets appends reopen their own fsync'd file
        # cheaply.
        path = segment_path[0]
        flip_byte(path, offset=-(_FOOTER_LEN + 1))
        segment = open_segment(path, verify=False)
        assert segment.rows == 4

    def test_truncation_is_a_torn_write(self, segment_path):
        path = segment_path[0]
        truncate_file(path, keep_fraction=0.6)
        with pytest.raises(StoreCorruptError):
            open_segment(path)

    def test_truncation_to_nearly_nothing(self, segment_path):
        path = segment_path[0]
        truncate_file(path, keep_fraction=0.01)
        with pytest.raises(StoreCorruptError, match="too short"):
            open_segment(path)

    def test_bad_magic(self, segment_path):
        path = segment_path[0]
        flip_byte(path, offset=0)
        with pytest.raises(StoreCorruptError, match="magic"):
            open_segment(path)

    def test_corrupt_header_json(self, segment_path):
        path = segment_path[0]
        flip_byte(path, offset=20)  # inside the header JSON
        with pytest.raises(StoreCorruptError):
            open_segment(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(StoreCorruptError, match="unreadable"):
            open_segment(tmp_path / "nope.rps")


class TestTimestampCodec:
    def test_microsecond_round_trip_is_exact(self):
        stamps = [
            datetime(2013, 4, 1, 12, 30, 59, 999999),
            datetime(1999, 12, 31, 23, 59, 59, 1),
            datetime(2020, 2, 29, 0, 0, 0, 0),
        ]
        us = datetimes_to_us(stamps)
        assert us.dtype == np.int64
        assert [us_to_datetime(v) for v in us.tolist()] == stamps
