"""Crash-consistency: corruption is recovered or refused, never served.

Chaos injection (:mod:`repro.testing.chaos`) simulates torn writes and
bit rot on segment and manifest files.  The invariant under test: an
``open_store`` either recovers to a previously committed state
(dropping only the torn tail) or raises :class:`StoreCorruptError` —
it never silently returns wrong rows or wrong analytics.
"""

from __future__ import annotations

import json
import shutil

import pytest

from repro.errors import StoreCorruptError
from repro.store import open_store
from repro.store.manifest import MANIFEST_NAME, PREV_MANIFEST_NAME
from repro.store.views import verify_parity
from repro.testing import flip_byte, truncate_file
from tests.store.conftest import assert_log_roundtrip, sub_log

_FOOTER_LEN = 8 + 8 + 32


def _segment_files(path):
    return sorted(p for p in path.glob("seg-*.rps"))


def _first_batch_rows(store) -> int:
    return store.manifest["appends"][0]["rows"]


class TestTornTailSegment:
    @pytest.mark.parametrize("fault", ["truncate", "flip"])
    def test_tail_corruption_rolls_back_one_append(
        self, stored, t3_small, fault
    ):
        path, store = stored
        rows_before = _first_batch_rows(store)
        tail = _segment_files(path)[-1]
        if fault == "truncate":
            truncate_file(tail, keep_fraction=0.5)
        else:
            flip_byte(tail, offset=-(_FOOTER_LEN + 1))

        recovered = open_store(path)
        assert recovered.recovered is True
        assert recovered.rows == rows_before
        # The torn file is quarantined, not deleted.
        assert not tail.exists()
        assert tail.with_name(tail.name + ".torn").exists()
        # Rows and analytics are exactly the first batch's.
        prefix = sub_log(t3_small, 0, rows_before)
        assert recovered.log().records == prefix.records
        verify_parity(recovered.payloads(), recovered.log())

    def test_recovery_is_idempotent(self, stored):
        path, _ = stored
        truncate_file(_segment_files(path)[-1], keep_fraction=0.5)
        first = open_store(path)
        assert first.recovered is True
        # The healed manifest was re-committed: a second open is clean.
        second = open_store(path)
        assert second.recovered is False
        assert second.rows == first.rows
        assert second.fingerprint == first.fingerprint

    def test_append_after_recovery(self, stored, t3_small):
        path, store = stored
        rows_before = _first_batch_rows(store)
        truncate_file(_segment_files(path)[-1], keep_fraction=0.5)
        recovered = open_store(path)
        # The lost tail batch can simply be appended again.
        recovered.append(sub_log(t3_small, rows_before, len(t3_small)))
        assert_log_roundtrip(recovered.log(), t3_small)
        verify_parity(recovered.payloads(), recovered.log())

    def test_interior_corruption_refuses_to_drop_data(self, stored):
        path, _ = stored
        flip_byte(
            _segment_files(path)[0], offset=-(_FOOTER_LEN + 1)
        )
        with pytest.raises(StoreCorruptError, match="interior"):
            open_store(path)

    def test_verify_false_defers_digest_failures(self, stored):
        # verify=False skips the digest pass, so bit rot in a column
        # goes unnoticed at open — the documented trade-off; structural
        # tears are still caught.
        path, store = stored
        flip_byte(
            _segment_files(path)[-1], offset=-(_FOOTER_LEN + 1)
        )
        unverified = open_store(path, verify=False)
        assert unverified.recovered is False
        assert unverified.rows == store.rows


class TestTornManifest:
    def test_torn_manifest_falls_back_and_orphans_tail(
        self, stored, t3_small
    ):
        path, store = stored
        rows_before = _first_batch_rows(store)
        tail = _segment_files(path)[-1]
        flip_byte(path / MANIFEST_NAME, seed=11)

        recovered = open_store(path)
        assert recovered.recovered is True
        # The previous manifest predates the second append, so the
        # second segment is an unlisted file -> quarantined.
        assert recovered.rows == rows_before
        assert recovered.quarantined == [tail.name]
        assert tail.with_name(tail.name + ".orphan").exists()
        prefix = sub_log(t3_small, 0, rows_before)
        assert recovered.log().records == prefix.records
        verify_parity(recovered.payloads(), recovered.log())

    def test_both_manifests_corrupt_raises(self, stored):
        path, _ = stored
        flip_byte(path / MANIFEST_NAME, seed=11)
        flip_byte(path / PREV_MANIFEST_NAME, seed=12)
        with pytest.raises(StoreCorruptError):
            open_store(path)

    def test_truncated_manifest_falls_back(self, stored, t3_small):
        path, store = stored
        rows_before = _first_batch_rows(store)
        truncate_file(path / MANIFEST_NAME, keep_fraction=0.3)
        recovered = open_store(path)
        assert recovered.recovered is True
        assert recovered.rows == rows_before


class TestOrphans:
    def test_unlisted_segment_is_quarantined(self, stored, t3_small):
        path, store = stored
        stray = path / "seg-000099-g000.rps"
        shutil.copyfile(_segment_files(path)[-1], stray)

        recovered = open_store(path)
        assert recovered.quarantined == [stray.name]
        assert not stray.exists()
        assert stray.with_name(stray.name + ".orphan").exists()
        # The committed data is untouched.
        assert_log_roundtrip(recovered.log(), t3_small)


class TestViewsCorruption:
    def test_corrupt_views_never_serves_bad_analytics(
        self, stored, t3_small
    ):
        path, store = stored
        expected = json.dumps(store.payloads(), sort_keys=True)
        (path / "views.json").write_text('{"token": "store-x"}')
        reopened = open_store(path)
        assert json.dumps(reopened.payloads(), sort_keys=True) == expected
        verify_parity(reopened.payloads(), reopened.log())

    def test_truncated_views_rebuild(self, stored):
        path, store = stored
        expected = store.views().state()
        truncate_file(path / "views.json", keep_fraction=0.4)
        rebuilt = open_store(path).views().state()
        expected.pop("rate")
        rebuilt.pop("rate")
        assert rebuilt == expected
