"""Property-based tests: random interleavings never corrupt a store.

Hypothesis drives random logs through random append / compact / reopen
interleavings and asserts the two store contracts on every step:

* reads round-trip bit-identically (records, windows, column arrays);
* the incrementally materialized analytics match the cold
  :mod:`repro.core` kernels on every prefix (``verify_parity``).
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.store import init_store, open_store
from repro.store.views import verify_parity
from tests.conftest import make_log, make_record
from tests.store.conftest import assert_log_roundtrip, split_log, sub_log

_CATEGORIES = st.sampled_from(
    ["GPU", "CPU", "SSD", "FAN", "PBS", "Memory", "Network", "Boot"]
)


@st.composite
def _logs(draw):
    """A valid Tsubame-2 log: 2..30 time-sorted records, sequential ids."""
    n = draw(st.integers(min_value=2, max_value=30))
    hours = sorted(
        draw(
            st.lists(
                st.floats(min_value=1.0, max_value=999.0,
                          allow_nan=False, allow_infinity=False),
                min_size=n,
                max_size=n,
            )
        )
    )
    records = []
    for index, offset in enumerate(hours):
        category = draw(_CATEGORIES)
        gpus: tuple[int, ...] = ()
        if category == "GPU":
            gpus = tuple(
                sorted(draw(st.sets(st.integers(0, 2), max_size=3)))
            )
        records.append(
            make_record(
                index,
                offset,
                node_id=draw(st.integers(0, 40)),
                category=category,
                ttr_hours=draw(
                    st.floats(min_value=0.1, max_value=200.0,
                              allow_nan=False)
                ),
                gpus_involved=gpus,
            )
        )
    return make_log(records)


class TestInterleavings:
    @given(
        log=_logs(),
        parts=st.integers(min_value=1, max_value=4),
        compacts=st.lists(st.booleans(), min_size=4, max_size=4),
        reopens=st.lists(st.booleans(), min_size=4, max_size=4),
    )
    @settings(max_examples=15, deadline=None)
    def test_random_interleavings_round_trip(
        self, log, parts, compacts, reopens
    ):
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "events.store"
            store = init_store(
                path,
                log.machine,
                window_start=log.window_start,
                window_end=log.window_end,
            )
            consumed = 0
            for step, batch in enumerate(split_log(log, parts)):
                store.append(batch)
                consumed += len(batch)
                if compacts[step]:
                    store.compact()
                if reopens[step]:
                    store = open_store(path)
                # Prefix reads are exact after every operation...
                prefix = sub_log(log, 0, consumed)
                assert store.log().records == prefix.records
                # ... and the incremental analytics match the cold
                # kernels recomputed from scratch on the prefix.
                verify_parity(store.payloads(), store.log())
            assert_log_roundtrip(open_store(path).log(), log)

    @given(log=_logs(), parts=st.integers(min_value=2, max_value=5))
    @settings(max_examples=10, deadline=None)
    def test_payloads_are_split_invariant(self, log, parts):
        import json

        with tempfile.TemporaryDirectory() as tmp:
            one = init_store(
                Path(tmp) / "one", log.machine,
                window_start=log.window_start,
                window_end=log.window_end,
            )
            one.append(log)
            many = init_store(
                Path(tmp) / "many", log.machine,
                window_start=log.window_start,
                window_end=log.window_end,
            )
            for batch in split_log(log, parts):
                many.append(batch)
            assert json.dumps(
                many.payloads(), sort_keys=True
            ) == json.dumps(one.payloads(), sort_keys=True)
            assert_log_roundtrip(many.log(), one.log())
