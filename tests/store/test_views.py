"""Incremental materialized analytics: parity, invariance, persistence."""

from __future__ import annotations

import json

import pytest

from repro.errors import StoreCorruptError
from repro.store import init_store, open_store
from repro.store.manifest import manifest_fingerprint
from repro.store.segments import datetimes_to_us
from repro.store.views import VIEWS_NAME, StoreViews, verify_parity
from repro.store.writer import batch_columns
from tests.store.conftest import split_log, sub_log


def _payload_json(views: StoreViews, end_us: int) -> str:
    return json.dumps(views.payloads(end_us), sort_keys=True)


class TestIncrementalParity:
    def test_every_prefix_matches_cold_kernels(self, tmp_path, t3_small):
        """After every append, payloads == the cold repro.core kernels."""
        store = init_store(
            tmp_path / "s", t3_small.machine,
            window_start=t3_small.window_start,
            window_end=t3_small.window_end,
        )
        consumed = 0
        for batch in split_log(t3_small, 4):
            store.append(batch)
            consumed += len(batch)
            prefix = sub_log(t3_small, 0, consumed)
            verify_parity(store.payloads(), prefix)

    def test_batch_split_invariance(self, t3_small):
        """The views state depends on the record sequence, not on how
        it was chopped into batches."""
        start_us = int(datetimes_to_us([t3_small.window_start])[0])
        end_us = int(datetimes_to_us([t3_small.window_end])[0])
        rendered: list[str] = []
        for parts in (1, 3, 7):
            views = StoreViews(t3_small.machine, start_us)
            for batch in split_log(t3_small, parts):
                views.absorb(*batch_columns(batch))
            rendered.append(_payload_json(views, end_us))
        assert rendered[0] == rendered[1] == rendered[2]

    def test_verify_parity_catches_divergence(self, stored):
        _, store = stored
        payloads = store.payloads()
        payloads["breakdown"] = dict(payloads["breakdown"])
        payloads["breakdown"]["failures"] += 1
        with pytest.raises(StoreCorruptError, match="diverge"):
            verify_parity(payloads, store.log())


class TestStateRoundTrip:
    def test_state_is_its_own_inverse(self, stored):
        _, store = stored
        views = store.views()
        restored = StoreViews.from_state(views.state())
        assert restored.state() == views.state()
        end_us = store._window_end_us
        assert _payload_json(restored, end_us) == _payload_json(
            views, end_us
        )

    def test_info_shape(self, stored, t3_small):
        _, store = stored
        info = store.views().info()
        assert info["rows"] == len(t3_small)
        assert info["gpu_involved_failures"] > 0
        assert set(info["ttr_hours"]) == {"mean", "p50", "p90", "p99"}
        assert info["recent_rate_per_hour"] > 0


class TestPersistence:
    def test_save_load_round_trip(self, stored):
        path, store = stored
        token = manifest_fingerprint(store.manifest)
        loaded = StoreViews.load(path, token)
        assert loaded is not None
        assert loaded.state() == store.views().state()

    def test_wrong_token_means_rebuild(self, stored):
        path, _ = stored
        assert StoreViews.load(path, "store-nope") is None

    def test_corrupt_views_file_means_rebuild(self, stored):
        path, store = stored
        (path / VIEWS_NAME).write_text("{not json")
        token = manifest_fingerprint(store.manifest)
        assert StoreViews.load(path, token) is None
        # open_store quietly rebuilds bit-identical views.
        reopened = open_store(path)
        assert reopened.views().state() == store.views().state()

    def test_missing_views_file_rebuilds_identically(self, stored):
        path, store = stored
        expected = store.views().state()
        (path / VIEWS_NAME).unlink()
        reopened = open_store(path)
        assert reopened.views().state() == expected
        # ... and re-persists for the next open.
        assert (path / VIEWS_NAME).exists()

    def test_version_mismatch_means_rebuild(self, stored):
        path, store = stored
        token = manifest_fingerprint(store.manifest)
        saved = json.loads((path / VIEWS_NAME).read_bytes())
        saved["state"]["version"] = 999
        (path / VIEWS_NAME).write_text(json.dumps(saved))
        assert StoreViews.load(path, token) is None

    def test_rebuild_equals_incremental_state(self, stored):
        """The open-time rebuild path reproduces the append-time state
        bit-for-bit (EWMA aside, which is batch-boundary sensitive and
        diagnostic-only)."""
        path, store = stored
        incremental = store.views().state()
        (path / VIEWS_NAME).unlink()
        rebuilt = open_store(path).views().state()
        incremental.pop("rate")
        rebuilt.pop("rate")
        assert rebuilt == incremental
