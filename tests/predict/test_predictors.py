"""Tests for the failure predictors and their evaluation."""

import math

import pytest

from repro.errors import AnalysisError, ValidationError
from repro.predict import (
    Alarm,
    RateBasedPredictor,
    TemporalLocalityPredictor,
    evaluate_predictor,
)
from tests.conftest import make_log, make_record


class TestAlarm:
    def test_covers_window(self):
        alarm = Alarm(node_id=3, raised_at_hours=10.0, horizon_hours=5.0)
        assert alarm.covers(3, 12.0)
        assert alarm.covers(3, 15.0)
        assert not alarm.covers(3, 10.0)  # not the raising instant
        assert not alarm.covers(3, 15.1)
        assert not alarm.covers(4, 12.0)

    def test_expiry(self):
        alarm = Alarm(node_id=0, raised_at_hours=2.0, horizon_hours=3.0)
        assert alarm.expires_at_hours == 5.0

    def test_invalid_horizon_rejected(self):
        with pytest.raises(ValidationError):
            Alarm(node_id=0, raised_at_hours=0.0, horizon_hours=0.0)


class TestRateBasedPredictor:
    def test_alarm_after_threshold(self):
        predictor = RateBasedPredictor(window_hours=100.0, threshold=2,
                                       horizon_hours=50.0)
        first = predictor.observe(make_record(0, hours=10, node_id=7),
                                  10.0)
        second = predictor.observe(make_record(1, hours=20, node_id=7),
                                   20.0)
        assert first == []
        assert len(second) == 1
        assert second[0].node_id == 7

    def test_window_expiry_resets_count(self):
        predictor = RateBasedPredictor(window_hours=5.0, threshold=2)
        predictor.observe(make_record(0, hours=0, node_id=1), 0.0)
        late = predictor.observe(make_record(1, hours=100, node_id=1),
                                 100.0)
        assert late == []

    def test_different_nodes_tracked_separately(self):
        predictor = RateBasedPredictor(threshold=2)
        predictor.observe(make_record(0, hours=0, node_id=1), 0.0)
        other = predictor.observe(make_record(1, hours=1, node_id=2), 1.0)
        assert other == []

    def test_reset_clears_state(self):
        predictor = RateBasedPredictor(threshold=2, window_hours=1000.0)
        predictor.observe(make_record(0, hours=0, node_id=1), 0.0)
        predictor.reset()
        after = predictor.observe(make_record(1, hours=1, node_id=1), 1.0)
        assert after == []

    def test_invalid_params_rejected(self):
        with pytest.raises(ValidationError):
            RateBasedPredictor(window_hours=0.0)
        with pytest.raises(ValidationError):
            RateBasedPredictor(threshold=0)
        with pytest.raises(ValidationError):
            RateBasedPredictor(horizon_hours=-1.0)


class TestTemporalLocalityPredictor:
    def test_multi_gpu_failure_triggers_alarms(self):
        predictor = TemporalLocalityPredictor()
        predictor.observe(
            make_record(0, hours=0, node_id=1, category="GPU",
                        gpus_involved=(0,)),
            0.0,
        )
        alarms = predictor.observe(
            make_record(1, hours=5, node_id=2, category="GPU",
                        gpus_involved=(0, 1)),
            5.0,
        )
        nodes = {alarm.node_id for alarm in alarms}
        assert nodes == {1, 2}

    def test_single_gpu_failure_raises_nothing(self):
        predictor = TemporalLocalityPredictor()
        alarms = predictor.observe(
            make_record(0, hours=0, node_id=1, category="GPU",
                        gpus_involved=(0,)),
            0.0,
        )
        assert alarms == []

    def test_memory_expiry(self):
        predictor = TemporalLocalityPredictor(memory_hours=10.0)
        predictor.observe(
            make_record(0, hours=0, node_id=1, category="GPU",
                        gpus_involved=(0,)),
            0.0,
        )
        alarms = predictor.observe(
            make_record(1, hours=100, node_id=2, category="GPU",
                        gpus_involved=(0, 1)),
            100.0,
        )
        assert {a.node_id for a in alarms} == {2}

    def test_invalid_params_rejected(self):
        with pytest.raises(ValidationError):
            TemporalLocalityPredictor(min_gpus=1)
        with pytest.raises(ValidationError):
            TemporalLocalityPredictor(horizon_hours=0.0)


class TestEvaluation:
    def test_repeat_offender_scenario(self):
        # Node 9 fails every 10 hours; the rate predictor should cover
        # every failure after the second.
        records = [
            make_record(i, hours=10.0 * (i + 1), node_id=9)
            for i in range(10)
        ]
        log = make_log(records)
        predictor = RateBasedPredictor(window_hours=50.0, threshold=2,
                                       horizon_hours=50.0)
        outcome = evaluate_predictor(predictor, log)
        assert outcome.predicted_failures == 8
        assert outcome.recall == pytest.approx(0.8)
        assert outcome.precision > 0.8
        assert outcome.mean_lead_time_hours > 0.0

    def test_no_alarms_zero_scores(self):
        records = [make_record(i, hours=100.0 * (i + 1), node_id=i)
                   for i in range(5)]
        log = make_log(records)
        predictor = RateBasedPredictor(window_hours=10.0, threshold=2)
        outcome = evaluate_predictor(predictor, log)
        assert outcome.recall == 0.0
        assert outcome.precision == 0.0
        assert math.isnan(outcome.mean_lead_time_hours)

    def test_no_peeking(self):
        # The alarm raised by a failure must not cover that failure.
        records = [make_record(0, hours=10.0, node_id=1)]
        log = make_log(records)
        predictor = RateBasedPredictor(window_hours=100.0, threshold=1)
        outcome = evaluate_predictor(predictor, log)
        assert outcome.predicted_failures == 0
        assert outcome.total_alarms == 1

    def test_empty_log_rejected(self):
        with pytest.raises(AnalysisError):
            evaluate_predictor(RateBasedPredictor(), make_log([]))

    def test_locality_predictor_scores_on_calibrated_log(self, t2_log):
        predictor = TemporalLocalityPredictor(horizon_hours=200.0)
        outcome = evaluate_predictor(predictor, t2_log)
        assert outcome.total_alarms > 0
        assert 0.0 <= outcome.recall <= 1.0
        assert 0.0 <= outcome.precision <= 1.0

    def test_rate_predictor_beats_nothing_on_calibrated_log(self, t3_log):
        # Tsubame-3 nodes repeat a lot (Figure 4b) => positive recall.
        predictor = RateBasedPredictor(window_hours=8000.0, threshold=2,
                                       horizon_hours=8000.0)
        outcome = evaluate_predictor(predictor, t3_log)
        assert outcome.recall > 0.15
        assert outcome.precision > 0.4
