"""Tests for the spare-provisioning planner."""

import pytest

from repro.core import taxonomy
from repro.core.taxonomy import FailureClass
from repro.errors import ValidationError
from repro.predict import plan_spares
from tests.conftest import make_log, make_record


def _dense_gpu_log(n=100, span=1000.0):
    records = [
        make_record(i, hours=(i + 1) * span / (n + 1), category="GPU")
        for i in range(n)
    ]
    return make_log(records, span_hours=span)


class TestPlanSpares:
    def test_only_hardware_categories_planned(self, t2_log):
        plan = plan_spares(t2_log)
        for entry in plan.entries:
            assert (
                taxonomy.failure_class("tsubame2", entry.category)
                is FailureClass.HARDWARE
            )

    def test_gpu_gets_most_stock_on_t2(self, t2_log):
        plan = plan_spares(t2_log)
        gpu_stock = plan.stock_for("GPU")
        assert gpu_stock == max(e.recommended_stock for e in plan.entries)
        assert gpu_stock >= 5

    def test_higher_rate_needs_more_stock(self):
        sparse = plan_spares(_dense_gpu_log(n=10))
        dense = plan_spares(_dense_gpu_log(n=200))
        assert dense.stock_for("GPU") > sparse.stock_for("GPU")

    def test_longer_lead_time_needs_more_stock(self, t2_log):
        short = plan_spares(t2_log, lead_time_hours=24.0)
        long = plan_spares(t2_log, lead_time_hours=720.0)
        assert long.total_stock > short.total_stock

    def test_stricter_target_needs_more_stock(self, t2_log):
        loose = plan_spares(t2_log, target_stockout_probability=0.20)
        strict = plan_spares(t2_log, target_stockout_probability=0.001)
        assert strict.total_stock > loose.total_stock

    def test_stockout_probability_below_target(self, t2_log):
        plan = plan_spares(t2_log, target_stockout_probability=0.05)
        for entry in plan.entries:
            assert entry.stockout_probability <= 0.05 + 1e-12

    def test_lead_time_demand_formula(self):
        plan = plan_spares(_dense_gpu_log(n=100, span=1000.0),
                           lead_time_hours=100.0)
        entry = plan.entries[0]
        assert entry.failure_rate_per_hour == pytest.approx(0.1)
        assert entry.lead_time_demand == pytest.approx(10.0)

    def test_as_mapping_roundtrip(self, t3_log):
        plan = plan_spares(t3_log)
        mapping = plan.as_mapping()
        assert mapping.get("GPU") == plan.stock_for("GPU")

    def test_unplanned_category_stock_zero(self, t2_log):
        assert plan_spares(t2_log).stock_for("PBS") == 0

    def test_invalid_params_rejected(self, t2_log):
        with pytest.raises(ValidationError):
            plan_spares(t2_log, lead_time_hours=0.0)
        with pytest.raises(ValidationError):
            plan_spares(t2_log, target_stockout_probability=0.0)
        with pytest.raises(ValidationError):
            plan_spares(make_log([]))

    def test_plan_feeds_simulator(self, t2_log):
        # End-to-end: a provisioned simulator sees fewer stockouts.
        from repro.sim import ClusterSimulator

        plan = plan_spares(t2_log, target_stockout_probability=0.01)
        unprovisioned = ClusterSimulator(
            "tsubame2", seed=11,
            initial_spares={name: 0 for name in plan.as_mapping()},
        ).run(1500.0)
        provisioned = ClusterSimulator(
            "tsubame2", seed=11, initial_spares=plan.as_mapping(),
        ).run(1500.0)
        assert provisioned.spare_stockouts < unprovisioned.spare_stockouts
        assert (provisioned.effective_mttr_hours
                <= unprovisioned.effective_mttr_hours)
