"""Tests for the Markov category model and predictor tuning."""

import math

import pytest

from repro.errors import AnalysisError
from repro.predict.markov import fit_markov_model, sequence_gain
from repro.predict.tuning import best_by_f1, sweep_rate_predictor
from tests.conftest import make_log, make_record


def _alternating_log(n=40):
    records = []
    for index in range(n):
        category = "GPU" if index % 2 == 0 else "FAN"
        records.append(
            make_record(index, hours=index + 1.0, category=category)
        )
    return make_log(records)


class TestMarkovModel:
    def test_rows_are_distributions(self, t2_log):
        model = fit_markov_model(t2_log)
        for row in model.transition.values():
            assert sum(row.values()) == pytest.approx(1.0)
            assert all(p > 0 for p in row.values())
        assert sum(model.marginal.values()) == pytest.approx(1.0)

    def test_alternating_sequence_learned(self):
        model = fit_markov_model(_alternating_log(), smoothing=0.1)
        assert model.most_likely_next("GPU") == "FAN"
        assert model.most_likely_next("FAN") == "GPU"
        assert model.transition["GPU"]["FAN"] > 0.9

    def test_unknown_category_rejected(self):
        model = fit_markov_model(_alternating_log())
        with pytest.raises(AnalysisError):
            model.next_distribution("Lustre")

    def test_sequence_likelihood_prefers_patterned_data(self):
        model = fit_markov_model(_alternating_log(), smoothing=0.1)
        patterned = ["GPU", "FAN"] * 5
        clumped = ["GPU"] * 10
        assert (model.sequence_log_likelihood(patterned)
                > model.sequence_log_likelihood(clumped))

    def test_empty_sequence_rejected(self):
        model = fit_markov_model(_alternating_log())
        with pytest.raises(AnalysisError):
            model.sequence_log_likelihood([])
        with pytest.raises(AnalysisError):
            model.iid_log_likelihood([])

    def test_short_log_rejected(self):
        with pytest.raises(AnalysisError):
            fit_markov_model(make_log([make_record(0, hours=1)]))

    def test_bad_smoothing_rejected(self, t2_log):
        with pytest.raises(AnalysisError):
            fit_markov_model(t2_log, smoothing=0.0)


class TestSequenceGain:
    def test_positive_on_patterned_sequence(self):
        gain = sequence_gain(_alternating_log(n=200))
        assert gain > 0.3

    def test_near_zero_on_calibrated_logs(self, t2_log):
        # The generator shuffles categories i.i.d., so the chain should
        # not beat the marginal by much (burstiness only exists in GPU
        # involvement, not category order).
        gain = sequence_gain(t2_log)
        assert abs(gain) < 0.25

    def test_bad_fraction_rejected(self, t2_log):
        with pytest.raises(AnalysisError):
            sequence_gain(t2_log, train_fraction=1.0)

    def test_short_log_rejected(self):
        with pytest.raises(AnalysisError):
            sequence_gain(_alternating_log(n=3), train_fraction=0.5)

    def test_gain_is_finite(self, t3_log):
        assert math.isfinite(sequence_gain(t3_log))


class TestPredictorSweep:
    def test_sweep_covers_grid(self, t3_log):
        points = sweep_rate_predictor(
            t3_log, window_grid=(1000.0, 8000.0), threshold_grid=(2, 3)
        )
        assert len(points) == 4
        configs = {(p.window_hours, p.threshold) for p in points}
        assert (8000.0, 2) in configs

    def test_larger_window_raises_recall(self, t3_log):
        points = sweep_rate_predictor(
            t3_log, window_grid=(500.0, 8000.0), threshold_grid=(2,)
        )
        small, large = sorted(points, key=lambda p: p.window_hours)
        assert large.outcome.recall >= small.outcome.recall

    def test_higher_threshold_lowers_alarm_count(self, t3_log):
        points = sweep_rate_predictor(
            t3_log, window_grid=(8000.0,), threshold_grid=(2, 4)
        )
        by_threshold = {p.threshold: p for p in points}
        assert (by_threshold[4].outcome.total_alarms
                <= by_threshold[2].outcome.total_alarms)

    def test_best_by_f1(self, t3_log):
        points = sweep_rate_predictor(t3_log)
        best = best_by_f1(points)
        assert best.f1 == max(p.f1 for p in points)
        assert best.f1 > 0.0

    def test_f1_zero_when_no_alarms(self):
        # Spread failures so no node repeats within any window.
        records = [
            make_record(i, hours=i + 1.0, node_id=i) for i in range(10)
        ]
        log = make_log(records)
        points = sweep_rate_predictor(
            log, window_grid=(10.0,), threshold_grid=(2,)
        )
        assert points[0].f1 == 0.0

    def test_invalid_inputs(self, t3_log):
        with pytest.raises(AnalysisError):
            sweep_rate_predictor(t3_log, window_grid=())
        with pytest.raises(AnalysisError):
            best_by_f1([])
        with pytest.raises(AnalysisError):
            sweep_rate_predictor(make_log([]))
