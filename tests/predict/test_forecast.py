"""Tests for the TBF forecaster."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.predict.forecast import TbfForecaster, evaluate_forecaster
from tests.conftest import make_log, make_record


def _feed(forecaster, gaps):
    for gap in gaps:
        forecaster.observe_gap(gap)


class TestTbfForecaster:
    def test_not_ready_until_min_history(self):
        forecaster = TbfForecaster(min_history=10)
        _feed(forecaster, [5.0] * 9)
        assert not forecaster.ready
        with pytest.raises(AnalysisError):
            forecaster.quantile_hours(0.5)
        forecaster.observe_gap(5.0)
        assert forecaster.ready

    def test_recovers_exponential_scale(self):
        rng = np.random.default_rng(0)
        forecaster = TbfForecaster(min_history=30)
        _feed(forecaster, rng.exponential(20.0, size=500).tolist())
        assert forecaster.expected_hours() == pytest.approx(20.0,
                                                            rel=0.1)

    def test_quantiles_monotone(self):
        rng = np.random.default_rng(1)
        forecaster = TbfForecaster()
        _feed(forecaster, rng.exponential(10.0, size=100).tolist())
        assert (forecaster.quantile_hours(0.25)
                < forecaster.quantile_hours(0.5)
                < forecaster.quantile_hours(0.9))

    def test_probability_within_increases(self):
        rng = np.random.default_rng(2)
        forecaster = TbfForecaster()
        _feed(forecaster, rng.exponential(10.0, size=100).tolist())
        assert (forecaster.probability_within(5.0)
                < forecaster.probability_within(20.0) <= 1.0)
        assert forecaster.probability_within(0.0) == 0.0

    def test_zero_gap_floored(self):
        forecaster = TbfForecaster(min_history=5)
        _feed(forecaster, [0.0, 1.0, 2.0, 3.0, 4.0])
        assert forecaster.ready  # no crash from a zero support point

    def test_negative_gap_rejected(self):
        with pytest.raises(AnalysisError):
            TbfForecaster().observe_gap(-1.0)

    def test_refit_after_new_data(self):
        rng = np.random.default_rng(3)
        forecaster = TbfForecaster(min_history=30)
        _feed(forecaster, rng.exponential(10.0, size=50).tolist())
        before = forecaster.expected_hours()
        _feed(forecaster, rng.exponential(100.0, size=200).tolist())
        after = forecaster.expected_hours()
        assert after > 2 * before

    def test_bad_min_history_rejected(self):
        with pytest.raises(AnalysisError):
            TbfForecaster(min_history=2)


class TestEvaluateForecaster:
    def test_calibrated_on_generated_logs(self, t2_log):
        calibration = evaluate_forecaster(t2_log)
        assert calibration.num_forecasts > 800
        assert calibration.is_calibrated(tolerance=0.08)

    def test_coverage_keys_match_quantiles(self, t3_log):
        calibration = evaluate_forecaster(
            t3_log, quantiles=(0.5, 0.9), min_history=30
        )
        assert set(calibration.coverage) == {0.5, 0.9}

    def test_mae_positive(self, t3_log):
        calibration = evaluate_forecaster(t3_log)
        assert calibration.mean_absolute_error_hours > 0.0

    def test_too_short_log_rejected(self):
        records = [make_record(i, hours=i + 1.0) for i in range(10)]
        with pytest.raises(AnalysisError):
            evaluate_forecaster(make_log(records))

    def test_bad_quantiles_rejected(self, t3_log):
        with pytest.raises(AnalysisError):
            evaluate_forecaster(t3_log, quantiles=(0.0,))

    def test_bad_tolerance_rejected(self, t3_log):
        calibration = evaluate_forecaster(t3_log)
        with pytest.raises(AnalysisError):
            calibration.is_calibrated(tolerance=0.0)
