"""Tests for the calibration profiles."""

from dataclasses import replace

import pytest

from repro.errors import CalibrationError, ValidationError
from repro.synth.profiles import (
    TSUBAME2_PROFILE,
    TSUBAME3_PROFILE,
    profile_for,
)


class TestProfileLookup:
    def test_profiles_registered(self):
        assert profile_for("tsubame2") is TSUBAME2_PROFILE
        assert profile_for("tsubame3") is TSUBAME3_PROFILE

    def test_unknown_machine_rejected(self):
        with pytest.raises(CalibrationError):
            profile_for("tsubame1")


class TestTsubame2Targets:
    def test_total_failures(self):
        assert TSUBAME2_PROFILE.total_failures == 897

    def test_category_counts_sum(self):
        assert sum(TSUBAME2_PROFILE.category_counts.values()) == 897

    def test_stated_shares(self):
        assert TSUBAME2_PROFILE.category_share("GPU") == pytest.approx(
            0.4437, abs=0.0005
        )
        assert TSUBAME2_PROFILE.category_share("CPU") == pytest.approx(
            0.0178, abs=0.0005
        )
        assert TSUBAME2_PROFILE.category_share("SSD") == pytest.approx(
            0.04, abs=0.005
        )

    def test_involvement_matches_table3(self):
        assert TSUBAME2_PROFILE.gpu_involvement_counts == {
            1: 112, 2: 128, 3: 128,
        }
        total = (sum(TSUBAME2_PROFILE.gpu_involvement_counts.values())
                 + TSUBAME2_PROFILE.gpu_involvement_unrecorded)
        assert total == TSUBAME2_PROFILE.category_counts["GPU"]

    def test_tbf_mean_matches_span(self):
        assert TSUBAME2_PROFILE.tbf_mean_hours == pytest.approx(15.3,
                                                                abs=0.1)

    def test_implied_mttr_near_target(self):
        assert TSUBAME2_PROFILE.implied_mttr_hours() == pytest.approx(
            55.0, rel=0.10
        )

    def test_node_distribution_sums_to_one(self):
        assert sum(
            TSUBAME2_PROFILE.node_count_distribution.values()
        ) == pytest.approx(1.0)

    def test_no_root_loci_on_t2(self):
        assert TSUBAME2_PROFILE.root_locus_counts is None


class TestTsubame3Targets:
    def test_total_failures(self):
        assert TSUBAME3_PROFILE.total_failures == 338

    def test_stated_shares(self):
        assert TSUBAME3_PROFILE.category_share("Software") == pytest.approx(
            0.5059, abs=0.0005
        )
        assert TSUBAME3_PROFILE.category_share("GPU") == pytest.approx(
            0.2781, abs=0.0005
        )
        assert TSUBAME3_PROFILE.category_share("CPU") == pytest.approx(
            0.0325, abs=0.0005
        )
        assert TSUBAME3_PROFILE.category_share(
            "Power-Board"
        ) == pytest.approx(0.01, abs=0.003)

    def test_involvement_matches_table3(self):
        counts = TSUBAME3_PROFILE.gpu_involvement_counts
        assert counts[1] == 75
        assert counts[2] == 4
        assert counts[3] == 2
        assert counts[4] == 0

    def test_root_loci_sum_to_software_count(self):
        assert sum(TSUBAME3_PROFILE.root_locus_counts.values()) == 171

    def test_root_loci_headline_shares(self):
        loci = TSUBAME3_PROFILE.root_locus_counts
        assert loci["gpu_driver"] / 171 == pytest.approx(0.43, abs=0.01)
        assert loci["unknown"] / 171 == pytest.approx(0.20, abs=0.01)

    def test_four_gpu_slots(self):
        assert len(TSUBAME3_PROFILE.gpu_slot_weights) == 4

    def test_implied_mttr_near_target(self):
        assert TSUBAME3_PROFILE.implied_mttr_hours() == pytest.approx(
            55.0, rel=0.10
        )

    def test_mean_failures_per_node_higher_than_t2(self):
        assert (TSUBAME3_PROFILE.mean_failures_per_affected_node
                > TSUBAME2_PROFILE.mean_failures_per_affected_node)


class TestProfileValidation:
    def test_mismatched_category_sum_rejected(self):
        counts = dict(TSUBAME2_PROFILE.category_counts)
        counts["GPU"] += 1
        with pytest.raises(CalibrationError):
            replace(TSUBAME2_PROFILE, category_counts=counts)

    def test_unknown_category_rejected(self):
        counts = dict(TSUBAME2_PROFILE.category_counts)
        counts["Lustre"] = counts.pop("Rack")
        with pytest.raises(ValidationError):
            replace(TSUBAME2_PROFILE, category_counts=counts)

    def test_missing_ttr_mean_rejected(self):
        means = dict(TSUBAME2_PROFILE.category_ttr_mean_hours)
        del means["GPU"]
        with pytest.raises(CalibrationError):
            replace(TSUBAME2_PROFILE, category_ttr_mean_hours=means)

    def test_bad_node_distribution_rejected(self):
        with pytest.raises(CalibrationError):
            replace(
                TSUBAME2_PROFILE,
                node_count_distribution={1: 0.5, 2: 0.4},
            )

    def test_wrong_slot_weight_count_rejected(self):
        with pytest.raises(CalibrationError):
            replace(TSUBAME2_PROFILE, gpu_slot_weights=(1.0, 1.0))

    def test_involvement_beyond_node_rejected(self):
        with pytest.raises(CalibrationError):
            replace(
                TSUBAME2_PROFILE,
                gpu_involvement_counts={1: 112, 2: 128, 4: 128},
            )

    def test_involvement_total_mismatch_rejected(self):
        with pytest.raises(CalibrationError):
            replace(TSUBAME2_PROFILE, gpu_involvement_unrecorded=31)

    def test_wrong_month_weight_count_rejected(self):
        with pytest.raises(CalibrationError):
            replace(TSUBAME2_PROFILE, month_weights=(1.0,) * 11)

    def test_bad_burst_probability_rejected(self):
        with pytest.raises(ValidationError):
            replace(TSUBAME2_PROFILE, burst_continue_probability=1.2)

    def test_unknown_root_locus_rejected(self):
        loci = dict(TSUBAME3_PROFILE.root_locus_counts)
        loci["cosmic_rays"] = loci.pop("kernel_panic")
        with pytest.raises(CalibrationError):
            replace(TSUBAME3_PROFILE, root_locus_counts=loci)

    def test_root_loci_sum_mismatch_rejected(self):
        loci = dict(TSUBAME3_PROFILE.root_locus_counts)
        loci["gpu_driver"] += 1
        with pytest.raises(CalibrationError):
            replace(TSUBAME3_PROFILE, root_locus_counts=loci)
