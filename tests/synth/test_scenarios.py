"""Tests for the what-if scenario library."""

import pytest

from repro.core.breakdown import category_breakdown
from repro.core.metrics import mtbf
from repro.core.multigpu import multi_gpu_involvement
from repro.errors import CalibrationError
from repro.synth import (
    GeneratorConfig,
    TraceGenerator,
    profile_for,
    with_failure_rate_scaled,
    with_operational_practices_of,
    with_software_share,
)


def _generate(profile, seed=1):
    return TraceGenerator(profile, GeneratorConfig(seed=seed)).generate()


class TestFailureRateScaling:
    def test_doubling_halves_mtbf(self):
        base = profile_for("tsubame3")
        scaled = with_failure_rate_scaled(base, 2.0)
        assert scaled.total_failures == 676
        log = _generate(scaled)
        assert mtbf(log) == pytest.approx(
            profile_for("tsubame3").tbf_mean_hours / 2.0, rel=0.05
        )

    def test_category_mix_preserved(self):
        base = profile_for("tsubame2")
        scaled = with_failure_rate_scaled(base, 0.5)
        log = _generate(scaled)
        result = category_breakdown(log)
        assert result.share_of("GPU") == pytest.approx(0.4437, abs=0.01)

    def test_involvement_totals_consistent(self):
        scaled = with_failure_rate_scaled(profile_for("tsubame2"), 1.5)
        gpu = scaled.category_counts["GPU"]
        total = (sum(scaled.gpu_involvement_counts.values())
                 + scaled.gpu_involvement_unrecorded)
        assert total == gpu

    def test_root_loci_rescaled_on_t3(self):
        scaled = with_failure_rate_scaled(profile_for("tsubame3"), 2.0)
        assert sum(scaled.root_locus_counts.values()) == (
            scaled.category_counts["Software"]
        )

    def test_invalid_factor_rejected(self):
        base = profile_for("tsubame2")
        with pytest.raises(CalibrationError):
            with_failure_rate_scaled(base, 0.0)
        with pytest.raises(CalibrationError):
            with_failure_rate_scaled(base, 0.001)


class TestOperationalPracticeTransplant:
    def test_t3_practices_contain_t2_multi_gpu_failures(self):
        counterfactual = with_operational_practices_of(
            profile_for("tsubame2"), profile_for("tsubame3")
        )
        log = _generate(counterfactual)
        involvement = multi_gpu_involvement(log, 3)
        # Historical T2: ~70% multi-GPU.  Under T3's practices: <15%.
        assert involvement.multi_gpu_share < 0.15

    def test_reverse_transplant_worsens_t3(self):
        counterfactual = with_operational_practices_of(
            profile_for("tsubame3"), profile_for("tsubame2")
        )
        log = _generate(counterfactual)
        involvement = multi_gpu_involvement(log, 4)
        assert involvement.multi_gpu_share > 0.4

    def test_involvement_clamped_to_node_slots(self):
        # Donor T3 has 4-GPU buckets (count 0) while T2 has 3 slots.
        counterfactual = with_operational_practices_of(
            profile_for("tsubame2"), profile_for("tsubame3")
        )
        assert max(counterfactual.gpu_involvement_counts) <= 3

    def test_rates_unchanged(self):
        base = profile_for("tsubame2")
        counterfactual = with_operational_practices_of(
            base, profile_for("tsubame3")
        )
        assert counterfactual.total_failures == base.total_failures
        assert counterfactual.category_counts == base.category_counts


class TestSoftwareShareScenario:
    def test_share_reached(self):
        scenario = with_software_share(
            profile_for("tsubame3"), 0.75, "Software"
        )
        log = _generate(scenario)
        result = category_breakdown(log)
        assert result.share_of("Software") == pytest.approx(0.75,
                                                            abs=0.01)

    def test_total_preserved(self):
        scenario = with_software_share(
            profile_for("tsubame3"), 0.30, "Software"
        )
        assert scenario.total_failures == 338
        assert sum(scenario.category_counts.values()) == 338

    def test_other_categories_keep_relative_mix(self):
        base = profile_for("tsubame3")
        scenario = with_software_share(base, 0.30, "Software")
        # GPU:CPU ratio preserved among non-software categories.
        base_ratio = (base.category_counts["GPU"]
                      / base.category_counts["CPU"])
        new_ratio = (scenario.category_counts["GPU"]
                     / scenario.category_counts["CPU"])
        assert new_ratio == pytest.approx(base_ratio, rel=0.2)

    def test_t2_uses_othersw(self):
        scenario = with_software_share(
            profile_for("tsubame2"), 0.40, "OtherSW"
        )
        assert scenario.category_counts["OtherSW"] == pytest.approx(
            0.40 * 897, abs=1
        )

    def test_invalid_inputs_rejected(self):
        base = profile_for("tsubame3")
        with pytest.raises(CalibrationError):
            with_software_share(base, 1.0, "Software")
        with pytest.raises(CalibrationError):
            with_software_share(base, -0.1, "Software")
        with pytest.raises(CalibrationError):
            with_software_share(base, 0.5, "Gremlins")
