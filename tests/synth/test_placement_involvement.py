"""Tests for node placement and GPU involvement assignment."""

import numpy as np
import pytest

from repro.errors import CalibrationError, ValidationError
from repro.machines.topology import build_node_topology
from repro.synth.involvement import assign_involvement_labels, choose_slots
from repro.synth.placement import (
    assign_failures_to_nodes,
    sample_node_multiplicities,
)


class TestSampleNodeMultiplicities:
    def test_sums_to_total(self):
        rng = np.random.default_rng(0)
        counts = sample_node_multiplicities(
            rng, {1: 0.6, 2: 0.4}, total_failures=500, num_nodes=1000
        )
        assert sum(counts) == 500

    def test_histogram_roughly_matches(self):
        rng = np.random.default_rng(1)
        counts = sample_node_multiplicities(
            rng, {1: 0.6, 3: 0.4}, total_failures=2000, num_nodes=5000
        )
        ones = sum(1 for c in counts if c == 1)
        assert ones / len(counts) == pytest.approx(0.6, abs=0.06)

    def test_last_draw_clipped(self):
        rng = np.random.default_rng(2)
        counts = sample_node_multiplicities(
            rng, {5: 1.0}, total_failures=12, num_nodes=100
        )
        assert sum(counts) == 12
        assert counts[-1] <= 5

    def test_too_few_nodes_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(CalibrationError):
            sample_node_multiplicities(
                rng, {1: 1.0}, total_failures=50, num_nodes=10
            )

    def test_invalid_inputs_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValidationError):
            sample_node_multiplicities(rng, {1: 1.0}, 0, 10)
        with pytest.raises(ValidationError):
            sample_node_multiplicities(rng, {}, 5, 10)
        with pytest.raises(ValidationError):
            sample_node_multiplicities(rng, {1: 1.0}, 5, 0)


class TestAssignFailuresToNodes:
    def test_every_failure_gets_a_node(self):
        rng = np.random.default_rng(0)
        is_software = [False] * 8 + [True] * 2
        nodes = assign_failures_to_nodes(
            rng, is_software, [3, 3, 1, 1, 1, 1], num_nodes=100,
            multi_node_software_share=0.0,
        )
        assert len(nodes) == 10

    def test_multiplicity_histogram_realised(self):
        rng = np.random.default_rng(1)
        is_software = [False] * 10
        nodes = assign_failures_to_nodes(
            rng, is_software, [4, 3, 1, 1, 1], num_nodes=50,
            multi_node_software_share=0.0,
        )
        from collections import Counter

        counts = sorted(Counter(nodes).values(), reverse=True)
        assert counts == [4, 3, 1, 1, 1]

    def test_zero_share_keeps_software_off_multi_nodes(self):
        rng = np.random.default_rng(2)
        is_software = [True] * 5 + [False] * 5
        nodes = assign_failures_to_nodes(
            rng, is_software, [5, 1, 1, 1, 1, 1], num_nodes=50,
            multi_node_software_share=0.0,
        )
        from collections import Counter

        multi_node = Counter(nodes).most_common(1)[0][0]
        software_on_multi = sum(
            1
            for index, node in enumerate(nodes)
            if node == multi_node and is_software[index]
        )
        assert software_on_multi == 0

    def test_high_share_puts_software_on_multi_nodes(self):
        rng = np.random.default_rng(3)
        is_software = [True] * 6 + [False] * 4
        nodes = assign_failures_to_nodes(
            rng, is_software, [3, 3, 1, 1, 1, 1], num_nodes=50,
            multi_node_software_share=1.0,
        )
        from collections import Counter

        tallies = Counter(nodes)
        multi_nodes = {n for n, c in tallies.items() if c > 1}
        software_on_multi = sum(
            1
            for index, node in enumerate(nodes)
            if node in multi_nodes and is_software[index]
        )
        assert software_on_multi == 6

    def test_shortfall_of_hardware_topped_up_with_software(self):
        rng = np.random.default_rng(4)
        # 6 multi slots but only 2 hardware failures.
        is_software = [True] * 6 + [False] * 2
        nodes = assign_failures_to_nodes(
            rng, is_software, [3, 3, 1, 1], num_nodes=50,
            multi_node_software_share=0.0,
        )
        assert len(nodes) == 8  # completes despite the shortfall

    def test_mismatched_multiplicities_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValidationError):
            assign_failures_to_nodes(
                rng, [False, False], [3], num_nodes=10,
                multi_node_software_share=0.0,
            )

    def test_bad_share_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValidationError):
            assign_failures_to_nodes(
                rng, [False], [1], num_nodes=10,
                multi_node_software_share=1.5,
            )


class TestAssignInvolvementLabels:
    def test_multiset_preserved(self):
        rng = np.random.default_rng(0)
        labels = assign_involvement_labels(
            rng, {1: 10, 2: 5, 3: 3}, unrecorded=2,
            burst_continue_probability=0.5,
        )
        from collections import Counter

        assert Counter(labels) == {1: 10, 2: 5, 3: 3, 0: 2}

    def test_bursting_clusters_multi_labels(self):
        rng = np.random.default_rng(1)
        labels = assign_involvement_labels(
            rng, {1: 200, 2: 50}, unrecorded=0,
            burst_continue_probability=0.9,
        )
        # Count multi -> multi transitions; with bursting they exceed
        # the exchangeable expectation (50/250 of follow-ups).
        followups = [
            labels[i + 1] > 1
            for i in range(len(labels) - 1)
            if labels[i] > 1
        ]
        assert np.mean(followups) > 0.5

    def test_zero_burst_is_exchangeable(self):
        rng = np.random.default_rng(2)
        labels = assign_involvement_labels(
            rng, {1: 300, 2: 100}, unrecorded=0,
            burst_continue_probability=0.0,
        )
        followups = [
            labels[i + 1] > 1
            for i in range(len(labels) - 1)
            if labels[i] > 1
        ]
        assert np.mean(followups) == pytest.approx(0.25, abs=0.12)

    def test_empty_counts_ok(self):
        rng = np.random.default_rng(0)
        assert assign_involvement_labels(rng, {}, 0, 0.5) == []

    def test_invalid_inputs_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValidationError):
            assign_involvement_labels(rng, {0: 5}, 0, 0.5)
        with pytest.raises(ValidationError):
            assign_involvement_labels(rng, {1: -1}, 0, 0.5)
        with pytest.raises(ValidationError):
            assign_involvement_labels(rng, {1: 1}, -1, 0.5)
        with pytest.raises(ValidationError):
            assign_involvement_labels(rng, {1: 1}, 0, 1.5)


class TestChooseSlots:
    def test_all_slots_when_full_involvement(self):
        rng = np.random.default_rng(0)
        assert choose_slots(rng, 3, (1.0, 1.0, 1.0)) == (0, 1, 2)

    def test_distinct_sorted_slots(self):
        rng = np.random.default_rng(1)
        for _ in range(50):
            slots = choose_slots(rng, 2, (1.0, 2.0, 1.0, 2.0))
            assert len(set(slots)) == 2
            assert slots == tuple(sorted(slots))

    def test_weights_bias_singles(self):
        rng = np.random.default_rng(2)
        picks = [
            choose_slots(rng, 1, (1.0, 8.0, 1.0))[0] for _ in range(400)
        ]
        assert picks.count(1) > 250

    def test_topology_affinity_pulls_busmates(self):
        rng = np.random.default_rng(3)
        topo = build_node_topology("tsubame3")  # switches {0,1}, {2,3}
        same_switch = 0
        trials = 300
        for _ in range(trials):
            slots = choose_slots(
                rng, 2, (1.0, 1.0, 1.0, 1.0), topology=topo, affinity=8.0
            )
            if slots in ((0, 1), (2, 3)):
                same_switch += 1
        assert same_switch / trials > 0.6  # uniform would give ~1/3

    def test_invalid_args_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValidationError):
            choose_slots(rng, 0, (1.0, 1.0))
        with pytest.raises(ValidationError):
            choose_slots(rng, 3, (1.0, 1.0))
        with pytest.raises(ValidationError):
            choose_slots(rng, 1, (1.0, 1.0), affinity=0.5)
