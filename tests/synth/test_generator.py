"""Tests for the trace generator and its ablation switches."""

import pytest

from repro.core.breakdown import category_breakdown
from repro.core.metrics import mttr
from repro.core.multigpu import multi_gpu_clustering, multi_gpu_involvement
from repro.core.spatial import gpu_slot_distribution
from repro.errors import ValidationError
from repro.machines.specs import TSUBAME2, TSUBAME3
from repro.synth import (
    GeneratorConfig,
    TraceGenerator,
    generate_log,
    profile_for,
)
from repro.synth.recovery import LognormalTtrSampler, normalize_to_mean


class TestDeterminism:
    def test_same_seed_same_log(self):
        a = generate_log("tsubame2", seed=5)
        b = generate_log("tsubame2", seed=5)
        assert a.records == b.records

    def test_different_seed_different_log(self):
        a = generate_log("tsubame2", seed=5)
        b = generate_log("tsubame2", seed=6)
        assert a.records != b.records


class TestGeneratedLogShape:
    def test_sizes_match_paper(self, t2_log, t3_log):
        assert len(t2_log) == 897
        assert len(t3_log) == 338

    def test_window_matches_spec(self, t2_log):
        assert t2_log.window_start == TSUBAME2.log_start
        assert t2_log.window_end == TSUBAME2.log_end

    def test_all_nodes_in_fleet(self, t2_log, t3_log):
        assert max(t2_log.node_ids()) < TSUBAME2.num_nodes
        assert max(t3_log.node_ids()) < TSUBAME3.num_nodes

    def test_involvement_only_on_gpu_category(self, t2_log, t3_log):
        for log in (t2_log, t3_log):
            for record in log:
                if record.gpus_involved:
                    assert record.category == "GPU"

    def test_root_loci_only_on_t3_software(self, t2_log, t3_log):
        assert all(r.root_locus is None for r in t2_log)
        for record in t3_log:
            if record.category == "Software":
                assert record.root_locus is not None
            else:
                assert record.root_locus is None

    def test_mttr_normalised_exactly(self, t2_log, t3_log):
        assert mttr(t2_log) == pytest.approx(55.0, abs=1e-6)
        assert mttr(t3_log) == pytest.approx(55.0, abs=1e-6)


class TestSizeOverride:
    def test_override_scales_counts(self):
        config = GeneratorConfig(seed=0, num_failures=200)
        log = TraceGenerator(profile_for("tsubame2"), config).generate()
        assert len(log) == 200
        result = category_breakdown(log)
        assert result.share_of("GPU") == pytest.approx(0.4437, abs=0.01)

    def test_override_scales_involvement(self):
        config = GeneratorConfig(seed=0, num_failures=200)
        log = TraceGenerator(profile_for("tsubame2"), config).generate()
        result = multi_gpu_involvement(log, 3)
        # Table III proportions survive the rescale.
        assert result.share_of(1) == pytest.approx(0.30, abs=0.07)

    def test_tiny_override(self):
        config = GeneratorConfig(seed=0, num_failures=10)
        log = TraceGenerator(profile_for("tsubame3"), config).generate()
        assert len(log) == 10

    def test_invalid_override_rejected(self):
        with pytest.raises(ValidationError):
            GeneratorConfig(num_failures=1)

    def test_invalid_affinity_rejected(self):
        with pytest.raises(ValidationError):
            GeneratorConfig(topology_affinity=0.0)


class TestAblationSwitches:
    def test_no_burst_clustering_weakens_clustering(self):
        profile = profile_for("tsubame2")
        clustered = TraceGenerator(
            profile, GeneratorConfig(seed=0)
        ).generate()
        exchangeable = TraceGenerator(
            profile, GeneratorConfig(seed=0, burst_clustering=False)
        ).generate()
        on = multi_gpu_clustering(clustered).clustering_ratio
        off = multi_gpu_clustering(exchangeable).clustering_ratio
        assert on > off

    def test_no_slot_weighting_flattens_slots(self):
        profile = profile_for("tsubame2")
        log = TraceGenerator(
            profile,
            GeneratorConfig(seed=0, slot_weighting=False,
                            topology_affinity=1.0),
        ).generate()
        result = gpu_slot_distribution(log.gpu_failures(),
                                       TSUBAME2.gpu_slots)
        assert result.imbalance() < 1.2

    def test_no_mttr_normalisation_drifts(self):
        profile = profile_for("tsubame2")
        log = TraceGenerator(
            profile, GeneratorConfig(seed=0, normalize_mttr=False)
        ).generate()
        # Close to the implied mean but not pinned exactly.
        assert mttr(log) == pytest.approx(55.0, rel=0.25)
        assert mttr(log) != pytest.approx(55.0, abs=1e-6)

    def test_no_arrival_seasonality_flattens_months(self):
        from repro.core.seasonal import monthly_failure_counts

        profile = profile_for("tsubame2")
        flat_log = TraceGenerator(
            profile, GeneratorConfig(seed=0, arrival_seasonality=False)
        ).generate()
        seasonal_log = TraceGenerator(
            profile, GeneratorConfig(seed=0)
        ).generate()
        flat = monthly_failure_counts(flat_log).series()
        seasonal = monthly_failure_counts(seasonal_log).series()
        import numpy as np

        assert np.std(seasonal) > np.std(flat) * 0.9  # not flatter

    def test_no_ttr_seasonality_removes_half_year_trend(self):
        from repro.core.seasonal import monthly_ttr

        profile = profile_for("tsubame2")
        log = TraceGenerator(
            profile, GeneratorConfig(seed=0, ttr_seasonality=False)
        ).generate()
        first, second = monthly_ttr(log).half_year_means()
        assert abs(second - first) / first < 0.25


class TestTtrSampler:
    def test_mean_parametrisation(self):
        import numpy as np

        sampler = LognormalTtrSampler(mean_hours=50.0, sigma=0.7)
        rng = np.random.default_rng(0)
        sample = [sampler.sample(rng) for _ in range(20000)]
        assert float(np.mean(sample)) == pytest.approx(50.0, rel=0.03)

    def test_zero_sigma_is_deterministic(self):
        import numpy as np

        sampler = LognormalTtrSampler(mean_hours=10.0, sigma=0.0)
        rng = np.random.default_rng(0)
        assert sampler.sample(rng) == pytest.approx(10.0)

    def test_invalid_params_rejected(self):
        from repro.errors import CalibrationError

        with pytest.raises(CalibrationError):
            LognormalTtrSampler(mean_hours=0.0, sigma=0.5)
        with pytest.raises(CalibrationError):
            LognormalTtrSampler(mean_hours=10.0, sigma=-0.1)

    def test_normalize_to_mean(self):
        values = normalize_to_mean([1.0, 2.0, 3.0], target_mean=20.0)
        assert sum(values) / 3 == pytest.approx(20.0)
        # Relative proportions preserved.
        assert values[1] / values[0] == pytest.approx(2.0)

    def test_normalize_invalid_inputs(self):
        with pytest.raises(ValidationError):
            normalize_to_mean([], 5.0)
        with pytest.raises(ValidationError):
            normalize_to_mean([1.0], 0.0)
        with pytest.raises(ValidationError):
            normalize_to_mean([0.0, 0.0], 5.0)
