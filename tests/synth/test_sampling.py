"""Tests for the low-level sampling helpers."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.synth.sampling import (
    allocate_counts,
    shuffled,
    weighted_sample_without_replacement,
)


class TestAllocateCounts:
    def test_exact_proportions(self):
        counts = allocate_counts({"a": 1.0, "b": 3.0}, 100)
        assert counts == {"a": 25, "b": 75}

    def test_sums_to_total(self):
        weights = {"a": 0.17, "b": 0.29, "c": 0.54}
        for total in (0, 1, 7, 97, 1000):
            assert sum(allocate_counts(weights, total).values()) == total

    def test_largest_remainder_rounding(self):
        counts = allocate_counts({"a": 1.0, "b": 1.0, "c": 1.0}, 2)
        assert sum(counts.values()) == 2
        assert max(counts.values()) == 1  # no label gets both units

    def test_within_one_of_ideal(self):
        weights = {"a": 0.4437, "b": 0.0959, "c": 0.4604}
        counts = allocate_counts(weights, 897)
        for label, weight in weights.items():
            ideal = 897 * weight / sum(weights.values())
            assert abs(counts[label] - ideal) < 1.0

    def test_deterministic(self):
        weights = {"x": 1.5, "y": 2.5, "z": 1.0}
        assert allocate_counts(weights, 37) == allocate_counts(weights, 37)

    def test_zero_weight_gets_zero(self):
        counts = allocate_counts({"a": 1.0, "b": 0.0}, 10)
        assert counts == {"a": 10, "b": 0}

    def test_negative_total_rejected(self):
        with pytest.raises(ValidationError):
            allocate_counts({"a": 1.0}, -1)

    def test_empty_weights_rejected(self):
        with pytest.raises(ValidationError):
            allocate_counts({}, 5)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValidationError):
            allocate_counts({"a": -1.0}, 5)

    def test_all_zero_weights_rejected(self):
        with pytest.raises(ValidationError):
            allocate_counts({"a": 0.0, "b": 0.0}, 5)


class TestWeightedSampleWithoutReplacement:
    def test_draws_distinct_items(self):
        rng = np.random.default_rng(0)
        chosen = weighted_sample_without_replacement(
            rng, [0, 1, 2, 3], [1.0, 1.0, 1.0, 1.0], 3
        )
        assert len(chosen) == len(set(chosen)) == 3

    def test_k_equals_population(self):
        rng = np.random.default_rng(0)
        chosen = weighted_sample_without_replacement(
            rng, [5, 6], [1.0, 2.0], 2
        )
        assert sorted(chosen) == [5, 6]

    def test_zero_weight_items_picked_last(self):
        rng = np.random.default_rng(0)
        chosen = weighted_sample_without_replacement(
            rng, [0, 1, 2], [0.0, 0.0, 1.0], 1
        )
        assert chosen == [2]

    def test_weights_bias_selection(self):
        rng = np.random.default_rng(1)
        firsts = [
            weighted_sample_without_replacement(
                rng, [0, 1], [1.0, 9.0], 1
            )[0]
            for _ in range(300)
        ]
        assert 0.8 < np.mean(firsts) < 0.98

    def test_k_too_large_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValidationError):
            weighted_sample_without_replacement(rng, [0], [1.0], 2)

    def test_length_mismatch_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValidationError):
            weighted_sample_without_replacement(rng, [0, 1], [1.0], 1)

    def test_negative_weight_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValidationError):
            weighted_sample_without_replacement(rng, [0], [-1.0], 1)

    def test_all_zero_weights_fall_back_to_uniform(self):
        rng = np.random.default_rng(0)
        chosen = weighted_sample_without_replacement(
            rng, [0, 1, 2], [0.0, 0.0, 0.0], 2
        )
        assert len(set(chosen)) == 2


class TestShuffled:
    def test_is_permutation(self):
        rng = np.random.default_rng(0)
        items = list(range(50))
        result = shuffled(rng, items)
        assert sorted(result) == items

    def test_original_untouched(self):
        rng = np.random.default_rng(0)
        items = [1, 2, 3]
        shuffled(rng, items)
        assert items == [1, 2, 3]

    def test_seeded_determinism(self):
        a = shuffled(np.random.default_rng(9), list(range(20)))
        b = shuffled(np.random.default_rng(9), list(range(20)))
        assert a == b
