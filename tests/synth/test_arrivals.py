"""Tests for arrival-time calibration and seasonality warping."""

from datetime import datetime

import numpy as np
import pytest

from repro.errors import CalibrationError, ValidationError
from repro.synth.arrivals import (
    MonthlyIntensityWarp,
    arrival_offsets_hours,
    calibrate_weibull,
)


class TestCalibrateWeibull:
    def test_hits_mean_and_p75(self):
        renewal = calibrate_weibull(mean_hours=15.3, p75_hours=20.0)
        assert renewal.mean_hours == pytest.approx(15.3, rel=1e-6)
        assert renewal.p75_hours == pytest.approx(20.0, rel=1e-6)

    def test_heavy_tail_branch_selected(self):
        renewal = calibrate_weibull(mean_hours=72.4, p75_hours=93.0)
        assert renewal.shape < 1.3

    def test_exponential_ratio_gives_shape_one(self):
        # For an exponential, p75/mean = ln(4) ~ 1.386.
        renewal = calibrate_weibull(
            mean_hours=10.0, p75_hours=10.0 * np.log(4.0)
        )
        assert renewal.shape == pytest.approx(1.0, abs=0.02)

    def test_sampled_moments_match(self):
        renewal = calibrate_weibull(mean_hours=50.0, p75_hours=65.0)
        rng = np.random.default_rng(0)
        gaps = renewal.sample_gaps(rng, 20000)
        assert float(gaps.mean()) == pytest.approx(50.0, rel=0.03)
        assert float(np.percentile(gaps, 75)) == pytest.approx(65.0,
                                                               rel=0.03)

    def test_unattainable_ratio_rejected(self):
        with pytest.raises(CalibrationError):
            calibrate_weibull(mean_hours=10.0, p75_hours=15.0)  # ratio 1.5

    def test_non_positive_targets_rejected(self):
        with pytest.raises(CalibrationError):
            calibrate_weibull(mean_hours=0.0, p75_hours=1.0)
        with pytest.raises(CalibrationError):
            calibrate_weibull(mean_hours=1.0, p75_hours=-1.0)

    def test_sample_count_validated(self):
        renewal = calibrate_weibull(mean_hours=10.0, p75_hours=13.0)
        with pytest.raises(ValidationError):
            renewal.sample_gaps(np.random.default_rng(0), 0)


class TestArrivalOffsets:
    def test_offsets_fill_window(self):
        renewal = calibrate_weibull(mean_hours=10.0, p75_hours=13.0)
        rng = np.random.default_rng(0)
        offsets = arrival_offsets_hours(rng, renewal, 100, 1000.0)
        assert len(offsets) == 100
        assert offsets[0] > 0.0
        assert offsets[-1] == pytest.approx(999.0)  # span - pad

    def test_offsets_monotone(self):
        renewal = calibrate_weibull(mean_hours=10.0, p75_hours=13.0)
        rng = np.random.default_rng(1)
        offsets = arrival_offsets_hours(rng, renewal, 500, 5000.0)
        assert np.all(np.diff(offsets) >= 0)

    def test_gap_shape_preserved_after_rescaling(self):
        renewal = calibrate_weibull(mean_hours=10.0, p75_hours=13.0)
        rng = np.random.default_rng(2)
        offsets = arrival_offsets_hours(rng, renewal, 2000, 20000.0)
        gaps = np.diff(offsets)
        ratio = np.percentile(gaps, 75) / gaps.mean()
        assert ratio == pytest.approx(1.3, rel=0.05)

    def test_too_few_arrivals_rejected(self):
        renewal = calibrate_weibull(mean_hours=10.0, p75_hours=13.0)
        with pytest.raises(ValidationError):
            arrival_offsets_hours(np.random.default_rng(0), renewal, 1,
                                  100.0)

    def test_short_span_rejected(self):
        renewal = calibrate_weibull(mean_hours=10.0, p75_hours=13.0)
        with pytest.raises(ValidationError):
            arrival_offsets_hours(np.random.default_rng(0), renewal, 10,
                                  1.0)


class TestMonthlyIntensityWarp:
    def _warp(self, weights):
        return MonthlyIntensityWarp(
            datetime(2020, 1, 1), datetime(2021, 1, 1), tuple(weights)
        )

    def test_uniform_weights_are_identity(self):
        warp = self._warp([1.0] * 12)
        offsets = np.linspace(0.0, 8784.0, 50)  # 2020 is a leap year
        np.testing.assert_allclose(warp.warp(offsets), offsets, atol=1e-6)

    def test_heavy_month_attracts_events(self):
        weights = [1.0] * 12
        weights[6] = 10.0  # July
        warp = self._warp(weights)
        uniform = np.linspace(1.0, 8783.0, 5000)
        warped = warp.warp(uniform)
        dates = warp.to_datetimes(warped)
        july = sum(1 for d in dates if d.month == 7)
        january = sum(1 for d in dates if d.month == 1)
        assert july > 5 * january

    def test_order_preserved(self):
        weights = [0.5, 2.0] * 6
        warp = self._warp(weights)
        offsets = np.sort(np.random.default_rng(0).uniform(0, 8784, 100))
        warped = warp.warp(offsets)
        assert np.all(np.diff(warped) >= 0)

    def test_endpoints_map_to_endpoints(self):
        warp = self._warp([0.5, 2.0] * 6)
        result = warp.warp(np.asarray([0.0, 8784.0]))
        assert result[0] == pytest.approx(0.0)
        assert result[-1] == pytest.approx(8784.0)

    def test_out_of_window_offsets_rejected(self):
        warp = self._warp([1.0] * 12)
        with pytest.raises(ValidationError):
            warp.warp(np.asarray([-1.0]))
        with pytest.raises(ValidationError):
            warp.warp(np.asarray([9000.0]))

    def test_wrong_weight_count_rejected(self):
        with pytest.raises(ValidationError):
            MonthlyIntensityWarp(
                datetime(2020, 1, 1), datetime(2021, 1, 1), (1.0,) * 11
            )

    def test_non_positive_weight_rejected(self):
        with pytest.raises(ValidationError):
            self._warp([1.0] * 11 + [0.0])

    def test_partial_year_window(self):
        warp = MonthlyIntensityWarp(
            datetime(2020, 3, 15), datetime(2020, 6, 15), (1.0,) * 12
        )
        span = (datetime(2020, 6, 15) - datetime(2020, 3, 15))
        span_hours = span.total_seconds() / 3600.0
        result = warp.warp(np.asarray([0.0, span_hours / 2, span_hours]))
        assert result[0] == pytest.approx(0.0)
        assert result[-1] == pytest.approx(span_hours)
