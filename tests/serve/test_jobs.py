"""Job-queue semantics: priority, cancellation, drain, retention.

The contract the chaos suite leans on: every submitted job ends in
exactly one terminal state (``done``/``failed``/``cancelled``), is
never lost, never runs twice, and cancellations carry attribution
(client request vs server drain).
"""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import ServeError
from repro.serve.jobs import JOB_STATES, JobConflict, JobQueue


def run(coro):
    return asyncio.run(coro)


async def wait_terminal(queue, job, timeout=5.0):
    deadline = asyncio.get_running_loop().time() + timeout
    while not job.terminal:
        assert asyncio.get_running_loop().time() < deadline, job
        await asyncio.sleep(0.005)
    return job


def test_states_vocabulary():
    assert JOB_STATES == (
        "queued", "running", "done", "failed", "cancelled"
    )


def test_constructor_validation():
    async def execute(params, job):
        return b""

    with pytest.raises(ServeError):
        JobQueue(execute, concurrency=0)
    with pytest.raises(ServeError):
        JobQueue(execute, retention=0)


def test_priority_order_with_single_runner():
    """Higher priority first; FIFO within a level."""

    async def scenario():
        order: list[str] = []
        gate = asyncio.Event()

        async def execute(params, job):
            if params["tag"] == "gate":
                await gate.wait()
            order.append(params["tag"])
            return b"ok"

        queue = JobQueue(execute, concurrency=1)
        # First job occupies the single runner so the rest queue up
        # and are popped strictly by (priority desc, seq asc).
        blocker = queue.submit({"tag": "gate"}, priority=0)
        await asyncio.sleep(0.01)
        queue.submit({"tag": "low"}, priority=-1)
        queue.submit({"tag": "high-1"}, priority=5)
        queue.submit({"tag": "mid"}, priority=1)
        last = queue.submit({"tag": "high-2"}, priority=5)
        gate.set()
        await wait_terminal(queue, last)
        await wait_terminal(queue, blocker)
        for job in queue.list():
            await wait_terminal(queue, job)
        await queue.close()
        return order

    order = run(scenario())
    assert order == ["gate", "high-1", "high-2", "mid", "low"]


def test_cancel_queued_vs_running_vs_terminal():
    async def scenario():
        started = asyncio.Event()
        release = asyncio.Event()

        async def execute(params, job):
            started.set()
            await release.wait()
            return b"done"

        queue = JobQueue(execute, concurrency=1)
        running = queue.submit({"tag": "running"})
        await started.wait()
        queued = queue.submit({"tag": "queued"})

        cancelled = queue.cancel(queued.id, reason="operator abort")
        assert cancelled.status == "cancelled"
        assert cancelled.cancel_reason == "operator abort"

        with pytest.raises(JobConflict):
            queue.cancel(running.id)  # past the point of no return
        with pytest.raises(JobConflict):
            queue.cancel(queued.id)  # already terminal
        with pytest.raises(ServeError):
            queue.cancel("s0-999999-deadbeef")  # unknown

        release.set()
        await wait_terminal(queue, running)
        assert running.status == "done"
        assert running.result == b"done"
        await queue.close()
        return queue

    queue = run(scenario())
    assert queue.cancelled == 1
    assert queue.completed == 1


def test_failures_are_attributed_not_lost():
    async def scenario():
        async def execute(params, job):
            raise ValueError("x" * 400)

        queue = JobQueue(execute, concurrency=2)
        job = queue.submit({})
        await wait_terminal(queue, job)
        await queue.close()
        return job

    job = run(scenario())
    assert job.status == "failed"
    assert job.error["type"] == "ValueError"
    assert len(job.error["message"]) <= 300  # truncated, no dump


def test_drain_cancels_queued_with_attribution():
    async def scenario():
        started = asyncio.Event()
        release = asyncio.Event()

        async def execute(params, job):
            started.set()
            await release.wait()
            return b"finished"

        queue = JobQueue(execute, concurrency=1)
        running = queue.submit({"tag": "running"})
        await started.wait()
        queued = [queue.submit({"i": i}) for i in range(3)]

        drained = queue.drain(reason="server drain")
        assert drained == 3
        for job in queued:
            assert job.status == "cancelled"
            assert job.cancel_reason == "server drain"
        # Draining refuses new submissions…
        with pytest.raises(ServeError):
            queue.submit({})
        # …but the running job still completes.
        release.set()
        await wait_terminal(queue, running)
        assert running.status == "done"
        await queue.close()

    run(scenario())


def test_job_ids_embed_shard_for_router_affinity():
    async def scenario():
        async def execute(params, job):
            return b""

        queue = JobQueue(execute, shard_index=3)
        job = queue.submit({})
        await wait_terminal(queue, job)
        await queue.close()
        return job

    job = run(scenario())
    assert job.id.startswith("s3-")


def test_retention_forgets_oldest_finished_only():
    async def scenario():
        async def execute(params, job):
            return b""

        queue = JobQueue(execute, concurrency=1, retention=3)
        jobs = [queue.submit({"i": i}) for i in range(6)]
        for job in jobs:
            await wait_terminal(queue, job)
        await queue.close()
        return queue, jobs

    queue, jobs = run(scenario())
    remembered = {job.id for job in queue.list(limit=100)}
    assert len(remembered) == 3
    # The most recently finished survive.
    assert jobs[-1].id in remembered
    with pytest.raises(ServeError):
        queue.get(jobs[0].id)


def test_describe_reports_timing_and_cache_attribution():
    async def scenario():
        async def execute(params, job):
            job.cached = True
            return b"{}"

        queue = JobQueue(execute)
        job = queue.submit({"a": 1}, priority=2)
        await wait_terminal(queue, job)
        await queue.close()
        return job

    job = run(scenario())
    record = job.describe()
    assert record["status"] == "done"
    assert record["priority"] == 2
    assert record["cached"] is True
    assert record["queued_seconds"] >= 0.0
    assert record["run_seconds"] >= 0.0
