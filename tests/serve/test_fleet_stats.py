"""Fleet telemetry rollup: merging per-shard stats without lying.

Two layers under test:

* the estimator merge algebra — :meth:`Welford.merged` must match a
  single accumulator over the union stream to float precision
  (Chan et al.'s parallel update), and :meth:`GKQuantileSketch.merged`
  must keep rank error within the *sum* of the constituent epsilons;
* the snapshot rollup — counters sum, agree-or-drop for labels,
  booleans never summed, quantiles merged through raw states rather
  than averaged, count-weighted mean fallback when states are absent.
"""

from __future__ import annotations

import random

import pytest

from repro.serve.stats import (
    EndpointStats,
    ServerStats,
    merge_counter_dicts,
    merge_server_snapshots,
)
from repro.stream.online import GKQuantileSketch, Welford


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now


class TestWelfordMerge:
    def test_merged_matches_single_pass(self):
        rng = random.Random(11)
        values = [rng.gauss(50.0, 12.0) for _ in range(9000)]
        parts = [Welford() for _ in range(4)]
        for i, value in enumerate(values):
            parts[i % 4].push(value)
        merged = Welford.merged(parts)
        exact = Welford()
        exact.push_many(values)
        assert merged.n == exact.n
        assert merged.mean == pytest.approx(exact.mean, rel=1e-12)
        assert merged.std == pytest.approx(exact.std, rel=1e-9)

    def test_empty_and_singleton_edges(self):
        assert Welford.merged([]).n == 0
        solo = Welford()
        solo.push(3.0)
        merged = Welford.merged([Welford(), solo, Welford()])
        assert merged.n == 1
        assert merged.mean == 3.0


class TestSketchMerge:
    def test_merged_rank_error_within_summed_epsilon(self):
        rng = random.Random(7)
        values = [rng.lognormvariate(1.0, 0.8) for _ in range(8000)]
        sketches = [GKQuantileSketch(epsilon=0.01) for _ in range(4)]
        for i, value in enumerate(values):
            sketches[i % 4].push(value)
        merged = GKQuantileSketch.merged(sketches)
        assert merged.n == len(values)
        assert merged.epsilon == pytest.approx(0.04)
        ordered = sorted(values)
        for q in (0.1, 0.5, 0.9, 0.99):
            estimate = merged.value(q)
            rank = sum(1 for v in ordered if v <= estimate)
            error = abs(rank - q * len(values)) / len(values)
            assert error <= merged.epsilon + 1e-9, (q, error)

    def test_merge_of_one_is_identity(self):
        sketch = GKQuantileSketch(epsilon=0.01)
        for value in range(100):
            sketch.push(float(value))
        merged = GKQuantileSketch.merged([sketch])
        assert merged.value(0.5) == pytest.approx(
            sketch.value(0.5)
        )


class TestMergeCounterDicts:
    def test_sums_numbers_keeps_agreement_drops_conflict(self):
        merged = merge_counter_dicts(
            [
                {"hits": 3, "label": "x", "mode": "a", "on": True},
                {"hits": 4, "label": "x", "mode": "b", "on": True},
            ]
        )
        assert merged["hits"] == 7
        assert merged["label"] == "x"  # everyone agrees: kept
        assert "mode" not in merged  # disagreement: dropped
        # Booleans are NOT counters: True + True must never become 2.
        assert merged["on"] is True

    def test_conflicting_booleans_dropped(self):
        merged = merge_counter_dicts(
            [{"draining": True}, {"draining": False}]
        )
        assert "draining" not in merged

    def test_missing_keys_tolerated(self):
        merged = merge_counter_dicts([{"a": 1}, {"a": 2, "b": 5}])
        assert merged == {"a": 3, "b": 5}

    def test_empty_input(self):
        assert merge_counter_dicts([]) == {}


def _loaded_server(clock, latencies_ms, endpoint="analyze"):
    stats = ServerStats(clock=clock)
    for latency_ms in latencies_ms:
        stats.observe(endpoint, 200, latency_ms / 1e3)
    return stats


class TestMergeServerSnapshots:
    def test_counters_sum_and_quantiles_merge_through_states(self):
        clock = FakeClock()
        rng = random.Random(3)
        population: list[float] = []
        snapshots = []
        for shard in range(3):
            latencies = [
                rng.gauss(20.0 + 5.0 * shard, 4.0) for _ in range(800)
            ]
            population.extend(latencies)
            stats = _loaded_server(clock, latencies)
            clock.now += 10.0
            snapshots.append(stats.snapshot(include_states=True))
        merged = merge_server_snapshots(snapshots)
        assert merged["shards"] == 3
        assert merged["requests_total"] == 2400
        endpoint = merged["endpoints"]["analyze"]
        assert endpoint["requests"] == 2400
        assert endpoint["by_status"] == {"2xx": 2400}
        latency = endpoint["latency_ms"]
        ordered = sorted(population)
        exact_mean = sum(population) / len(population)
        assert latency["mean"] == pytest.approx(exact_mean, rel=1e-9)
        # Each shard's p95 differs (shifted means); the merged p95
        # must track the union population within the summed epsilon,
        # which averaging per-shard p95s would not.
        p95 = latency["p95"]
        rank = sum(1 for v in ordered if v <= p95) / len(ordered)
        assert abs(rank - 0.95) <= latency["merged_epsilon"] + 1e-9

    def test_uptime_is_oldest_and_rate_sums(self):
        clock = FakeClock()
        young = ServerStats(clock=clock)
        clock.now += 100.0
        old_snapshot_like = young.snapshot(include_states=True)
        fresh = ServerStats(clock=clock)
        clock.now += 5.0
        merged = merge_server_snapshots(
            [old_snapshot_like, fresh.snapshot(include_states=True)]
        )
        assert merged["uptime_seconds"] == pytest.approx(100.0)
        assert merged["requests_per_second"] >= 0.0

    def test_fallback_without_states_uses_weighted_mean(self):
        clock = FakeClock()
        a = _loaded_server(clock, [10.0] * 30).snapshot()
        b = _loaded_server(clock, [40.0] * 10).snapshot()
        merged = merge_server_snapshots([a, b])
        latency = merged["endpoints"]["analyze"]["latency_ms"]
        assert latency["mean"] == pytest.approx(17.5, rel=1e-6)
        # No raw states -> no honest way to merge quantiles: absent,
        # not fabricated.
        assert "p95" not in latency

    def test_empty_fleet(self):
        merged = merge_server_snapshots([])
        assert merged["shards"] == 0
        assert merged["requests_total"] == 0
        assert merged["endpoints"] == {}


class TestStatesExport:
    def test_snapshot_states_round_trip(self):
        endpoint = EndpointStats()
        for i in range(50):
            endpoint.observe(200, 0.001 * (i + 1))
        snapshot = endpoint.snapshot(include_states=True)
        welford = Welford.from_state(snapshot["states"]["latency"])
        sketch = GKQuantileSketch.from_state(
            snapshot["states"]["sketch"]
        )
        assert welford.n == 50
        assert welford.mean == pytest.approx(
            snapshot["latency_ms"]["mean"]
        )
        assert sketch.value(0.5) == pytest.approx(
            snapshot["latency_ms"]["p50"]
        )

    def test_default_snapshot_omits_states(self):
        endpoint = EndpointStats()
        endpoint.observe(200, 0.01)
        assert "states" not in endpoint.snapshot()
