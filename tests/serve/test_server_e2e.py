"""End-to-end service tests over a real TCP socket.

A live :class:`~repro.serve.server.ReproServer` on a background
thread, driven with stdlib ``http.client`` — the same transport any
real client uses.  Covers the acceptance properties of the serving
layer: byte-identical cache hits, exactly-one backend execution for N
identical concurrent requests, 429/503 shedding with ``Retry-After``,
and graceful drain.
"""

from __future__ import annotations

import http.client
import json
import threading
import time

import pytest

from repro.serve import DatasetRegistry, ReproApp, run_in_thread


def make_app(**kwargs) -> ReproApp:
    registry = DatasetRegistry()
    registry.synthesize("t2", "tsubame2", seed=42, failures=150)
    registry.synthesize("t3", "tsubame3", seed=42, failures=100)
    kwargs.setdefault("workers", 2)
    return ReproApp(registry, **kwargs)


def request(
    port: int,
    method: str,
    path: str,
    payload: dict | None = None,
    headers: dict | None = None,
):
    """One request on a fresh connection; returns the response with
    the body preloaded on ``.body``."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    try:
        body = json.dumps(payload).encode() if payload is not None else None
        conn.request(method, path, body, headers or {})
        response = conn.getresponse()
        response.body = response.read()
        return response
    finally:
        conn.close()


@pytest.fixture(scope="module")
def server():
    with run_in_thread(make_app()) as handle:
        yield handle


class TestRoutes:
    def test_index_lists_endpoints(self, server):
        response = request(server.port, "GET", "/")
        assert response.status == 200
        payload = json.loads(response.body)
        assert payload["service"] == "repro.serve"
        assert any("simulate" in e for e in payload["endpoints"])

    def test_healthz(self, server):
        response = request(server.port, "GET", "/healthz")
        payload = json.loads(response.body)
        assert payload["status"] == "ok"
        assert payload["datasets"] == ["t2", "t3"]

    def test_datasets_listing_and_detail(self, server):
        listing = json.loads(
            request(server.port, "GET", "/datasets").body
        )
        assert [d["name"] for d in listing["datasets"]] == ["t2", "t3"]
        detail = json.loads(
            request(server.port, "GET", "/datasets/t2").body
        )
        assert detail["machine"] == "tsubame2"
        assert detail["failures"] == 150
        assert len(detail["fingerprint"]) == 64

    def test_all_analyses_answer(self, server):
        for analysis in (
            "breakdown",
            "metrics",
            "spatial",
            "seasonal",
            "multigpu",
        ):
            response = request(
                server.port, "GET", f"/analyze/t2/{analysis}"
            )
            assert response.status == 200, analysis
            payload = json.loads(response.body)
            assert payload["machine"] == "tsubame2"

    def test_unknown_routes_are_404_json(self, server):
        for path in ("/nope", "/analyze/t2/nope", "/analyze/zzz/metrics"):
            response = request(server.port, "GET", path)
            assert response.status == 404
            assert "error" in json.loads(response.body)

    def test_wrong_method_is_405(self, server):
        assert request(server.port, "POST", "/healthz").status == 405
        assert request(server.port, "GET", "/simulate").status == 405

    def test_bad_simulate_params_are_400(self, server):
        for payload in (
            {"machine": "nope"},
            {"machine": "tsubame2", "replications": 0},
            {"machine": "tsubame2", "replications": 100000},
            {"machine": "tsubame2", "horizon_hours": "long"},
        ):
            response = request(
                server.port, "POST", "/simulate", payload
            )
            assert response.status == 400, payload

    def test_statsz_sections(self, server):
        payload = json.loads(request(server.port, "GET", "/statsz").body)
        assert set(payload) >= {
            "server",
            "cache",
            "singleflight",
            "batcher",
            "admission",
            "datasets",
        }
        assert payload["server"]["requests_total"] > 0


class TestCaching:
    def test_cache_hit_is_byte_identical(self, server):
        cold = request(server.port, "GET", "/analyze/t3/breakdown")
        warm = request(server.port, "GET", "/analyze/t3/breakdown")
        assert warm.getheader("X-Cache") == "hit"
        assert cold.body == warm.body

    def test_simulate_cache_hit(self, server):
        payload = {
            "machine": "tsubame2",
            "replications": 2,
            "horizon_hours": 150.0,
            "seed": 3,
        }
        cold = request(server.port, "POST", "/simulate", payload)
        assert cold.status == 200
        warm = request(server.port, "POST", "/simulate", payload)
        assert warm.getheader("X-Cache") == "hit"
        assert cold.body == warm.body
        # Spelling the same params differently hits the same key.
        reordered = dict(reversed(list(payload.items())))
        assert (
            request(
                server.port, "POST", "/simulate", reordered
            ).getheader("X-Cache")
            == "hit"
        )

    def test_upload_caches_by_content_fingerprint(self, server):
        t2 = server.app.registry.get("t2")
        import tempfile
        from pathlib import Path

        from repro.io import write_csv

        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "alt.csv"
            write_csv(t2.log, path)
            body = path.read_bytes()
        before = request(server.port, "GET", "/analyze/t2/metrics")
        # raw-bytes upload: go through http.client manually
        conn = http.client.HTTPConnection(
            "127.0.0.1", server.port, timeout=60
        )
        conn.request(
            "POST", "/datasets/t2b", body, {"Content-Type": "text/csv"}
        )
        response = conn.getresponse()
        uploaded = json.loads(response.read())
        conn.close()
        assert response.status == 201
        assert uploaded["failures"] == 150
        assert uploaded["quarantined_rows"] == 0
        # Same content => same fingerprint => shared cache entries.
        assert uploaded["fingerprint"] == t2.fingerprint
        warm = request(server.port, "GET", "/analyze/t2b/metrics")
        assert warm.getheader("X-Cache") == "hit"
        assert warm.body == before.body

    def test_upload_needs_a_recognised_format(self, server):
        conn = http.client.HTTPConnection(
            "127.0.0.1", server.port, timeout=60
        )
        conn.request("POST", "/datasets/x", b"data", {})
        response = conn.getresponse()
        status, body = response.status, response.read()
        conn.close()
        assert status == 415
        conn = http.client.HTTPConnection(
            "127.0.0.1", server.port, timeout=60
        )
        conn.request(
            "POST", "/datasets/x", b"data",
            {"Content-Type": "application/pdf"},
        )
        response = conn.getresponse()
        assert response.status == 415
        response.read()
        conn.close()

    def test_generate_registers_dataset(self, server):
        response = request(
            server.port,
            "POST",
            "/generate",
            {
                "name": "gen1",
                "machine": "tsubame3",
                "seed": 9,
                "failures": 40,
            },
        )
        assert response.status == 201
        assert json.loads(response.body)["failures"] == 40
        analyze = request(server.port, "GET", "/analyze/gen1/metrics")
        assert analyze.status == 200


class TestSingleFlight:
    def test_n_identical_concurrent_requests_one_execution(self, server):
        app = server.app
        barrier = threading.Barrier(8)
        payload = {
            "machine": "tsubame3",
            "replications": 2,
            "horizon_hours": 400.0,
            "seed": 77,
        }
        executions_before = app.singleflight.executions
        statuses: list[int] = []
        bodies: list[bytes] = []
        tags: list[str | None] = []
        lock = threading.Lock()

        def worker():
            barrier.wait()
            response = request(
                server.port, "POST", "/simulate", payload
            )
            with lock:
                statuses.append(response.status)
                bodies.append(response.body)
                tags.append(response.getheader("X-Cache"))

        threads = [
            threading.Thread(target=worker) for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert statuses == [200] * 8
        assert len(set(bodies)) == 1  # all byte-identical
        # The acceptance property: exactly one backend execution.
        executions = app.singleflight.executions - executions_before
        assert executions == 1
        assert tags.count("coalesced") + tags.count("hit") == 7

    def test_concurrent_clients_mixed_endpoints(self, server):
        paths = [
            "/analyze/t2/breakdown",
            "/analyze/t2/metrics",
            "/analyze/t3/spatial",
            "/analyze/t3/seasonal",
            "/healthz",
            "/datasets",
        ] * 4
        results: list[int] = []
        lock = threading.Lock()

        def worker(path: str):
            response = request(server.port, "GET", path)
            with lock:
                results.append(response.status)

        threads = [
            threading.Thread(target=worker, args=(path,))
            for path in paths
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert results == [200] * len(paths)


class TestKeepAlive:
    def test_many_requests_one_connection(self, server):
        conn = http.client.HTTPConnection(
            "127.0.0.1", server.port, timeout=30
        )
        try:
            for _ in range(5):
                conn.request("GET", "/healthz")
                response = conn.getresponse()
                assert response.status == 200
                response.read()
        finally:
            conn.close()

    def test_malformed_request_gets_400_not_hangup(self, server):
        import socket

        with socket.create_connection(
            ("127.0.0.1", server.port), timeout=10
        ) as sock:
            sock.sendall(b"GARBAGE\r\n\r\n")
            reply = sock.recv(4096)
        assert reply.startswith(b"HTTP/1.1 400")


class TestBackpressure:
    def test_rate_limited_client_gets_429_with_retry_after(self):
        app = make_app(rate_per_second=1.0, burst=2.0)
        with run_in_thread(app) as handle:
            headers = {"X-Client-Id": "greedy"}
            seen = []
            for _ in range(6):
                response = request(
                    handle.port, "GET", "/datasets", None, headers
                )
                seen.append(response.status)
                if response.status == 429:
                    assert int(response.getheader("Retry-After")) >= 1
                    payload = json.loads(response.body)
                    assert "rate budget" in payload["error"]["message"]
            assert 429 in seen
            # A different client is unaffected.
            other = request(
                handle.port,
                "GET",
                "/datasets",
                None,
                {"X-Client-Id": "patient"},
            )
            assert other.status == 200
            # healthz is exempt even for the limited client.
            health = request(
                handle.port, "GET", "/healthz", None, headers
            )
            assert health.status == 200

    def test_overload_sheds_503_with_retry_after(self):
        app = make_app(max_inflight=1, max_queue=0, workers=1)
        release = threading.Event()
        original = app.analyses["breakdown"]

        def slow(log):
            release.wait(timeout=30)
            return original(log)

        app.analyses["breakdown"] = slow
        with run_in_thread(app) as handle:
            results: list[tuple[int, str | None]] = []
            lock = threading.Lock()

            def worker(path):
                response = request(handle.port, "GET", path)
                with lock:
                    results.append(
                        (
                            response.status,
                            response.getheader("Retry-After"),
                        )
                    )

            blocker = threading.Thread(
                target=worker, args=("/analyze/t2/breakdown",)
            )
            blocker.start()
            deadline = time.time() + 10
            while app.admission.inflight == 0:
                assert time.time() < deadline, "blocker never admitted"
                time.sleep(0.005)
            # Inflight is full and the queue is zero: shed.
            shed = request(handle.port, "GET", "/analyze/t2/metrics")
            assert shed.status == 503
            assert int(shed.getheader("Retry-After")) >= 1
            release.set()
            blocker.join(timeout=30)
            assert results[0][0] == 200
            stats = json.loads(
                request(handle.port, "GET", "/statsz").body
            )
            assert stats["admission"]["shed"] >= 1
            assert stats["server"]["shed_total"] >= 1


class TestGracefulShutdown:
    def test_inflight_request_drains_before_stop(self):
        app = make_app(workers=1)
        entered = threading.Event()
        release = threading.Event()
        original = app.analyses["metrics"]

        def slow(log):
            entered.set()
            release.wait(timeout=30)
            return original(log)

        app.analyses["metrics"] = slow
        handle = run_in_thread(app, drain_timeout=30.0)
        result: dict[str, object] = {}

        def client():
            response = request(
                handle.port, "GET", "/analyze/t2/metrics"
            )
            result["status"] = response.status
            result["body"] = response.body

        thread = threading.Thread(target=client)
        thread.start()
        assert entered.wait(timeout=10)

        stopper = threading.Thread(target=handle.stop)
        stopper.start()
        time.sleep(0.1)  # stop() is now draining
        release.set()
        thread.join(timeout=30)
        stopper.join(timeout=30)
        # The accepted request completed despite the shutdown.
        assert result["status"] == 200
        assert json.loads(result["body"])["machine"] == "tsubame2"

    def test_healthz_reports_draining(self):
        app = make_app()
        with run_in_thread(app) as handle:
            app.begin_drain()
            payload = json.loads(
                request(handle.port, "GET", "/healthz").body
            )
            assert payload["status"] == "draining"
