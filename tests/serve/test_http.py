"""HTTP framing: parsing, limits, canonical JSON, error bodies."""

from __future__ import annotations

import asyncio
import json
import math

import pytest

from repro.serve.http import (
    MAX_BODY_BYTES,
    HttpError,
    HttpRequest,
    Response,
    error_body,
    json_body,
    read_request,
    render_response,
)


def parse(raw: bytes) -> HttpRequest | None:
    """Feed raw bytes through the async parser synchronously."""

    async def run() -> HttpRequest | None:
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(run())


class TestReadRequest:
    def test_basic_get(self):
        request = parse(
            b"GET /analyze/t2/breakdown?x=1&y=two HTTP/1.1\r\n"
            b"Host: localhost\r\nX-Client-Id: alice\r\n\r\n"
        )
        assert request.method == "GET"
        assert request.path == "/analyze/t2/breakdown"
        assert request.query == {"x": "1", "y": "two"}
        assert request.headers["host"] == "localhost"
        assert request.client_id == "alice"
        assert request.body == b""
        assert request.keep_alive

    def test_post_with_body(self):
        body = b'{"machine":"tsubame2"}'
        request = parse(
            b"POST /simulate HTTP/1.1\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )
        assert request.method == "POST"
        assert request.body == body
        assert request.json() == {"machine": "tsubame2"}

    def test_eof_returns_none(self):
        assert parse(b"") is None

    def test_connection_close(self):
        request = parse(
            b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n"
        )
        assert not request.keep_alive

    def test_http10_defaults_to_close(self):
        assert not parse(b"GET / HTTP/1.0\r\n\r\n").keep_alive
        assert parse(
            b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n"
        ).keep_alive

    def test_malformed_request_line(self):
        with pytest.raises(HttpError) as excinfo:
            parse(b"NONSENSE\r\n\r\n")
        assert excinfo.value.status == 400

    def test_unsupported_protocol(self):
        with pytest.raises(HttpError) as excinfo:
            parse(b"GET / SPDY/3\r\n\r\n")
        assert excinfo.value.status == 400

    def test_malformed_header(self):
        with pytest.raises(HttpError) as excinfo:
            parse(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n")
        assert excinfo.value.status == 400

    def test_bad_content_length(self):
        with pytest.raises(HttpError) as excinfo:
            parse(b"GET / HTTP/1.1\r\nContent-Length: ten\r\n\r\n")
        assert excinfo.value.status == 400

    def test_oversized_body_rejected(self):
        with pytest.raises(HttpError) as excinfo:
            parse(
                b"POST / HTTP/1.1\r\nContent-Length: "
                + str(MAX_BODY_BYTES + 1).encode()
                + b"\r\n\r\n"
            )
        assert excinfo.value.status == 413

    def test_oversized_headers_rejected(self):
        filler = b"X-Pad: " + b"a" * 4000 + b"\r\n"
        with pytest.raises(HttpError) as excinfo:
            parse(b"GET / HTTP/1.1\r\n" + filler * 10 + b"\r\n")
        assert excinfo.value.status == 431

    def test_malformed_json_body(self):
        request = parse(
            b"POST / HTTP/1.1\r\nContent-Length: 3\r\n\r\n{{{"
        )
        with pytest.raises(HttpError) as excinfo:
            request.json()
        assert excinfo.value.status == 400

    def test_empty_json_body_decodes_to_empty_dict(self):
        assert parse(b"POST / HTTP/1.1\r\n\r\n").json() == {}


class TestRenderResponse:
    def test_wire_format(self):
        wire = render_response(
            Response(200, b'{"ok":true}\n'), keep_alive=True
        )
        head, _, body = wire.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Content-Length: 12" in head
        assert b"Connection: keep-alive" in head
        assert body == b'{"ok":true}\n'

    def test_extra_headers_and_close(self):
        wire = render_response(
            Response(429, b"{}\n", {"Retry-After": "2"}),
            keep_alive=False,
        )
        assert b"HTTP/1.1 429 Too Many Requests" in wire
        assert b"Retry-After: 2" in wire
        assert b"Connection: close" in wire


class TestJsonBody:
    def test_canonical_encoding_is_key_order_independent(self):
        assert json_body({"b": 1, "a": 2}) == json_body({"a": 2, "b": 1})

    def test_non_finite_floats_are_sanitized(self):
        payload = json.loads(
            json_body(
                {"nan": math.nan, "inf": math.inf, "ninf": -math.inf}
            )
        )
        assert payload == {"nan": None, "inf": "inf", "ninf": "-inf"}

    def test_nested_structures(self):
        payload = json.loads(
            json_body({"rows": [(1, math.nan)], 3: "int-key"})
        )
        assert payload == {"rows": [[1, None]], "3": "int-key"}


class TestErrorBody:
    def test_shape(self):
        payload = json.loads(error_body("ValueError", "boom"))
        assert payload == {
            "error": {"type": "ValueError", "message": "boom"}
        }

    def test_truncation(self):
        payload = json.loads(error_body("E", "x" * 1000))
        assert len(payload["error"]["message"]) == 300
        assert payload["error"]["message"].endswith("...")
