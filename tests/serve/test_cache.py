"""Result cache: keys, LRU eviction, TTL expiry, accounting."""

from __future__ import annotations

import pytest

from repro.errors import ServeError
from repro.serve.cache import ResultCache, canonical_key


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestCanonicalKey:
    def test_param_order_is_irrelevant(self):
        assert canonical_key(
            "simulate", {"a": 1, "b": 2}
        ) == canonical_key("simulate", {"b": 2, "a": 1})

    def test_distinct_inputs_distinct_keys(self):
        base = canonical_key("simulate", {"seed": 1}, "fp")
        assert canonical_key("simulate", {"seed": 2}, "fp") != base
        assert canonical_key("analyze", {"seed": 1}, "fp") != base
        assert canonical_key("simulate", {"seed": 1}, "other") != base

    def test_fingerprint_none_versus_set(self):
        assert canonical_key("e", {}) != canonical_key("e", {}, "fp")

    def test_non_serializable_params_rejected(self):
        # Regression: json.dumps(default=str) used to coerce these.
        # An object's str() embeds id(), so the "same" request got a
        # different key per instance — every lookup a miss — while
        # distinct params with equal str() collided and served each
        # other's cached bytes.  Both directions must now refuse.
        with pytest.raises(ServeError, match="not JSON-serializable"):
            canonical_key("simulate", {"policy": object()})

    def test_equal_str_distinct_params_do_not_collide(self):
        class Spec:
            def __init__(self, hidden: int) -> None:
                self.hidden = hidden

            def __str__(self) -> str:
                return "spec"

        # Under default=str these two distinct params produced the
        # SAME key; now both are rejected before they can collide.
        with pytest.raises(ServeError):
            canonical_key("simulate", {"spec": Spec(1)})
        with pytest.raises(ServeError):
            canonical_key("simulate", {"spec": Spec(2)})

    def test_nan_params_rejected(self):
        # NaN != NaN, so a NaN param can never hit its own cache
        # entry; reject it at the key boundary like the body encoder
        # (repro.serve.http.json_body) already does.
        with pytest.raises(ServeError):
            canonical_key("analyze", {"threshold": float("nan")})


class TestResultCache:
    def test_miss_then_hit(self):
        cache = ResultCache(4, None)
        key = canonical_key("e", {})
        assert cache.get(key) is None
        cache.put(key, b"payload")
        assert cache.get(key) == b"payload"
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate == 0.5

    def test_lru_eviction_order(self):
        cache = ResultCache(2, None)
        cache.put("a", b"1")
        cache.put("b", b"2")
        cache.get("a")  # refresh a; b becomes LRU
        cache.put("c", b"3")
        assert cache.get("b") is None
        assert cache.get("a") == b"1"
        assert cache.get("c") == b"3"
        assert cache.evictions == 1

    def test_ttl_expiry(self):
        clock = FakeClock()
        cache = ResultCache(4, ttl_seconds=10.0, clock=clock)
        cache.put("k", b"v")
        clock.now = 9.9
        assert cache.get("k") == b"v"
        clock.now = 10.1
        assert cache.get("k") is None
        assert cache.expirations == 1
        assert len(cache) == 0

    def test_put_refreshes_ttl_and_value(self):
        clock = FakeClock()
        cache = ResultCache(4, ttl_seconds=10.0, clock=clock)
        cache.put("k", b"old")
        clock.now = 8.0
        cache.put("k", b"new")
        clock.now = 15.0  # 7s after refresh, 15s after first put
        assert cache.get("k") == b"new"

    def test_zero_capacity_disables_caching(self):
        cache = ResultCache(0, None)
        cache.put("k", b"v")
        assert cache.get("k") is None
        assert len(cache) == 0

    def test_stats_snapshot(self):
        cache = ResultCache(4, ttl_seconds=60.0)
        cache.put("k", b"v")
        cache.get("k")
        cache.get("absent")
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["hit_rate"] == 0.5

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ServeError):
            ResultCache(-1)
        with pytest.raises(ServeError):
            ResultCache(4, ttl_seconds=0.0)
