"""Coalescing: single-flight dedup and the micro-batcher."""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import ServeError
from repro.serve.coalesce import MicroBatcher, SingleFlight


def run(coro):
    return asyncio.run(coro)


class TestSingleFlight:
    def test_n_concurrent_one_execution(self):
        async def scenario():
            flight = SingleFlight()
            calls = 0
            release = asyncio.Event()

            async def thunk():
                nonlocal calls
                calls += 1
                await release.wait()
                return "value"

            tasks = [
                asyncio.ensure_future(flight.run("k", thunk))
                for _ in range(8)
            ]
            await asyncio.sleep(0)  # all callers reach the gate
            release.set()
            results = await asyncio.gather(*tasks)
            return calls, results, flight

        calls, results, flight = run(scenario())
        assert calls == 1
        assert [value for value, _ in results] == ["value"] * 8
        assert sum(coalesced for _, coalesced in results) == 7
        assert flight.executions == 1
        assert flight.coalesced == 7
        assert flight.inflight_keys == 0

    def test_distinct_keys_execute_independently(self):
        async def scenario():
            flight = SingleFlight()

            async def make(value):
                return value

            first = await flight.run("a", lambda: make(1))
            second = await flight.run("b", lambda: make(2))
            return first, second, flight.executions

        first, second, executions = run(scenario())
        assert first == (1, False)
        assert second == (2, False)
        assert executions == 2

    def test_sequential_same_key_reexecutes(self):
        async def scenario():
            flight = SingleFlight()
            calls = 0

            async def thunk():
                nonlocal calls
                calls += 1
                return calls

            await flight.run("k", thunk)
            await flight.run("k", thunk)
            return calls

        assert run(scenario()) == 2

    def test_error_propagates_to_all_waiters(self):
        async def scenario():
            flight = SingleFlight()
            release = asyncio.Event()

            async def thunk():
                await release.wait()
                raise ValueError("boom")

            tasks = [
                asyncio.ensure_future(flight.run("k", thunk))
                for _ in range(3)
            ]
            await asyncio.sleep(0)
            release.set()
            results = await asyncio.gather(*tasks, return_exceptions=True)
            return results

        results = run(scenario())
        assert all(isinstance(r, ValueError) for r in results)


class TestMicroBatcher:
    def test_linger_collects_a_batch(self):
        async def scenario():
            batches = []

            async def execute(items):
                batches.append(list(items))
                return [item * 10 for item in items]

            batcher = MicroBatcher(
                execute, max_batch=16, linger_seconds=0.05
            )
            results = await asyncio.gather(
                batcher.submit(1), batcher.submit(2), batcher.submit(3)
            )
            await batcher.close()
            return batches, results

        batches, results = run(scenario())
        assert batches == [[1, 2, 3]]
        assert results == [10, 20, 30]

    def test_full_batch_fires_without_waiting_linger(self):
        async def scenario():
            batches = []

            async def execute(items):
                batches.append(list(items))
                return items

            batcher = MicroBatcher(
                execute, max_batch=2, linger_seconds=60.0
            )
            results = await asyncio.wait_for(
                asyncio.gather(batcher.submit("a"), batcher.submit("b")),
                timeout=5.0,
            )
            await batcher.close()
            return batches, results

        batches, results = run(scenario())
        assert batches == [["a", "b"]]
        assert results == ["a", "b"]

    def test_per_item_exception_result(self):
        async def scenario():
            async def execute(items):
                return [
                    ValueError(f"bad {item}") if item == 2 else item
                    for item in items
                ]

            batcher = MicroBatcher(
                execute, max_batch=3, linger_seconds=0.01
            )
            results = await asyncio.gather(
                batcher.submit(1),
                batcher.submit(2),
                batcher.submit(3),
                return_exceptions=True,
            )
            await batcher.close()
            return results

        results = run(scenario())
        assert results[0] == 1
        assert isinstance(results[1], ValueError)
        assert results[2] == 3

    def test_raised_exception_fails_whole_batch(self):
        async def scenario():
            async def execute(items):
                raise RuntimeError("pool died")

            batcher = MicroBatcher(
                execute, max_batch=4, linger_seconds=0.01
            )
            results = await asyncio.gather(
                batcher.submit(1),
                batcher.submit(2),
                return_exceptions=True,
            )
            await batcher.close()
            return results

        results = run(scenario())
        assert all(isinstance(r, RuntimeError) for r in results)

    def test_wrong_result_count_is_an_error(self):
        async def scenario():
            async def execute(items):
                return items[:-1]

            batcher = MicroBatcher(
                execute, max_batch=2, linger_seconds=0.01
            )
            results = await asyncio.gather(
                batcher.submit(1),
                batcher.submit(2),
                return_exceptions=True,
            )
            await batcher.close()
            return results

        assert all(isinstance(r, ServeError) for r in run(scenario()))

    def test_stats_and_batching_factor(self):
        async def scenario():
            async def execute(items):
                return items

            batcher = MicroBatcher(
                execute, max_batch=8, linger_seconds=0.02
            )
            await asyncio.gather(*(batcher.submit(i) for i in range(4)))
            await batcher.submit(99)
            await batcher.close()
            return batcher

        batcher = run(scenario())
        assert batcher.batches == 2
        assert batcher.items == 5
        assert batcher.largest_batch == 4
        assert batcher.batching_factor == pytest.approx(2.5)

    def test_closed_batcher_refuses_submissions(self):
        async def scenario():
            async def execute(items):
                return items

            batcher = MicroBatcher(execute)
            await batcher.close()
            with pytest.raises(ServeError):
                await batcher.submit(1)

        run(scenario())

    def test_invalid_parameters_rejected(self):
        async def noop(items):
            return items

        with pytest.raises(ServeError):
            MicroBatcher(noop, max_batch=0)
        with pytest.raises(ServeError):
            MicroBatcher(noop, linger_seconds=-1.0)
