"""Chaos tests: the service must degrade, never die.

Reuses the :mod:`repro.testing.chaos` harness against a live server:
flaky and poisoned analysis handlers, corrupted upload bodies.  The
properties under test: a failing handler answers **500 with a JSON
error body and no traceback text**, the server keeps serving
afterwards, errors are never cached, and no accepted request is
dropped.
"""

from __future__ import annotations

import http.client
import json
import threading

import pytest

from repro.io import write_csv, write_jsonl
from repro.serve import DatasetRegistry, ReproApp, run_in_thread
from repro.serve.app import ANALYSES
from repro.synth import GeneratorConfig, generate_log
from repro.testing.chaos import (
    ChaosInjectedError,
    FlakyFunction,
    PoisonedFunction,
    corrupt_log_file,
)


def small_log():
    # Small on purpose: FlakyFunction digests repr(item) per call.
    return generate_log(
        "tsubame2", config=GeneratorConfig(seed=5, num_failures=40)
    )


def make_app(**kwargs) -> ReproApp:
    registry = DatasetRegistry()
    registry.register("t2", small_log(), source="test")
    kwargs.setdefault("workers", 1)
    return ReproApp(registry, **kwargs)


def request(port, method, path, body=None, headers=None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    try:
        conn.request(method, path, body, headers or {})
        response = conn.getresponse()
        response.body = response.read()
        return response
    finally:
        conn.close()


class TestFlakyHandler:
    def test_transient_fault_then_recovery(self, tmp_path):
        app = make_app()
        app.analyses["breakdown"] = FlakyFunction(
            ANALYSES["breakdown"], failures=2, state_dir=tmp_path
        )
        with run_in_thread(app) as handle:
            statuses = []
            for _ in range(4):
                response = request(
                    handle.port, "GET", "/analyze/t2/breakdown"
                )
                statuses.append(response.status)
                payload = json.loads(response.body)
                raw = response.body.decode()
                assert "Traceback" not in raw
                assert "File \"" not in raw
                if response.status == 500:
                    assert (
                        payload["error"]["type"] == "ChaosInjectedError"
                    )
            # Two injected failures, then the handler heals.
            assert statuses == [500, 500, 200, 200]
            # The server is still fully alive on other endpoints.
            assert (
                request(handle.port, "GET", "/healthz").status == 200
            )

    def test_errors_are_never_cached(self, tmp_path):
        app = make_app()
        app.analyses["metrics"] = FlakyFunction(
            ANALYSES["metrics"], failures=1, state_dir=tmp_path
        )
        with run_in_thread(app) as handle:
            first = request(handle.port, "GET", "/analyze/t2/metrics")
            assert first.status == 500
            second = request(handle.port, "GET", "/analyze/t2/metrics")
            assert second.status == 200
            # The success was computed fresh, not replayed from cache.
            assert second.getheader("X-Cache") == "miss"
            third = request(handle.port, "GET", "/analyze/t2/metrics")
            assert third.status == 200
            assert third.getheader("X-Cache") == "hit"
            assert third.body == second.body


class TestPoisonedHandler:
    def test_permanently_broken_endpoint_isolates(self):
        app = make_app()
        log = app.registry.get("t2").log
        app.analyses["spatial"] = PoisonedFunction(
            ANALYSES["spatial"], poisoned=[log]
        )
        with run_in_thread(app) as handle:
            for _ in range(3):
                response = request(
                    handle.port, "GET", "/analyze/t2/spatial"
                )
                assert response.status == 500
                payload = json.loads(response.body)
                assert payload["error"]["type"] == "ChaosInjectedError"
                assert "Traceback" not in response.body.decode()
            # Sibling endpoints are unaffected.
            ok = request(handle.port, "GET", "/analyze/t2/breakdown")
            assert ok.status == 200

    def test_no_accepted_request_dropped_under_chaos(self, tmp_path):
        """Concurrent clients against a flaky handler: every accepted
        request gets exactly one well-formed HTTP answer."""
        app = make_app(workers=2)
        app.analyses["breakdown"] = FlakyFunction(
            ANALYSES["breakdown"], failures=3, state_dir=tmp_path
        )
        with run_in_thread(app) as handle:
            paths = (
                ["/analyze/t2/breakdown"] * 6
                + ["/analyze/t2/metrics"] * 5
                + ["/healthz"] * 5
            )
            answers: list[tuple[str, int, bytes]] = []
            lock = threading.Lock()

            def worker(path):
                response = request(handle.port, "GET", path)
                with lock:
                    answers.append(
                        (path, response.status, response.body)
                    )

            threads = [
                threading.Thread(target=worker, args=(p,))
                for p in paths
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)

            assert len(answers) == len(paths)  # nothing dropped
            for path, status, body in answers:
                assert status in (200, 500), (path, status)
                json.loads(body)  # every body is well-formed JSON
                assert b"Traceback" not in body
                if path != "/analyze/t2/breakdown":
                    assert status == 200, path
            # The injected faults surfaced on the flaky endpoint...
            flaky = [
                s for p, s, _ in answers
                if p == "/analyze/t2/breakdown"
            ]
            assert 500 in flaky
            # ...and the server is intact afterwards.  Coalescing may
            # have collapsed the concurrent attempts, so retry past
            # the remaining injected-fault budget (3 in total).
            final = [
                request(
                    handle.port, "GET", "/analyze/t2/breakdown"
                ).status
                for _ in range(4)
            ]
            assert final[-1] == 200


class TestCorruptedUploads:
    @pytest.mark.parametrize("format", ["csv", "jsonl"])
    def test_strict_upload_rejects_corruption_cleanly(
        self, tmp_path, format
    ):
        clean = tmp_path / f"clean.{format}"
        dirty = tmp_path / f"dirty.{format}"
        writer = write_csv if format == "csv" else write_jsonl
        writer(small_log(), clean)
        manifest = corrupt_log_file(clean, dirty, seed=3, rate=0.3)
        assert manifest  # some rows corrupted
        app = make_app()
        with run_in_thread(app) as handle:
            response = request(
                handle.port,
                "POST",
                f"/datasets/dirty?format={format}",
                dirty.read_bytes(),
            )
            assert response.status == 400
            payload = json.loads(response.body)
            assert "Traceback" not in response.body.decode()
            assert payload["error"]["type"]
            # Nothing half-registered.
            listing = json.loads(
                request(handle.port, "GET", "/datasets").body
            )
            assert [d["name"] for d in listing["datasets"]] == ["t2"]

    def test_lenient_upload_quarantines_and_registers(self, tmp_path):
        clean = tmp_path / "clean.jsonl"
        dirty = tmp_path / "dirty.jsonl"
        write_jsonl(small_log(), clean)
        corrupt_log_file(clean, dirty, seed=3, rate=0.3)
        app = make_app()
        with run_in_thread(app) as handle:
            response = request(
                handle.port,
                "POST",
                "/datasets/dirty?format=jsonl&on_error=collect",
                dirty.read_bytes(),
            )
            assert response.status == 201
            payload = json.loads(response.body)
            assert payload["quarantined_rows"] > 0
            # Corruption can duplicate rows, so exact conservation is
            # not guaranteed — but clean rows must have survived.
            assert payload["failures"] > 0
            # The quarantined dataset is analyzable.
            ok = request(
                handle.port, "GET", "/analyze/dirty/breakdown"
            )
            assert ok.status == 200

    def test_unknown_on_error_mode_is_400(self, tmp_path):
        clean = tmp_path / "clean.csv"
        write_csv(small_log(), clean)
        app = make_app()
        with run_in_thread(app) as handle:
            response = request(
                handle.port,
                "POST",
                "/datasets/x?format=csv&on_error=wishful",
                clean.read_bytes(),
            )
            assert response.status == 400


class TestChaosInSimulate:
    def test_simulate_batch_chaos_fails_only_that_request(self):
        """A chaos-injected failure inside the batch executor fails
        its own request with a clean 500 and leaves the server up."""
        app = make_app()
        original = app.batcher._execute

        calls = {"n": 0}

        async def sabotaged(jobs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise ChaosInjectedError("pool exploded")
            return await original(jobs)

        app.batcher._execute = sabotaged
        payload = json.dumps(
            {
                "machine": "tsubame2",
                "replications": 1,
                "horizon_hours": 100.0,
            }
        ).encode()
        with run_in_thread(app) as handle:
            first = request(
                handle.port, "POST", "/simulate", payload
            )
            assert first.status == 500
            body = json.loads(first.body)
            assert body["error"]["type"] == "ChaosInjectedError"
            assert "Traceback" not in first.body.decode()
            # Retry succeeds: the error was not cached.
            second = request(
                handle.port, "POST", "/simulate", payload
            )
            assert second.status == 200
