"""The ``repro-failures serve`` subcommand and its exit-code contract.

The server runs as a real subprocess (signals don't cross thread
boundaries cleanly), probed over HTTP and stopped with SIGINT.  The
PR-3 exit-code contract must hold on the serving path too: 1 for
domain errors (bad dataset spec), 2 for environment errors (port in
use), 130 for Ctrl-C.
"""

from __future__ import annotations

import json
import os
import re
import signal
import socket
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]


def serve_env() -> dict[str, str]:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        f"{src}{os.pathsep}{existing}" if existing else src
    )
    return env


def spawn_serve(*extra_args: str) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         *extra_args],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=serve_env(),
        cwd=REPO_ROOT,
    )


def wait_for_port(proc: subprocess.Popen, timeout: float = 60.0) -> int:
    """Read stdout until the 'serving on' line; return the port."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line and proc.poll() is not None:
            raise AssertionError(
                f"server exited early with {proc.returncode}"
            )
        match = re.search(r"http://[\d.]+:(\d+)", line)
        if match:
            return int(match.group(1))
    raise AssertionError("server never printed its address")


class TestServeLifecycle:
    def test_serves_and_exits_130_on_sigint(self):
        proc = spawn_serve(
            "--datasets", "t2=synth:tsubame2:42:60", "--cache-ttl", "60"
        )
        try:
            port = wait_for_port(proc)
            health = json.loads(
                urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/healthz", timeout=10
                ).read()
            )
            assert health["status"] == "ok"
            assert health["datasets"] == ["t2"]
            analyze = json.loads(
                urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/analyze/t2/breakdown",
                    timeout=30,
                ).read()
            )
            assert analyze["machine"] == "tsubame2"
        finally:
            proc.send_signal(signal.SIGINT)
            returncode = proc.wait(timeout=30)
        assert returncode == 130

    def test_default_datasets_register_both_machines(self):
        proc = spawn_serve("--datasets",
                           "t2=synth:tsubame2:1:30,t3=synth:tsubame3:1:30")
        try:
            port = wait_for_port(proc)
            listing = json.loads(
                urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/datasets", timeout=10
                ).read()
            )
            names = [d["name"] for d in listing["datasets"]]
            assert names == ["t2", "t3"]
        finally:
            proc.send_signal(signal.SIGINT)
            proc.wait(timeout=30)


class TestServeFailureExitCodes:
    def test_malformed_dataset_spec_exits_1(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.cli", "serve",
             "--datasets", "not-a-spec"],
            capture_output=True, text=True, env=serve_env(),
            cwd=REPO_ROOT, timeout=60,
        )
        assert result.returncode == 1
        assert "error:" in result.stderr
        assert "Traceback" not in result.stderr

    def test_unknown_machine_spec_exits_1(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.cli", "serve",
             "--datasets", "x=synth:crayxk7"],
            capture_output=True, text=True, env=serve_env(),
            cwd=REPO_ROOT, timeout=60,
        )
        assert result.returncode == 1

    def test_missing_dataset_file_exits_2(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.cli", "serve",
             "--datasets", "x=/no/such/file.csv"],
            capture_output=True, text=True, env=serve_env(),
            cwd=REPO_ROOT, timeout=60,
        )
        assert result.returncode == 2

    def test_port_in_use_exits_2(self):
        blocker = socket.socket()
        try:
            blocker.bind(("127.0.0.1", 0))
            blocker.listen(1)
            busy_port = blocker.getsockname()[1]
            result = subprocess.run(
                [sys.executable, "-m", "repro.cli", "serve",
                 "--port", str(busy_port), "--datasets", ""],
                capture_output=True, text=True, env=serve_env(),
                cwd=REPO_ROOT, timeout=60,
            )
        finally:
            blocker.close()
        assert result.returncode == 2
        assert "error:" in result.stderr
        assert "Traceback" not in result.stderr


class TestServeParser:
    def test_parser_accepts_all_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "--host", "0.0.0.0", "--port", "9999",
             "--datasets", "a=synth:tsubame2",
             "--workers", "4", "--cache-size", "64",
             "--cache-ttl", "30", "--max-inflight", "2",
             "--max-queue", "4", "--rate-limit", "5", "--burst", "9"]
        )
        assert args.command == "serve"
        assert args.port == 9999
        assert args.workers == 4
        assert args.rate_limit == 5.0

    def test_serve_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8080
        assert "synth:tsubame2" in args.datasets
        assert args.cache_size == 256
        assert args.rate_limit is None
