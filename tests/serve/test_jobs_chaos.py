"""Chaos against the job queue: crashes lose nothing, duplicate nothing.

Drives :class:`repro.serve.JobQueue` with executors that fail the way
real pools fail — a worker process hard-killed mid-item
(:class:`~repro.testing.chaos.CrashOnce` → ``os._exit`` inside the
warm :mod:`repro.parallel` pool) and deterministically poisoned items
— and asserts the accounting contract:

* every submitted job reaches exactly **one** terminal state;
* no result is lost (a crash surfaces as a completed re-run or an
  attributed ``failed``, never a silently vanished job);
* no result is duplicated (each job's executor runs at most once per
  submission, and the terminal counters reconcile with submissions).
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.parallel import sweep
from repro.serve.jobs import JobQueue
from repro.testing.chaos import ChaosInjectedError, CrashOnce, PoisonedFunction


def run(coro):
    return asyncio.run(coro)


def _cube(value: int) -> int:
    return value ** 3


async def wait_all_terminal(queue, jobs, timeout=60.0):
    deadline = asyncio.get_running_loop().time() + timeout
    for job in jobs:
        while not job.terminal:
            assert (
                asyncio.get_running_loop().time() < deadline
            ), f"job {job.id} stuck {job.status}"
            await asyncio.sleep(0.01)


def test_pool_worker_crash_loses_no_job(tmp_path):
    """A job whose sweep hard-kills a pool worker still completes.

    The sweep layer re-runs the dead worker's chunk in-process and
    respawns the pool; from the job queue's perspective the executor
    simply returned — the job must land ``done`` with the full,
    correct result, exactly once.
    """
    crashing = CrashOnce(_cube, crash_items=[13], state_dir=tmp_path)
    execution_counts: dict[str, int] = {}

    async def execute(params, job):
        execution_counts[job.id] = execution_counts.get(job.id, 0) + 1
        values = params["values"]
        results = await asyncio.to_thread(
            sweep, crashing, values, 2
        )
        return json.dumps(results).encode()

    async def scenario():
        queue = JobQueue(execute, concurrency=2)
        # One job routes through the crash item, the others are calm;
        # the dead worker must not take any sibling job with it.
        jobs = [
            queue.submit({"values": [1, 2, 3]}),
            queue.submit({"values": [11, 12, 13, 14]}, priority=1),
            queue.submit({"values": [5, 6]}),
        ]
        await wait_all_terminal(queue, jobs)
        await queue.close()
        return queue, jobs

    queue, jobs = run(scenario())
    assert [job.status for job in jobs] == ["done", "done", "done"]
    assert json.loads(jobs[1].result) == [11**3, 12**3, 13**3, 14**3]
    assert json.loads(jobs[0].result) == [1, 8, 27]
    # No duplication: each job executed exactly once, and the
    # terminal counters reconcile with submissions.
    assert all(count == 1 for count in execution_counts.values())
    assert queue.completed == queue.submitted == 3
    assert queue.failed == queue.cancelled == 0


def test_poisoned_job_fails_attributed_siblings_unharmed(tmp_path):
    poisoned = PoisonedFunction(_cube, poisoned=[7])

    async def execute(params, job):
        results = await asyncio.to_thread(
            sweep, poisoned, params["values"], 1
        )
        return json.dumps(results).encode()

    async def scenario():
        queue = JobQueue(execute, concurrency=2)
        bad = queue.submit({"values": [6, 7, 8]})
        good = queue.submit({"values": [2, 3]})
        await wait_all_terminal(queue, [bad, good])
        await queue.close()
        return queue, bad, good

    queue, bad, good = run(scenario())
    assert bad.status == "failed"
    # sweep() wraps the per-item failure; the chaos origin stays
    # visible in the attributed message.
    assert bad.error["type"] == "SweepItemError"
    assert "poisoned" in bad.error["message"]
    assert bad.result is None  # a failed job never carries a result
    assert good.status == "done"
    assert json.loads(good.result) == [8, 27]
    assert queue.submitted == 2
    assert queue.completed == 1 and queue.failed == 1


def test_terminal_accounting_reconciles_under_mixed_chaos(tmp_path):
    """Submitted == done + failed + cancelled, with zero overlap."""
    poisoned = PoisonedFunction(_cube, poisoned=[99])
    started = asyncio.Event()
    release = asyncio.Event()

    async def execute(params, job):
        if params.get("slow"):
            started.set()
            await release.wait()
        if params["value"] == 99:
            poisoned(99)  # raises ChaosInjectedError
        return str(_cube(params["value"])).encode()

    async def scenario():
        queue = JobQueue(execute, concurrency=1)
        slow = queue.submit({"value": 1, "slow": True})
        await started.wait()
        ok = queue.submit({"value": 4})
        bad = queue.submit({"value": 99})
        doomed = queue.submit({"value": 5})
        queue.cancel(doomed.id, reason="client request")
        release.set()
        await wait_all_terminal(queue, [slow, ok, bad, doomed])
        await queue.close()
        return queue, (slow, ok, bad, doomed)

    queue, (slow, ok, bad, doomed) = run(scenario())
    assert slow.status == "done" and slow.result == b"1"
    assert ok.status == "done" and ok.result == b"64"
    assert bad.status == "failed"
    assert doomed.status == "cancelled"
    assert doomed.cancel_reason == "client request"
    terminal_total = queue.completed + queue.failed + queue.cancelled
    assert terminal_total == queue.submitted == 4
    # Exactly one terminal state each: the records agree with the
    # counters, so nothing was double-counted or resurrected.
    statuses = sorted(job.status for job in queue.list(limit=10))
    assert statuses == ["cancelled", "done", "done", "failed"]
