"""Consistent-hash ring invariants.

The ring is the router's only coordination mechanism — shards and a
respawned router must agree on key placement with no shared state —
so these properties are load-bearing:

* determinism across processes (pure function of shards/vnodes/key,
  independent of ``PYTHONHASHSEED``),
* every shard owns a non-degenerate share of the keyspace,
* growing the fleet N → N+1 moves only the keys claimed by the *new*
  shard: nothing ever moves between surviving shards.
"""

import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ServeError
from repro.serve import HashRing


def test_rejects_degenerate_parameters():
    with pytest.raises(ServeError):
        HashRing(0)
    with pytest.raises(ServeError):
        HashRing(2, vnodes=0)


def test_single_shard_owns_everything():
    ring = HashRing(1)
    assert all(
        ring.shard_for(f"key-{i}") == 0 for i in range(100)
    )


def test_mapping_is_deterministic_across_instances():
    a, b = HashRing(5), HashRing(5)
    keys = [f"fingerprint-{i:04d}" for i in range(500)]
    assert [a.shard_for(k) for k in keys] == [
        b.shard_for(k) for k in keys
    ]


def test_mapping_is_stable_across_processes():
    """SHA-256, not ``hash()``: a fresh interpreter with a different
    PYTHONHASHSEED must place keys identically."""
    keys = [f"key-{i}" for i in range(50)]
    here = [HashRing(4).shard_for(k) for k in keys]
    script = (
        "from repro.serve import HashRing\n"
        "ring = HashRing(4)\n"
        f"print([ring.shard_for(k) for k in {keys!r}])\n"
    )
    import repro

    src_dir = str(Path(repro.__file__).resolve().parents[1])
    result = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        check=True,
        env={"PYTHONPATH": src_dir, "PYTHONHASHSEED": "12345"},
    )
    assert eval(result.stdout.strip()) == here


def test_load_spreads_across_all_shards():
    ring = HashRing(4)
    keys = [f"sha256:{i:06d}" for i in range(4000)]
    spread = ring.spread(keys)
    assert set(spread) == {0, 1, 2, 3}
    # With 64 vnodes/shard the split is well within 2x of fair.
    assert min(spread.values()) > 0
    assert max(spread.values()) / (len(keys) / 4) < 2.0


def test_growing_the_ring_moves_keys_only_to_the_new_shard():
    keys = [f"dataset-{i:05d}" for i in range(3000)]
    for n in (1, 2, 3, 5, 8):
        before = HashRing(n)
        after = HashRing(n + 1)
        moved = 0
        for key in keys:
            old, new = before.shard_for(key), after.shard_for(key)
            if old != new:
                moved += 1
                # The minimal-movement invariant: a key that moves
                # can only have been claimed by the newcomer.
                assert new == n, (key, old, new)
        # The newcomer claims ≈ 1/(n+1) of the keyspace; allow 2x
        # slack for vnode placement variance.
        assert moved <= 2 * len(keys) / (n + 1), (n, moved)


@settings(max_examples=200, deadline=None)
@given(
    key=st.text(min_size=0, max_size=64),
    n=st.integers(min_value=1, max_value=12),
)
def test_property_growth_never_reshuffles_survivors(key, n):
    old = HashRing(n).shard_for(key)
    new = HashRing(n + 1).shard_for(key)
    assert new == old or new == n


@settings(max_examples=100, deadline=None)
@given(key=st.text(min_size=0, max_size=64))
def test_property_same_key_same_shard(key):
    ring = HashRing(7)
    assert ring.shard_for(key) == ring.shard_for(key)
    assert 0 <= ring.shard_for(key) < 7
