"""Router + real shard processes over real sockets, end to end.

The scale-out acceptance suite: a :class:`~repro.serve.RouterApp`
fronting two spawned shard workers must

* route by dataset with stable affinity (``X-Shard`` pins a dataset
  to one shard across repeats),
* serve byte-identical payloads for the same request no matter which
  shard answers (canonical JSON + shared-nothing replicas),
* survive a shard being killed: the router respawns it, re-seeds its
  cache from ``store:`` datasets (first request after respawn is a
  cache *hit*), and sheds with 503 + ``Retry-After`` only while the
  replacement is coming up,
* pass shard backpressure through unchanged,
* aggregate per-shard telemetry into one fleet view
  (``/statsz?fleet=1``) whose counters reconcile.

Spawning real processes is slow, so one module-scoped fleet serves
all read-only tests; the destructive kill/respawn test builds its own.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.serve import RouterApp, run_router_in_thread
from repro.store import ingest_log
from repro.synth import GeneratorConfig, generate_log
from tests.serve.test_server_e2e import request

@pytest.fixture(scope="module")
def store_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("router-store") / "events.store"
    log = generate_log(
        "tsubame3", config=GeneratorConfig(seed=9, num_failures=120)
    )
    ingest_log(path, log)
    return path


@pytest.fixture(scope="module")
def fleet(store_path):
    router = RouterApp(
        2,
        (
            "t2=synth:tsubame2:42",
            "t3=synth:tsubame3:42",
            f"ev=store:{store_path}",
        ),
        workers=1,
    )
    with run_router_in_thread(router) as handle:
        yield router, handle.port


def _shard_of(response) -> int:
    return int(response.getheader("X-Shard"))


class TestRoutingAffinity:
    def test_same_dataset_same_shard_every_time(self, fleet):
        _, port = fleet
        shards = set()
        for _ in range(5):
            response = request(port, "GET", "/analyze/t2/breakdown")
            assert response.status == 200
            shards.add(_shard_of(response))
        assert len(shards) == 1

    def test_affinity_turns_repeats_into_cache_hits(self, fleet):
        _, port = fleet
        first = request(port, "GET", "/analyze/t2/metrics")
        again = request(port, "GET", "/analyze/t2/metrics")
        assert again.getheader("X-Cache") == "hit"
        assert again.body == first.body  # byte-identical via cache

    def test_unknown_dataset_404s_with_shard_detail(self, fleet):
        _, port = fleet
        response = request(port, "GET", "/analyze/nope/breakdown")
        assert response.status == 404
        payload = json.loads(response.body)
        assert "unknown dataset" in payload["error"]["message"]

    def test_router_health_and_topology(self, fleet):
        router, port = fleet
        health = json.loads(request(port, "GET", "/healthz").body)
        assert health["role"] == "router"
        assert health["status"] == "ok"
        assert health["shards_alive"] == [0, 1]
        topology = json.loads(request(port, "GET", "/shards").body)
        assert topology["num_shards"] == 2
        ports = {shard["port"] for shard in topology["shards"]}
        assert len(ports) == 2  # distinct backend sockets


class TestByteIdentityAcrossShards:
    def test_every_shard_returns_identical_bytes(self, fleet):
        """Ask each shard's private port directly: same bytes."""
        router, _ = fleet
        for path in ("/analyze/t2/breakdown", "/analyze/t3/metrics"):
            bodies = set()
            for shard in router._shards.values():
                response = request(shard.port, "GET", path)
                assert response.status == 200
                bodies.add(response.body)
            assert len(bodies) == 1, path

    def test_simulate_identical_through_router_and_shard(self, fleet):
        router, port = fleet
        payload = {
            "machine": "tsubame2",
            "replications": 2,
            "horizon_hours": 50.0,
            "seed": 77,
        }
        routed = request(
            port, "POST", "/simulate", payload,
            {"Content-Type": "application/json"},
        )
        assert routed.status == 200
        owner = _shard_of(routed)
        direct = request(
            router._shards[owner].port, "POST", "/simulate", payload,
            {"Content-Type": "application/json"},
        )
        assert direct.body == routed.body


class TestJobsThroughRouter:
    def test_job_lifecycle_and_cross_process_polling(self, fleet):
        _, port = fleet
        payload = {
            "machine": "tsubame3",
            "replications": 2,
            "horizon_hours": 40.0,
            "seed": 31,
            "priority": 3,
        }
        submitted = request(
            port, "POST", "/jobs", payload,
            {"Content-Type": "application/json"},
        )
        assert submitted.status == 202
        job = json.loads(submitted.body)["job"]
        assert job["priority"] == 3
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            polled = request(port, "GET", f"/jobs/{job['id']}")
            assert polled.status == 200
            record = json.loads(polled.body)
            if record["job"]["status"] != "queued" and (
                record["job"]["status"] != "running"
            ):
                break
            time.sleep(0.05)
        assert record["job"]["status"] == "done"
        assert record["result"]["machine"] == "tsubame3"

    def test_unknown_and_malformed_job_ids_404(self, fleet):
        _, port = fleet
        assert request(
            port, "GET", "/jobs/s0-999999-ffffffff"
        ).status == 404
        assert request(port, "GET", "/jobs/bogus").status == 404
        assert request(port, "DELETE", "/jobs/s9-000000-00").status \
            in (404, 503)

    def test_jobs_list_fans_out_across_shards(self, fleet):
        _, port = fleet
        listed = request(port, "GET", "/jobs")
        assert listed.status == 200
        payload = json.loads(listed.body)
        assert payload["shards"] == 2
        assert isinstance(payload["jobs"], list)


class TestBackpressurePassthrough:
    def test_shard_rate_limit_reaches_client_unchanged(self, store_path):
        router = RouterApp(
            2,
            ("t2=synth:tsubame2:42",),
            workers=1,
            rate_per_second=1.0,
            burst=2.0,
        )
        with run_router_in_thread(router) as handle:
            statuses = []
            retry_after = None
            for _ in range(6):
                response = request(
                    handle.port, "GET", "/analyze/t2/breakdown",
                    headers={"X-Client-Id": "hammer"},
                )
                statuses.append(response.status)
                if response.status == 429:
                    retry_after = response.getheader("Retry-After")
            assert 429 in statuses, statuses
            assert retry_after is not None
            assert int(retry_after) >= 1


class TestFleetTelemetry:
    def test_fleet_statsz_reconciles_counters(self, fleet):
        router, port = fleet
        # Generate traffic on both shards first.
        for path in ("/analyze/t2/breakdown", "/analyze/t3/spatial"):
            for _ in range(3):
                assert request(port, "GET", path).status == 200
        fleet_view = json.loads(
            request(port, "GET", "/statsz?fleet=1").body
        )
        assert fleet_view["fleet"] is True
        assert fleet_view["shards_reporting"] == [0, 1]
        server = fleet_view["server"]
        assert server["shards"] == 2
        # The merged total equals the sum of per-shard totals read
        # directly off the private ports.
        per_shard = 0
        for shard in router._shards.values():
            snapshot = json.loads(
                request(shard.port, "GET", "/statsz").body
            )
            per_shard += snapshot["server"]["requests_total"]
        # The two direct /statsz probes above are not in the merged
        # view (taken after), so allow only that skew.
        assert server["requests_total"] <= per_shard
        assert per_shard - server["requests_total"] <= 2
        # Ratio fields recomputed, not summed.
        cache = fleet_view["cache"]
        assert 0.0 <= cache["hit_rate"] <= 1.0
        hits, misses = cache["hits"], cache["misses"]
        assert cache["hit_rate"] == pytest.approx(
            hits / (hits + misses), abs=1e-6
        )
        # Merged latency distributions carry quantiles with the
        # additive-epsilon bound, not averaged averages.
        analyze = server["endpoints"]["analyze"]
        assert analyze["latency_ms"]["p50"] > 0.0
        assert analyze["latency_ms"]["merged_epsilon"] <= 0.02 + 1e-9
        assert fleet_view["datasets"]["t2"]

    def test_router_statsz_reports_backend_pools(self, fleet):
        _, port = fleet
        payload = json.loads(request(port, "GET", "/statsz").body)
        assert set(payload["backends"]) == {"0", "1"}
        pool = payload["backends"]["0"]
        # Keep-alive reuse is the whole point of the pool.
        assert pool["connections_reused"] > 0 or pool["requests"] <= 1


class TestKillAndRespawn:
    def test_killed_shard_respawns_with_warm_store_cache(
        self, store_path
    ):
        router = RouterApp(
            2,
            (f"ev=store:{store_path}", "t2=synth:tsubame2:42"),
            workers=1,
        )
        with run_router_in_thread(router) as handle:
            port = handle.port
            # Find the shard that owns the store dataset.
            response = request(port, "GET", "/analyze/ev/breakdown")
            assert response.status == 200
            owner = _shard_of(response)
            before = response.body
            victim = router._shards[owner]
            old_pid = victim.process.pid

            victim.process.kill()  # SIGKILL: no drain, no goodbye
            deadline = time.monotonic() + 60.0
            respawned = None
            while time.monotonic() < deadline:
                current = router._shards.get(owner)
                if current is not None and current.generation > 0:
                    respawned = current
                    break
                time.sleep(0.05)
            assert respawned is not None, "shard was not respawned"
            assert respawned.process.pid != old_pid
            assert respawned.respawns == 1

            # The replacement re-registered the store spec, so its
            # very first analytics request is a warm cache hit with
            # the byte-identical payload.
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                again = request(port, "GET", "/analyze/ev/breakdown")
                if again.status == 200:
                    break
                # Mid-respawn shedding is the documented 503.
                assert again.status == 503
                assert again.getheader("Retry-After") is not None
                time.sleep(0.05)
            assert again.status == 200
            assert _shard_of(again) == owner
            assert again.getheader("X-Cache") == "hit"
            assert again.body == before

            health = json.loads(request(port, "GET", "/healthz").body)
            assert health["shards_alive"] == [0, 1]


class TestRouterDrain:
    def test_drain_sheds_with_retry_after(self, store_path):
        router = RouterApp(1, ("t2=synth:tsubame2:42",), workers=1)
        with run_router_in_thread(router) as handle:
            port = handle.port
            assert request(
                port, "GET", "/analyze/t2/breakdown"
            ).status == 200
            router.begin_drain()
            shed = request(port, "GET", "/analyze/t2/breakdown")
            assert shed.status == 503
            assert shed.getheader("Retry-After") is not None
            # Observability stays reachable during the drain.
            health = json.loads(request(port, "GET", "/healthz").body)
            assert health["status"] == "draining"
