"""Server telemetry built on the repro.stream online estimators."""

from __future__ import annotations

import pytest

from repro.serve.stats import EndpointStats, ServerStats


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


class TestEndpointStats:
    def test_status_classes_and_latency(self):
        stats = EndpointStats()
        for latency in (0.010, 0.020, 0.030):
            stats.observe(200, latency)
        stats.observe(404, 0.001)
        stats.observe(503, 0.001)
        snapshot = stats.snapshot()
        assert snapshot["requests"] == 5
        assert snapshot["by_status"] == {"2xx": 3, "4xx": 1, "5xx": 1}
        assert snapshot["latency_ms"]["mean"] == pytest.approx(
            (10 + 20 + 30 + 1 + 1) / 5
        )
        assert 1.0 <= snapshot["latency_ms"]["p50"] <= 30.0
        assert snapshot["latency_ms"]["p99"] >= snapshot["latency_ms"]["p50"]

    def test_empty_snapshot_has_no_quantiles(self):
        snapshot = EndpointStats().snapshot()
        assert snapshot["requests"] == 0
        assert "p50" not in snapshot["latency_ms"]


class TestServerStats:
    def test_counters_by_status(self):
        clock = FakeClock()
        stats = ServerStats(clock=clock)
        stats.observe("analyze", 200, 0.01)
        stats.observe("analyze", 500, 0.01)
        stats.observe("simulate", 429, 0.001)
        stats.observe("simulate", 503, 0.001)
        assert stats.requests_total == 4
        assert stats.errors_5xx == 1
        assert stats.shed_total == 2

    def test_uptime_tracks_clock(self):
        clock = FakeClock()
        stats = ServerStats(clock=clock)
        clock.now += 12.5
        assert stats.uptime_seconds == pytest.approx(12.5)

    def test_request_rate_decays(self):
        clock = FakeClock()
        stats = ServerStats(rate_tau_seconds=10.0, clock=clock)
        for _ in range(50):
            clock.now += 0.1
            stats.observe("analyze", 200, 0.001)
        busy = stats.requests_per_second()
        assert busy > 1.0
        clock.now += 120.0  # long quiet period: rate must decay
        assert stats.requests_per_second() < busy / 10

    def test_snapshot_shape(self):
        clock = FakeClock()
        stats = ServerStats(clock=clock)
        stats.observe("healthz", 200, 0.001)
        snapshot = stats.snapshot()
        assert set(snapshot) == {
            "uptime_seconds",
            "requests_total",
            "errors_5xx",
            "shed_total",
            "requests_per_second",
            "endpoints",
        }
        assert "healthz" in snapshot["endpoints"]
