"""Admission control: token buckets, rate limiting, load shedding."""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import ServeError
from repro.serve.admission import (
    AdmissionController,
    RateLimiter,
    TokenBucket,
)
from repro.serve.http import HttpError


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(2.0, burst=3.0, clock=clock)
        assert all(bucket.try_acquire()[0] for _ in range(3))
        ok, wait = bucket.try_acquire()
        assert not ok
        assert wait == pytest.approx(0.5)
        clock.now = 0.5  # one token matured (2 tokens/s)
        assert bucket.try_acquire()[0]

    def test_bucket_never_exceeds_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(100.0, burst=2.0, clock=clock)
        clock.now = 60.0  # an hour's worth of refill
        assert bucket.try_acquire()[0]
        assert bucket.try_acquire()[0]
        assert not bucket.try_acquire()[0]

    def test_invalid_parameters(self):
        with pytest.raises(ServeError):
            TokenBucket(0.0, 1.0)
        with pytest.raises(ServeError):
            TokenBucket(1.0, 0.5)


class TestRateLimiter:
    def test_over_budget_raises_429_with_retry_after(self):
        clock = FakeClock()
        limiter = RateLimiter(1.0, burst=2.0, clock=clock)
        limiter.check("alice")
        limiter.check("alice")
        with pytest.raises(HttpError) as excinfo:
            limiter.check("alice")
        assert excinfo.value.status == 429
        assert excinfo.value.retry_after_seconds >= 1
        assert limiter.limited == 1
        assert limiter.allowed == 2

    def test_clients_have_independent_budgets(self):
        clock = FakeClock()
        limiter = RateLimiter(1.0, burst=1.0, clock=clock)
        limiter.check("alice")
        limiter.check("bob")  # alice's spend does not affect bob
        with pytest.raises(HttpError):
            limiter.check("alice")

    def test_lru_client_forgetting_is_bounded(self):
        clock = FakeClock()
        limiter = RateLimiter(
            1.0, burst=1.0, max_clients=2, clock=clock
        )
        limiter.check("a")
        limiter.check("b")
        limiter.check("c")  # evicts "a", the least recently seen
        assert limiter.stats()["clients_tracked"] == 2
        limiter.check("a")  # fresh bucket again, so allowed

    def test_eviction_rotation_cannot_reset_budget(self):
        # Regression: an evicted client used to come back to a fresh
        # full bucket, so rotating through max_clients + 1 identities
        # bypassed the rate limit entirely.  After an eviction, a
        # returning client gets one token plus the refill accrued
        # since the eviction — not a new burst.
        clock = FakeClock()
        limiter = RateLimiter(
            1.0, burst=5.0, max_clients=2, clock=clock
        )
        for _ in range(5):
            limiter.check("attacker")
        with pytest.raises(HttpError):
            limiter.check("attacker")  # burst spent
        limiter.check("pad")       # second tracked client
        limiter.check("rotate")    # evicts "attacker"
        assert limiter.evictions == 1
        limiter.check("attacker")  # re-admitted: 1 token, not 5
        with pytest.raises(HttpError) as excinfo:
            limiter.check("attacker")
        assert excinfo.value.status == 429

    def test_readmitted_client_refills_from_eviction_time(self):
        clock = FakeClock()
        limiter = RateLimiter(
            1.0, burst=3.0, max_clients=1, clock=clock
        )
        limiter.check("a")
        limiter.check("b")  # evicts "a" at t=0
        clock.now = 2.0
        # 1 granted + 2 s of refill at 1/s = 3 tokens (= burst cap).
        limiter.check("a")
        limiter.check("b")
        clock.now = 4.0
        limiter.check("a")
        with pytest.raises(HttpError):
            limiter.check("a")  # 1 + 2*rate spent; nothing left

    def test_new_clients_before_any_eviction_get_full_burst(self):
        clock = FakeClock()
        limiter = RateLimiter(
            1.0, burst=2.0, max_clients=8, clock=clock
        )
        limiter.check("a")
        limiter.check("a")  # full burst honoured: no eviction yet
        with pytest.raises(HttpError):
            limiter.check("a")

    def test_stats(self):
        limiter = RateLimiter(5.0, burst=10.0)
        limiter.check("x")
        stats = limiter.stats()
        assert stats["rate_per_second"] == 5.0
        assert stats["allowed"] == 1
        assert stats["evictions"] == 0


class TestAdmissionController:
    def test_sheds_503_beyond_queue(self):
        async def scenario():
            admission = AdmissionController(
                max_inflight=1, max_queue=1, retry_after_seconds=2.0
            )
            release = asyncio.Event()

            async def hold():
                async with admission:
                    await release.wait()

            holder = asyncio.ensure_future(hold())
            waiter = asyncio.ensure_future(hold())
            await asyncio.sleep(0.01)  # holder admitted, waiter queued
            assert admission.inflight == 1
            assert admission.queued == 1
            with pytest.raises(HttpError) as excinfo:
                async with admission:
                    pass
            assert excinfo.value.status == 503
            assert excinfo.value.retry_after_seconds == 2.0
            release.set()
            await asyncio.gather(holder, waiter)
            return admission

        admission = asyncio.run(scenario())
        assert admission.shed == 1
        assert admission.admitted == 2
        assert admission.inflight == 0
        assert admission.queued == 0
        assert admission.peak_inflight == 1
        assert admission.peak_queued == 1

    def test_queue_drains_in_turn(self):
        async def scenario():
            admission = AdmissionController(max_inflight=2, max_queue=8)
            done = []

            async def work(i):
                async with admission:
                    await asyncio.sleep(0.001)
                    done.append(i)

            await asyncio.gather(*(work(i) for i in range(6)))
            return admission, done

        admission, done = asyncio.run(scenario())
        assert sorted(done) == list(range(6))
        assert admission.admitted == 6
        assert admission.shed == 0
        assert admission.peak_inflight <= 2

    def test_released_on_body_exception(self):
        async def scenario():
            admission = AdmissionController(max_inflight=1, max_queue=0)
            with pytest.raises(ValueError):
                async with admission:
                    raise ValueError("handler blew up")
            # Slot must be free again.
            async with admission:
                pass
            return admission

        admission = asyncio.run(scenario())
        assert admission.inflight == 0
        assert admission.admitted == 2

    def test_invalid_parameters(self):
        with pytest.raises(ServeError):
            AdmissionController(max_inflight=0)
        with pytest.raises(ServeError):
            AdmissionController(max_queue=-1)
