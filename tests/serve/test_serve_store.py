"""Warm-restart serving over ``store:`` datasets, end to end.

The acceptance property of the store subsystem: a serve process that
restarts over a ``store:`` spec answers its *first* analytics request
from cache — byte-identical to what the previous process served —
without materializing records or running a single cold kernel.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import AnalysisError
from repro.serve import DatasetRegistry, ReproApp, run_in_thread
from repro.serve.registry import register_from_spec
from repro.store import ingest_log, open_store
from repro.synth import GeneratorConfig, generate_log
from tests.serve.test_server_e2e import request

ANALYSES = ("breakdown", "metrics", "spatial", "seasonal", "multigpu")


@pytest.fixture(scope="module")
def store_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("serve-store") / "events.store"
    log = generate_log(
        "tsubame3", config=GeneratorConfig(seed=9, num_failures=120)
    )
    ingest_log(path, log)
    return path


def _store_registry(store_path) -> DatasetRegistry:
    registry = DatasetRegistry()
    register_from_spec(registry, f"ev=store:{store_path}")
    return registry


class TestRegistration:
    def test_store_spec_registers_lazily(self, store_path):
        registry = _store_registry(store_path)
        dataset = registry.get("ev")
        assert dataset.source == f"store:{store_path}"
        assert dataset.fingerprint.startswith("store-")
        # Registration and describe never materialize the records.
        described = dataset.describe()
        assert described["machine"] == "tsubame3"
        assert described["failures"] == 120
        assert described["span_hours"] > 0
        assert dataset._log is None

    def test_fingerprint_matches_store(self, store_path):
        registry = _store_registry(store_path)
        assert (
            registry.get("ev").fingerprint
            == open_store(store_path).fingerprint
        )

    def test_materialized_payloads_are_exposed(self, store_path):
        registry = _store_registry(store_path)
        dataset = registry.get("ev")
        for analysis in ANALYSES:
            payload = dataset.materialized(analysis)
            assert payload is not None, analysis
            assert payload["machine"] == "tsubame3"
        assert dataset.materialized("nope") is None
        assert dataset._log is None


class TestWarmRestart:
    def test_restart_serves_identical_bytes_from_cache(self, store_path):
        """Two independent 'processes': both answer the first request
        from cache with byte-identical payloads and never touch the
        records."""
        transcripts = []
        for _ in range(2):
            registry = _store_registry(store_path)
            app = ReproApp(registry, workers=2)
            with run_in_thread(app) as handle:
                bodies = {}
                for analysis in ANALYSES:
                    response = request(
                        handle.port, "GET", f"/analyze/ev/{analysis}"
                    )
                    assert response.status == 200, analysis
                    # First request of this process: already a hit,
                    # seeded from the materialized views at startup.
                    assert response.getheader("X-Cache") == "hit", (
                        analysis
                    )
                    bodies[analysis] = response.body
                transcripts.append(bodies)
            # The whole session ran without materializing the log.
            assert registry.get("ev")._log is None
        assert transcripts[0] == transcripts[1]

    def test_poisoned_kernels_prove_no_recomputation(self, store_path):
        """With every cold kernel replaced by a bomb and the cache
        disabled, analytics still answer — straight from the
        materialized views."""
        registry = _store_registry(store_path)
        app = ReproApp(registry, workers=2, cache_size=0)

        def boom(log):
            raise AnalysisError("cold kernel executed")

        app.analyses = {name: boom for name in app.analyses}
        with run_in_thread(app) as handle:
            for analysis in ANALYSES:
                response = request(
                    handle.port, "GET", f"/analyze/ev/{analysis}"
                )
                assert response.status == 200, analysis
                payload = json.loads(response.body)
                assert payload["machine"] == "tsubame3"
        assert registry.get("ev")._log is None

    def test_dataset_endpoints_describe_store(self, store_path):
        registry = _store_registry(store_path)
        with run_in_thread(ReproApp(registry, workers=2)) as handle:
            detail = json.loads(
                request(handle.port, "GET", "/datasets/ev").body
            )
            assert detail["machine"] == "tsubame3"
            assert detail["failures"] == 120
            assert detail["source"].startswith("store:")
            assert detail["fingerprint"].startswith("store-")

    def test_append_invalidates_by_fingerprint(
        self, store_path, tmp_path
    ):
        """An append commits a new fingerprint, so a restarted server
        computes fresh cache keys instead of serving stale bytes."""
        import shutil

        copy = tmp_path / "events.store"
        shutil.copytree(store_path, copy)
        before = _store_registry(copy).get("ev").fingerprint
        store = open_store(copy)
        log = store.log()
        import dataclasses
        from datetime import timedelta

        late = dataclasses.replace(
            log.records[-1],
            record_id=99_999,
            timestamp=log.records[-1].timestamp
            + timedelta(seconds=1),
        )
        store.append([late])
        after = _store_registry(copy).get("ev").fingerprint
        assert after != before
