"""Dataset registry: fingerprints, specs, media-type negotiation."""

from __future__ import annotations

import pytest

from repro.errors import (
    SerializationError,
    ServeError,
    ValidationError,
)
from repro.io import write_csv, write_jsonl
from repro.io.formats import (
    MEDIA_TYPES,
    format_for_media_type,
    media_type_for,
)
from repro.serve.registry import (
    DatasetRegistry,
    fingerprint_file,
    fingerprint_log,
    parse_dataset_spec,
    register_from_spec,
)
from tests.conftest import make_log, make_record


class TestFingerprint:
    def test_deterministic(self, t2_log):
        assert fingerprint_log(t2_log) == fingerprint_log(t2_log)

    def test_sensitive_to_content(self):
        base = make_log([make_record(0, 1.0), make_record(1, 2.0)])
        changed = make_log(
            [make_record(0, 1.0), make_record(1, 2.0, node_id=7)]
        )
        assert fingerprint_log(base) != fingerprint_log(changed)

    def test_sensitive_to_machine_and_window(self):
        records = [make_record(0, 1.0)]
        assert fingerprint_log(make_log(records)) != fingerprint_log(
            make_log(records, machine="tsubame3")
        )
        assert fingerprint_log(make_log(records)) != fingerprint_log(
            make_log(records, span_hours=2000.0)
        )


class TestRegistry:
    def test_register_and_get(self):
        registry = DatasetRegistry()
        log = make_log([make_record(0, 1.0)])
        dataset = registry.register("small", log, source="test")
        assert registry.names() == ["small"]
        assert "small" in registry
        assert registry.get("small") is dataset
        described = dataset.describe()
        assert described["name"] == "small"
        assert described["failures"] == 1
        assert described["fingerprint"] == fingerprint_log(log)

    def test_unknown_handle_raises(self):
        with pytest.raises(ServeError, match="unknown dataset"):
            DatasetRegistry().get("nope")

    def test_invalid_names_rejected(self):
        registry = DatasetRegistry()
        log = make_log([make_record(0, 1.0)])
        for bad in ("", "a/b"):
            with pytest.raises(ServeError):
                registry.register(bad, log, source="test")

    def test_reregistration_changes_fingerprint(self):
        registry = DatasetRegistry()
        registry.register(
            "d", make_log([make_record(0, 1.0)]), source="v1"
        )
        old = registry.get("d").fingerprint
        registry.register(
            "d", make_log([make_record(0, 2.0)]), source="v2"
        )
        assert registry.get("d").fingerprint != old

    def test_synthesize(self):
        registry = DatasetRegistry()
        dataset = registry.synthesize(
            "t2", "tsubame2", seed=7, failures=50
        )
        assert len(dataset.log) == 50
        assert dataset.source == "synth:tsubame2:seed=7:failures=50"
        with pytest.raises(ServeError, match="unknown machine"):
            registry.synthesize("bad", "not-a-machine")

    @pytest.mark.parametrize("format", ["csv", "jsonl"])
    def test_load_from_file(self, tmp_path, format):
        log = make_log([make_record(i, float(i + 1)) for i in range(5)])
        path = tmp_path / f"log.{format}"
        (write_csv if format == "csv" else write_jsonl)(log, path)
        registry = DatasetRegistry()
        dataset = registry.load("disk", path)
        assert len(dataset.log) == 5
        assert dataset.fingerprint == fingerprint_file(path)

    @pytest.mark.parametrize("format", ["csv", "jsonl"])
    def test_file_fingerprint_stable_across_restarts(
        self, tmp_path, format
    ):
        # Regression: a file-backed dataset's fingerprint is a pure
        # function of the file bytes, so a fresh registry (a process
        # restart) generates the same cache keys and warm restarts
        # reuse every cached result.
        log = make_log([make_record(i, float(i + 1)) for i in range(5)])
        path = tmp_path / f"log.{format}"
        (write_csv if format == "csv" else write_jsonl)(log, path)
        first = DatasetRegistry().load("disk", path).fingerprint
        second = DatasetRegistry().load("disk", path).fingerprint
        assert first == second
        # ... and it still tracks content: new bytes, new fingerprint.
        (write_csv if format == "csv" else write_jsonl)(
            make_log([make_record(9, 4.0)]), path
        )
        assert DatasetRegistry().load("disk", path).fingerprint != first


class TestDatasetSpecs:
    def test_file_spec(self):
        assert parse_dataset_spec("t2=/data/t2.csv") == (
            "t2",
            "/data/t2.csv",
        )

    @pytest.mark.parametrize(
        "spec", ["no-equals", "=path", "name=", "  =  "]
    )
    def test_malformed_specs(self, spec):
        with pytest.raises(ValidationError):
            parse_dataset_spec(spec)

    def test_register_synth_spec(self):
        registry = DatasetRegistry()
        dataset = register_from_spec(
            registry, "t2=synth:tsubame2:42:60"
        )
        assert dataset.name == "t2"
        assert len(dataset.log) == 60

    def test_register_file_spec(self, tmp_path):
        log = make_log([make_record(0, 1.0)])
        path = tmp_path / "x.jsonl"
        write_jsonl(log, path)
        registry = DatasetRegistry()
        dataset = register_from_spec(registry, f"x={path}")
        assert dataset.name == "x"

    @pytest.mark.parametrize(
        "spec",
        [
            "t2=synth:tsubame2:notanint",
            "t2=synth:tsubame2:1:2:3",
        ],
    )
    def test_malformed_synth_specs(self, spec):
        with pytest.raises(ValidationError):
            register_from_spec(DatasetRegistry(), spec)

    def test_unknown_machine_in_synth_spec(self):
        with pytest.raises(ServeError):
            register_from_spec(DatasetRegistry(), "x=synth:nope")


class TestMediaTypes:
    """The io.formats negotiation the upload endpoint builds on."""

    def test_known_media_types_resolve(self):
        assert format_for_media_type("text/csv") == "csv"
        assert format_for_media_type("application/x-ndjson") == "jsonl"

    def test_parameters_and_case_are_ignored(self):
        assert (
            format_for_media_type("Text/CSV; charset=utf-8") == "csv"
        )

    def test_bare_format_names_accepted(self):
        assert format_for_media_type("csv") == "csv"
        assert format_for_media_type("jsonl") == "jsonl"

    def test_unknown_media_type_raises(self):
        with pytest.raises(SerializationError):
            format_for_media_type("application/pdf")

    def test_round_trip_through_canonical_types(self):
        for media_type, format in MEDIA_TYPES.items():
            assert format_for_media_type(media_type) == format
        for format in ("csv", "jsonl"):
            assert format_for_media_type(media_type_for(format)) == format
