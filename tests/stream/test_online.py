"""Tests for the incremental estimators."""

import math

import numpy as np
import pytest

from repro.errors import StreamError
from repro.stream.online import (
    EwmaRate,
    GKQuantileSketch,
    OnlineMtbf,
    OnlineMttr,
    P2Quantile,
    RollingWindowStats,
    Welford,
)


class TestWelford:
    def test_matches_numpy_mean_and_variance(self):
        rng = np.random.default_rng(0)
        values = rng.lognormal(1.0, 1.5, size=500)
        acc = Welford()
        for value in values:
            acc.push(float(value))
        assert acc.n == 500
        assert acc.mean == pytest.approx(float(np.mean(values)), rel=1e-12)
        assert acc.variance == pytest.approx(
            float(np.var(values, ddof=1)), rel=1e-10
        )
        assert acc.std == pytest.approx(math.sqrt(acc.variance))

    def test_degenerate_cases(self):
        acc = Welford()
        assert acc.mean == 0.0 and acc.variance == 0.0
        acc.push(3.0)
        assert acc.mean == 3.0
        assert acc.variance == 0.0


class TestP2Quantile:
    def test_rejects_bad_quantile(self):
        for q in (0.0, 1.0, -0.5):
            with pytest.raises(StreamError):
                P2Quantile(q)

    def test_no_observations_raises(self):
        with pytest.raises(StreamError):
            P2Quantile(0.5).value()

    def test_small_stream_is_exact(self):
        est = P2Quantile(0.5)
        for value in [5.0, 1.0, 3.0]:
            est.push(value)
        assert est.value() == 3.0

    def test_median_of_large_stream_is_close(self):
        rng = np.random.default_rng(1)
        values = rng.exponential(10.0, size=5000)
        est = P2Quantile(0.5)
        for value in values:
            est.push(float(value))
        exact = float(np.quantile(values, 0.5))
        assert est.value() == pytest.approx(exact, rel=0.1)

    def test_p99_of_normal_stream_is_close(self):
        rng = np.random.default_rng(2)
        values = rng.normal(100.0, 15.0, size=20000)
        est = P2Quantile(0.99)
        for value in values:
            est.push(float(value))
        exact = float(np.quantile(values, 0.99))
        assert est.value() == pytest.approx(exact, rel=0.05)


def _rank_error(sorted_values, estimate, q):
    """1-based rank distance between the estimate and ceil(q*n)."""
    import bisect

    n = len(sorted_values)
    target = max(1, math.ceil(q * n))
    lo = bisect.bisect_left(sorted_values, estimate)
    hi = bisect.bisect_right(sorted_values, estimate)
    if lo + 1 <= target <= hi:
        return 0
    return min(abs(target - (lo + 1)), abs(target - hi))


class TestGKQuantileSketch:
    def test_rejects_bad_epsilon(self):
        for epsilon in (0.0, 0.5, -0.1):
            with pytest.raises(StreamError):
                GKQuantileSketch(epsilon)

    def test_no_observations_raises(self):
        with pytest.raises(StreamError):
            GKQuantileSketch().value(0.5)

    @pytest.mark.parametrize("q", [0.01, 0.25, 0.5, 0.75, 0.99])
    def test_rank_error_within_epsilon(self, q):
        rng = np.random.default_rng(3)
        values = rng.lognormal(2.0, 1.0, size=8000)
        sketch = GKQuantileSketch(epsilon=0.01)
        for value in values:
            sketch.push(float(value))
        estimate = sketch.value(q)
        error = _rank_error(sorted(values), estimate, q)
        assert error <= math.ceil(0.01 * len(values)) + 1

    def test_adversarial_sorted_input(self):
        sketch = GKQuantileSketch(epsilon=0.01)
        n = 5000
        for i in range(n):
            sketch.push(float(i))
        estimate = sketch.value(0.5)
        assert abs(estimate - n / 2) <= 0.02 * n

    def test_memory_stays_sublinear(self):
        sketch = GKQuantileSketch(epsilon=0.01)
        rng = np.random.default_rng(4)
        for value in rng.random(20000):
            sketch.push(float(value))
        # An exact structure would hold 20000 entries.
        assert sketch.size < 2000


class TestRollingWindowStats:
    def test_rejects_bad_window(self):
        with pytest.raises(StreamError):
            RollingWindowStats(0.0)

    def test_eviction(self):
        window = RollingWindowStats(10.0)
        window.push(0.0, 1.0)
        window.push(5.0, 3.0)
        assert window.count == 2
        assert window.mean == 2.0
        window.advance_to(12.0)
        assert window.count == 1
        assert window.mean == 3.0
        window.advance_to(100.0)
        assert window.count == 0
        assert window.mean is None

    def test_time_regression_rejected(self):
        window = RollingWindowStats(10.0)
        window.push(5.0, 1.0)
        with pytest.raises(StreamError):
            window.push(4.0, 1.0)


class TestEwmaRate:
    def test_poisson_rate_recovery(self):
        rng = np.random.default_rng(5)
        rate = 0.2  # events per hour
        times = np.cumsum(rng.exponential(1.0 / rate, size=4000))
        ewma = EwmaRate(tau_hours=200.0)
        for t in times:
            ewma.push(float(t))
        assert ewma.rate_per_hour() == pytest.approx(rate, rel=0.25)

    def test_decay_to_zero(self):
        ewma = EwmaRate(tau_hours=10.0)
        ewma.push(0.0)
        assert ewma.rate_per_hour(1000.0) < 1e-6


class TestOnlineMtbfMttr:
    def test_gap_mean_matches_batch(self):
        times = [0.0, 4.0, 10.0, 11.0, 30.0]
        online = OnlineMtbf()
        gaps = []
        for t in times:
            gap = online.push_failure(t)
            if gap is not None:
                gaps.append(gap)
        assert online.mtbf_hours == pytest.approx(float(np.mean(gaps)))
        assert online.failures == 5
        assert online.mtbf_span_hours(100.0) == pytest.approx(20.0)

    def test_first_failure_yields_no_gap(self):
        online = OnlineMtbf()
        assert online.push_failure(3.0) is None
        assert online.mtbf_hours is None

    def test_backwards_failure_rejected(self):
        online = OnlineMtbf()
        online.push_failure(10.0)
        with pytest.raises(StreamError):
            online.push_failure(9.0)

    def test_mttr_running_mean(self):
        online = OnlineMttr()
        assert online.mttr_hours is None
        for ttr in [10.0, 20.0, 60.0]:
            online.push_ttr(ttr)
        assert online.mttr_hours == pytest.approx(30.0)
        with pytest.raises(StreamError):
            online.push_ttr(-1.0)


class TestPushMany:
    def test_welford_bit_identical_to_push_loop(self):
        values = np.random.default_rng(0).lognormal(2.0, 1.0, 500)
        single = Welford()
        for v in values:
            single.push(float(v))
        batched = Welford()
        batched.push_many(float(v) for v in values[:200])
        batched.push_many(float(v) for v in values[200:])
        assert batched.n == single.n
        assert batched.mean == single.mean
        assert batched.variance == single.variance

    def test_gk_bit_identical_to_push_loop(self):
        values = np.random.default_rng(1).exponential(10.0, 800)
        single = GKQuantileSketch()
        for v in values:
            single.push(float(v))
        batched = GKQuantileSketch()
        batched.push_many(float(v) for v in values)
        assert batched.n == single.n
        assert batched.size == single.size
        for q in (0.1, 0.5, 0.9, 0.99):
            assert batched.value(q) == single.value(q)
