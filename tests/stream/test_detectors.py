"""Tests for the online change/burst detectors."""

import numpy as np
import pytest

from repro.errors import StreamError
from repro.stream.detectors import (
    CusumDetector,
    MultiGpuBurstDetector,
    PageHinkleyDetector,
)


class TestCusumDetector:
    def test_parameter_validation(self):
        with pytest.raises(StreamError):
            CusumDetector(drift=-1.0)
        with pytest.raises(StreamError):
            CusumDetector(threshold=0.0)
        with pytest.raises(StreamError):
            CusumDetector(warmup=1)

    def test_no_alarm_on_stationary_stream(self):
        # Wide tuning: any stationary stream eventually false-alarms
        # (finite ARL), so the test uses a comfortable margin.
        rng = np.random.default_rng(0)
        detector = CusumDetector(drift=1.0, threshold=12.0, warmup=50)
        for value in rng.normal(10.0, 2.0, size=1000):
            detector.update(float(value))
        assert detector.detections == []

    def test_detects_upward_mean_shift(self):
        rng = np.random.default_rng(1)
        detector = CusumDetector(drift=0.5, threshold=5.0, warmup=50)
        stream = np.concatenate([
            rng.normal(10.0, 2.0, size=200),
            rng.normal(16.0, 2.0, size=100),
        ])
        fired = [
            d for v in stream if (d := detector.update(float(v)))
        ]
        assert fired, "expected an alarm after the shift"
        first = fired[0]
        assert first.direction == "up"
        assert first.observation_index >= 200
        assert first.observation_index < 230
        assert first.baseline_mean == pytest.approx(10.0, abs=1.0)

    def test_detects_downward_shift_in_gaps(self):
        # Gaps shrinking = failure rate rising: the monitor's key case.
        rng = np.random.default_rng(2)
        detector = CusumDetector(drift=0.5, threshold=5.0, warmup=40)
        stream = np.concatenate([
            rng.exponential(30.0, size=150),
            rng.exponential(6.0, size=150),
        ])
        fired = [
            d for v in stream if (d := detector.update(float(v)))
        ]
        assert any(
            d.direction == "down" and d.observation_index >= 150
            for d in fired
        )

    def test_relearns_after_alarm(self):
        rng = np.random.default_rng(3)
        detector = CusumDetector(drift=0.5, threshold=5.0, warmup=30)
        stream = np.concatenate([
            rng.normal(10.0, 1.0, size=100),
            rng.normal(20.0, 1.0, size=200),
        ])
        for value in stream:
            detector.update(float(value))
        # One alarm for the shift; the new regime is then baseline,
        # so no alarm storm afterwards.
        assert len(detector.detections) == 1


class TestPageHinkleyDetector:
    def test_parameter_validation(self):
        with pytest.raises(StreamError):
            PageHinkleyDetector(delta=-1.0, lambda_=10.0)
        with pytest.raises(StreamError):
            PageHinkleyDetector(delta=1.0, lambda_=0.0)

    def test_detects_mean_increase(self):
        rng = np.random.default_rng(4)
        detector = PageHinkleyDetector(delta=0.5, lambda_=30.0)
        stream = np.concatenate([
            rng.normal(50.0, 5.0, size=200),
            rng.normal(65.0, 5.0, size=100),
        ])
        fired = [
            d for v in stream if (d := detector.update(float(v)))
        ]
        assert any(
            d.direction == "up" and d.observation_index >= 200
            for d in fired
        )

    def test_quiet_on_stationary_stream(self):
        rng = np.random.default_rng(5)
        detector = PageHinkleyDetector(delta=2.0, lambda_=500.0)
        for value in rng.normal(50.0, 5.0, size=2000):
            detector.update(float(value))
        assert detector.detections == []


class TestMultiGpuBurstDetector:
    def test_parameter_validation(self):
        with pytest.raises(StreamError):
            MultiGpuBurstDetector(threshold=0)
        with pytest.raises(StreamError):
            MultiGpuBurstDetector(min_gpus=0)

    def test_burst_fires_once(self):
        detector = MultiGpuBurstDetector(
            window_hours=24.0, threshold=3, min_gpus=2
        )
        assert detector.update(1.0, 3) is None
        assert detector.update(2.0, 2) is None
        third = detector.update(3.0, 4)
        assert third is not None
        assert third.statistic == 3.0
        # Still inside the same burst: no repeat alarm.
        assert detector.update(4.0, 2) is None

    def test_single_gpu_failures_ignored(self):
        detector = MultiGpuBurstDetector(
            window_hours=24.0, threshold=2, min_gpus=2
        )
        for hour in range(10):
            assert detector.update(float(hour), 1) is None
        assert detector.in_window == 0

    def test_rearms_after_window_drains(self):
        detector = MultiGpuBurstDetector(
            window_hours=10.0, threshold=2, min_gpus=2
        )
        detector.update(0.0, 2)
        assert detector.update(1.0, 2) is not None
        # Far in the future: the old burst expired, a new one alarms.
        detector.update(100.0, 2)
        assert detector.update(101.0, 2) is not None
        assert len(detector.detections) == 2
