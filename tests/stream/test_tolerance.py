"""Tests for stream disorder/duplicate tolerance."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StreamError
from repro.stream import (
    DISORDER_POLICIES,
    EventKind,
    FailureMonitor,
    StreamEvent,
    StreamStats,
    ensure_monotonic,
    events_from_log,
    tolerant_stream,
)
from repro.testing.chaos import duplicate_stream, shuffle_stream
from tests.conftest import make_log, make_record


def ev(time: float, node: int = 0) -> StreamEvent:
    """A hand-built repair event (repairs may omit the record)."""
    return StreamEvent(
        kind=EventKind.REPAIR,
        time_hours=time,
        node_id=node,
        category="GPU",
    )


def times(stream) -> list[float]:
    return [event.time_hours for event in stream]


class TestPolicyValidation:
    def test_unknown_policy_rejected(self):
        with pytest.raises(StreamError):
            list(tolerant_stream([ev(1.0)], on_disorder="panic"))

    def test_bad_window_rejected(self):
        for window in (-1.0, float("nan"), float("inf")):
            with pytest.raises(StreamError):
                list(
                    tolerant_stream(
                        [ev(1.0)], on_disorder="buffer",
                        window_hours=window,
                    )
                )

    def test_policies_constant_matches(self):
        assert set(DISORDER_POLICIES) == {"raise", "drop", "buffer"}


class TestRaisePolicy:
    def test_sorted_stream_passes_through(self):
        events = [ev(1.0), ev(2.0), ev(2.0), ev(3.0)]
        assert list(tolerant_stream(events)) == events

    def test_regression_raises_with_old_message(self):
        with pytest.raises(StreamError, match="went backwards"):
            list(tolerant_stream([ev(2.0), ev(1.0)]))

    def test_ensure_monotonic_delegates(self):
        with pytest.raises(StreamError, match="went backwards"):
            list(ensure_monotonic([ev(2.0), ev(1.0)]))


class TestDropPolicy:
    def test_late_events_dropped_and_counted(self):
        stats = StreamStats()
        out = times(
            tolerant_stream(
                [ev(1.0), ev(3.0), ev(2.0), ev(4.0)],
                on_disorder="drop", stats=stats,
            )
        )
        assert out == [1.0, 3.0, 4.0]
        assert stats.dropped == 1
        assert stats.emitted == 3
        assert stats.degraded


class TestBufferPolicy:
    def test_restores_order_within_window(self):
        stats = StreamStats()
        out = times(
            tolerant_stream(
                [ev(1.0), ev(3.0), ev(2.0), ev(5.0), ev(4.0)],
                on_disorder="buffer", window_hours=2.0, stats=stats,
            )
        )
        assert out == [1.0, 2.0, 3.0, 4.0, 5.0]
        assert stats.dropped == 0
        assert stats.reordered == 2
        assert stats.emitted == 5

    def test_event_older_than_window_dropped(self):
        stats = StreamStats()
        out = times(
            tolerant_stream(
                [ev(1.0), ev(10.0), ev(2.0)],
                on_disorder="buffer", window_hours=3.0, stats=stats,
            )
        )
        # 10.0 moved the watermark to 7.0, releasing 1.0; by then 2.0
        # is older than what was already emitted?  No — 2.0 > 1.0, so
        # it is still re-sorted in front of 10.0.
        assert out == [1.0, 2.0, 10.0]
        assert stats.dropped == 0

    def test_event_behind_emissions_dropped(self):
        stats = StreamStats()
        out = times(
            tolerant_stream(
                [ev(1.0), ev(10.0), ev(20.0), ev(2.0)],
                on_disorder="buffer", window_hours=3.0, stats=stats,
            )
        )
        # The watermark (20 - 3 = 17) already released 1.0 and 10.0,
        # so 2.0 cannot be emitted without going backwards: dropped.
        assert out == [1.0, 10.0, 20.0]
        assert stats.dropped == 1

    def test_sorted_stream_unchanged_by_buffering(self):
        events = [ev(float(i)) for i in range(10)]
        out = list(
            tolerant_stream(
                events, on_disorder="buffer", window_hours=5.0
            )
        )
        assert out == events


class TestDuplicateSuppression:
    def test_exact_redelivery_suppressed(self):
        stats = StreamStats()
        out = times(
            tolerant_stream(
                [ev(1.0), ev(1.0), ev(2.0)],
                on_disorder="drop", window_hours=10.0,
                drop_duplicates=True, stats=stats,
            )
        )
        assert out == [1.0, 2.0]
        assert stats.duplicates == 1

    def test_distinct_nodes_not_duplicates(self):
        out = times(
            tolerant_stream(
                [ev(1.0, node=1), ev(1.0, node=2)],
                on_disorder="drop", window_hours=10.0,
                drop_duplicates=True,
            )
        )
        assert out == [1.0, 1.0]

    def test_redelivery_outside_window_passes(self):
        stats = StreamStats()
        out = times(
            tolerant_stream(
                [ev(1.0), ev(50.0), ev(50.0)],
                on_disorder="drop", window_hours=10.0,
                drop_duplicates=True, stats=stats,
            )
        )
        # Memory of t=1 is pruned, but t=50's re-delivery is within
        # the window: suppressed.
        assert out == [1.0, 50.0]
        assert stats.duplicates == 1

    def test_chaos_duplicates_all_suppressed(self):
        log = make_log(
            [
                make_record(i, hours=5.0 * (i + 1), ttr_hours=2.0)
                for i in range(20)
            ]
        )
        clean = list(events_from_log(log))
        dirty, injected = duplicate_stream(clean, seed=3, rate=0.3)
        assert injected > 0
        stats = StreamStats()
        out = list(
            tolerant_stream(
                dirty, on_disorder="buffer", window_hours=1.0,
                drop_duplicates=True, stats=stats,
            )
        )
        assert out == clean
        assert stats.duplicates == injected


class TestBufferBoundProperty:
    """shuffle_stream displaces arrivals by at most ``max_shift``; a
    buffer of at least that window must restore exact time order with
    zero drops."""

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        max_shift=st.floats(min_value=0.0, max_value=48.0),
        n=st.integers(min_value=1, max_value=40),
    )
    def test_buffer_window_bounds_restoration(self, seed, max_shift, n):
        log = make_log(
            [
                make_record(i, hours=7.0 * (i + 1), ttr_hours=3.0)
                for i in range(n)
            ]
        )
        clean = list(events_from_log(log))
        shuffled = shuffle_stream(
            clean, seed=seed, max_shift_hours=max_shift
        )
        stats = StreamStats()
        out = list(
            tolerant_stream(
                shuffled, on_disorder="buffer",
                window_hours=max_shift, stats=stats,
            )
        )
        assert stats.dropped == 0
        assert stats.emitted == len(clean)
        # The buffer re-sorts by time with arrival order breaking
        # ties, so parity is against a stable sort of the shuffled
        # arrivals, which has the same multiset and time sequence.
        assert times(out) == times(clean)
        assert sorted(
            shuffled, key=lambda e: e.time_hours
        ) == sorted(out, key=lambda e: e.time_hours)


class TestMonitorIntegration:
    def _events(self):
        log = make_log(
            [
                make_record(i, hours=10.0 * (i + 1), ttr_hours=2.0)
                for i in range(10)
            ]
        )
        return list(events_from_log(log, include_repairs=True))

    def test_strict_consume_unchanged(self):
        clean = self._events()
        monitor = FailureMonitor(window_hours=200.0)
        snapshot = monitor.consume(clean)
        assert snapshot.events_dropped == 0
        assert snapshot.events_reordered == 0
        assert snapshot.duplicates_suppressed == 0
        assert "feed degradation" not in "\n".join(
            snapshot.format_lines()
        )

    def test_tolerant_consume_counts_degradation(self):
        clean = self._events()
        shuffled = shuffle_stream(clean, seed=1, max_shift_hours=15.0)
        dirty, injected = duplicate_stream(shuffled, seed=2, rate=0.4)
        assert injected > 0
        monitor = FailureMonitor(window_hours=200.0)
        snapshot = monitor.consume(
            dirty, on_disorder="buffer", window_hours=15.0,
            drop_duplicates=True,
        )
        assert snapshot.duplicates_suppressed == injected
        assert snapshot.events_dropped == 0
        assert monitor.stream_stats.emitted == len(clean)
        assert "feed degradation" in "\n".join(
            snapshot.format_lines()
        )

    def test_tolerant_consume_matches_clean_consume(self):
        """Buffer-repaired disorder must yield the same final counters
        as consuming the pristine stream."""
        clean = self._events()
        shuffled = shuffle_stream(clean, seed=9, max_shift_hours=20.0)
        reference = FailureMonitor(window_hours=500.0).consume(clean)
        repaired = FailureMonitor(window_hours=500.0).consume(
            shuffled, on_disorder="buffer", window_hours=20.0
        )
        assert repaired.failures == reference.failures
        assert repaired.repairs == reference.repairs
        assert repaired.mtbf_hours == reference.mtbf_hours
        assert repaired.mttr_hours == reference.mttr_hours

    def test_strict_consume_still_raises_on_disorder(self):
        clean = self._events()
        shuffled = shuffle_stream(clean, seed=4, max_shift_hours=25.0)
        assert times(shuffled) != times(clean)
        monitor = FailureMonitor(window_hours=200.0)
        with pytest.raises(StreamError):
            monitor.consume(shuffled)
