"""Property-based parity: online estimators vs batch kernels.

The streaming subsystem's contract is that replaying any finished log
through the online estimators converges to the batch answers from
:mod:`repro.core.metrics` / :mod:`repro.core.temporal`.  Hypothesis
generates arbitrary (sorted) event histories; the parity must hold on
every one of them, not just the calibrated traces.
"""

import bisect
import math
from datetime import timedelta

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import metrics
from repro.core.records import FailureLog, FailureRecord
from repro.core.temporal import tbf_distribution
from repro.stream import (
    FailureMonitor,
    GKQuantileSketch,
    OnlineMtbf,
    OnlineMttr,
    ReplaySource,
    Welford,
)
from tests.conftest import T0

_CATEGORIES = st.sampled_from(
    ["GPU", "CPU", "SSD", "FAN", "PBS", "Memory", "Network", "Boot"]
)

_record_tuples = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=999.0, allow_nan=False),
        st.integers(min_value=0, max_value=50),
        _CATEGORIES,
        st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
    ),
    min_size=2,
    max_size=80,
)


def _build_log(tuples) -> FailureLog:
    records = [
        FailureRecord(
            record_id=index,
            timestamp=T0 + timedelta(hours=hours),
            node_id=node,
            category=category,
            ttr_hours=ttr,
        )
        for index, (hours, node, category, ttr) in enumerate(tuples)
    ]
    return FailureLog(
        machine="tsubame2",
        records=tuple(records),
        window_start=T0,
        window_end=T0 + timedelta(hours=1000.0),
    )


class TestMtbfMttrParity:
    @given(tuples=_record_tuples)
    @settings(max_examples=60, deadline=None)
    def test_online_mtbf_matches_batch(self, tuples):
        log = _build_log(tuples)
        source = ReplaySource(log)
        monitor = FailureMonitor(rules=[])
        monitor.consume(source)
        monitor.finalize(source.span_hours)
        snapshot = monitor.snapshot()
        assert snapshot.mtbf_hours == pytest.approx(
            metrics.mtbf(log), rel=1e-9, abs=1e-9
        )
        assert snapshot.mtbf_span_hours == pytest.approx(
            metrics.mtbf_span(log), rel=1e-9
        )

    @given(tuples=_record_tuples)
    @settings(max_examples=60, deadline=None)
    def test_online_mttr_matches_batch(self, tuples):
        log = _build_log(tuples)
        monitor = FailureMonitor(rules=[])
        monitor.consume(ReplaySource(log))
        assert monitor.snapshot().mttr_hours == pytest.approx(
            metrics.mttr(log), rel=1e-9, abs=1e-9
        )

    @given(tuples=_record_tuples)
    @settings(max_examples=40, deadline=None)
    def test_online_mtbf_span_matches_temporal_distribution(
        self, tuples
    ):
        log = _build_log(tuples)
        source = ReplaySource(log)
        monitor = FailureMonitor(rules=[])
        monitor.consume(source)
        monitor.finalize(source.span_hours)
        dist = tbf_distribution(log)
        assert monitor.snapshot().mtbf_hours == pytest.approx(
            dist.mtbf_hours, rel=1e-9, abs=1e-9
        )
        assert monitor.snapshot().mtbf_span_hours == pytest.approx(
            dist.mtbf_span_hours, rel=1e-9
        )


class TestQuantileSketchParity:
    @given(
        values=st.lists(
            st.floats(
                min_value=0.0, max_value=1e6, allow_nan=False,
                allow_infinity=False,
            ),
            min_size=1,
            max_size=400,
        ),
        q=st.sampled_from([0.1, 0.5, 0.75, 0.9, 0.99]),
    )
    @settings(max_examples=80, deadline=None)
    def test_gk_rank_error_bounded_on_any_stream(self, values, q):
        epsilon = 0.01
        sketch = GKQuantileSketch(epsilon=epsilon)
        for value in values:
            sketch.push(value)
        estimate = sketch.value(q)
        ordered = sorted(values)
        n = len(ordered)
        target = max(1, math.ceil(q * n))
        lo = bisect.bisect_left(ordered, estimate)
        hi = bisect.bisect_right(ordered, estimate)
        error = (
            0 if lo + 1 <= target <= hi
            else min(abs(target - (lo + 1)), abs(target - hi))
        )
        assert error <= math.ceil(epsilon * n) + 1
        # The sketch must also return an actually-seen value.
        assert lo < hi or estimate in ordered

    @given(tuples=_record_tuples)
    @settings(max_examples=40, deadline=None)
    def test_monitor_tbf_median_within_tolerance(self, tuples):
        log = _build_log(tuples)
        monitor = FailureMonitor(rules=[])
        monitor.consume(ReplaySource(log))
        gaps = sorted(metrics.tbf_series_hours(log))
        estimate = monitor.tbf_quantile(0.5)
        assert estimate is not None
        n = len(gaps)
        target = max(1, math.ceil(0.5 * n))
        lo = bisect.bisect_left(gaps, estimate)
        hi = bisect.bisect_right(gaps, estimate)
        error = (
            0 if lo + 1 <= target <= hi
            else min(abs(target - (lo + 1)), abs(target - hi))
        )
        assert error <= math.ceil(monitor.sketch_epsilon * n) + 1


class TestWelfordParity:
    @given(
        values=st.lists(
            st.floats(
                min_value=-1e6, max_value=1e6, allow_nan=False,
                allow_infinity=False,
            ),
            min_size=2,
            max_size=300,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_welford_matches_numpy(self, values):
        acc = Welford()
        for value in values:
            acc.push(value)
        assert acc.mean == pytest.approx(
            float(np.mean(values)), rel=1e-6, abs=1e-6
        )
        assert acc.variance == pytest.approx(
            float(np.var(values, ddof=1)), rel=1e-6, abs=1e-4
        )

    @given(
        times=st.lists(
            st.floats(min_value=0.0, max_value=1e5, allow_nan=False),
            min_size=2,
            max_size=200,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_online_mtbf_mttr_primitives(self, times):
        ordered = sorted(times)
        online = OnlineMtbf()
        for t in ordered:
            online.push_failure(t)
        expected_gaps = np.diff(ordered)
        assert online.mtbf_hours == pytest.approx(
            float(np.mean(expected_gaps)), rel=1e-9, abs=1e-9
        )
        ttr = OnlineMttr()
        for t in ordered:
            ttr.push_ttr(t)
        assert ttr.mttr_hours == pytest.approx(
            float(np.mean(ordered)), rel=1e-9, abs=1e-9
        )
