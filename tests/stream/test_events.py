"""Tests for the stream event model and log normalization."""

import pytest

from repro.errors import StreamError
from repro.stream.events import (
    EventKind,
    StreamEvent,
    ensure_monotonic,
    events_from_log,
)
from tests.conftest import make_log, make_record


class TestStreamEvent:
    def test_failure_constructor_carries_record(self):
        record = make_record(record_id=1, hours=5.0)
        event = StreamEvent.failure(5.0, record)
        assert event.is_failure and not event.is_repair
        assert event.record is record
        assert event.node_id == record.node_id
        assert event.category == record.category

    def test_failure_without_record_rejected(self):
        with pytest.raises(StreamError):
            StreamEvent(EventKind.FAILURE, 1.0, 0, "GPU", None)

    def test_negative_and_nan_time_rejected(self):
        record = make_record()
        with pytest.raises(StreamError):
            StreamEvent.failure(-1.0, record)
        with pytest.raises(StreamError):
            StreamEvent.failure(float("nan"), record)

    def test_repair_without_record_allowed(self):
        event = StreamEvent.repair(9.0, 3, "GPU")
        assert event.is_repair
        assert event.record is None


class TestEventsFromLog:
    def test_failures_only_matches_log_order_and_offsets(self):
        log = make_log([
            make_record(record_id=0, hours=10.0),
            make_record(record_id=1, hours=25.0),
            make_record(record_id=2, hours=40.0),
        ])
        events = list(events_from_log(log))
        assert [e.time_hours for e in events] == [10.0, 25.0, 40.0]
        assert all(e.is_failure for e in events)

    def test_repairs_interleaved_in_time_order(self):
        log = make_log([
            make_record(record_id=0, hours=0.0, ttr_hours=5.0),
            make_record(record_id=1, hours=2.0, ttr_hours=1.0),
            make_record(record_id=2, hours=100.0, ttr_hours=2.0),
        ])
        events = list(events_from_log(log, include_repairs=True))
        kinds = [(e.kind, e.time_hours) for e in events]
        assert kinds == [
            (EventKind.FAILURE, 0.0),
            (EventKind.FAILURE, 2.0),
            (EventKind.REPAIR, 3.0),
            (EventKind.REPAIR, 5.0),
            (EventKind.FAILURE, 100.0),
            (EventKind.REPAIR, 102.0),
        ]

    def test_repair_count_equals_failure_count(self, t2_log):
        events = list(events_from_log(t2_log, include_repairs=True))
        failures = sum(1 for e in events if e.is_failure)
        repairs = sum(1 for e in events if e.is_repair)
        assert failures == len(t2_log)
        assert repairs == len(t2_log)

    def test_merged_stream_is_monotonic(self, t2_log):
        times = [
            e.time_hours
            for e in events_from_log(t2_log, include_repairs=True)
        ]
        assert times == sorted(times)

    def test_repair_events_carry_the_failing_record(self):
        log = make_log([make_record(record_id=0, hours=1.0,
                                    ttr_hours=4.0, node_id=7)])
        events = list(events_from_log(log, include_repairs=True))
        repair = events[-1]
        assert repair.is_repair
        assert repair.node_id == 7
        assert repair.record is log[0]


class TestEnsureMonotonic:
    def test_passes_sorted_stream_through(self):
        log = make_log([make_record(record_id=i, hours=float(i))
                        for i in range(5)])
        events = list(ensure_monotonic(events_from_log(log)))
        assert len(events) == 5

    def test_raises_on_regression(self):
        record = make_record()
        backwards = [
            StreamEvent.failure(5.0, record),
            StreamEvent.failure(4.0, record),
        ]
        with pytest.raises(StreamError):
            list(ensure_monotonic(backwards))
