"""Tests for the failure monitor, alert plumbing, and sources."""

import numpy as np
import pytest

from repro.core import metrics
from repro.errors import StreamError
from repro.sim import ClusterSimulator
from repro.stream import (
    Alert,
    AlertSeverity,
    CallbackSink,
    FailureMonitor,
    ListSink,
    RateShiftRule,
    ReplaySource,
    SimulationSource,
    StreamEvent,
    SyntheticSource,
)
from tests.conftest import make_log, make_record


def _rate_shift_log(
    slow_gap: float = 30.0,
    fast_gap: float = 5.0,
    n_each: int = 200,
    seed: int = 0,
):
    """A log whose failure rate jumps up halfway through."""
    rng = np.random.default_rng(seed)
    gaps = np.concatenate([
        rng.exponential(slow_gap, size=n_each),
        rng.exponential(fast_gap, size=n_each),
    ])
    times = np.cumsum(gaps)
    records = [
        make_record(record_id=i, hours=float(t), ttr_hours=10.0)
        for i, t in enumerate(times)
    ]
    return make_log(records, span_hours=float(times[-1]) + 1.0)


class TestFailureMonitor:
    def test_rejects_bad_quantiles(self):
        with pytest.raises(StreamError):
            FailureMonitor(quantiles=(0.5, 1.5))

    def test_counts_and_clock(self, t2_log):
        monitor = FailureMonitor(rules=[])
        monitor.consume(ReplaySource(t2_log, include_repairs=True))
        assert monitor.failures_seen == len(t2_log)
        assert monitor.repairs_seen == len(t2_log)
        assert monitor.events_seen == 2 * len(t2_log)
        assert monitor.now_hours >= t2_log.span_hours

    def test_out_of_order_event_rejected(self):
        monitor = FailureMonitor(rules=[])
        record = make_record()
        monitor.observe(StreamEvent.failure(10.0, record))
        with pytest.raises(StreamError):
            monitor.observe(StreamEvent.failure(9.0, record))

    def test_snapshot_before_any_event(self):
        snapshot = FailureMonitor(rules=[]).snapshot()
        assert snapshot.failures == 0
        assert snapshot.mtbf_hours is None
        assert snapshot.mttr_hours is None
        assert snapshot.format_lines()  # renders without crashing

    def test_cusum_alert_fires_on_injected_rate_shift(self):
        log = _rate_shift_log()
        monitor = FailureMonitor(rules=[RateShiftRule()])
        monitor.consume(ReplaySource(log))
        rate_alerts = [
            a for a in monitor.alerts
            if a.rule == "rate-shift"
            and a.severity is AlertSeverity.CRITICAL
        ]
        assert rate_alerts, "CUSUM must flag the injected rate shift"
        # The alert lands after the shift point (failure #200).
        shift_time = log.timestamps_hours()[199]
        assert rate_alerts[0].time_hours > shift_time

    def test_no_critical_rate_alert_on_stationary_trace(self):
        rng = np.random.default_rng(7)
        times = np.cumsum(rng.exponential(20.0, size=300))
        log = make_log(
            [
                make_record(record_id=i, hours=float(t))
                for i, t in enumerate(times)
            ],
            span_hours=float(times[-1]) + 1.0,
        )
        monitor = FailureMonitor(rules=[RateShiftRule(threshold=8.0)])
        monitor.consume(ReplaySource(log))
        assert not [
            a for a in monitor.alerts
            if a.severity is AlertSeverity.CRITICAL
        ]

    def test_sinks_receive_alerts(self):
        log = _rate_shift_log()
        collected = ListSink()
        seen_via_callback: list[Alert] = []
        monitor = FailureMonitor(
            rules=[RateShiftRule()],
            sinks=[collected, CallbackSink(seen_via_callback.append)],
        )
        monitor.consume(ReplaySource(log))
        assert collected.alerts == monitor.alerts
        assert seen_via_callback == monitor.alerts

    def test_machine_year_parity_acceptance(self, t2_log):
        """The PR's acceptance bar: >= 1 machine-year replay matches
        batch MTBF/MTTR within 1% and quantiles within sketch
        tolerance."""
        assert t2_log.span_hours >= 365.25 * 24.0
        source = ReplaySource(t2_log)
        monitor = FailureMonitor()
        monitor.consume(source)
        monitor.finalize(source.span_hours)
        snapshot = monitor.snapshot()

        assert snapshot.mtbf_hours == pytest.approx(
            metrics.mtbf(t2_log), rel=0.01
        )
        assert snapshot.mtbf_span_hours == pytest.approx(
            metrics.mtbf_span(t2_log), rel=0.01
        )
        assert snapshot.mttr_hours == pytest.approx(
            metrics.mttr(t2_log), rel=0.01
        )

        import bisect
        import math

        gaps = sorted(metrics.tbf_series_hours(t2_log))
        allowed = math.ceil(monitor.sketch_epsilon * len(gaps)) + 1
        for q in (0.5, 0.99):
            estimate = monitor.tbf_quantile(q)
            target = max(1, math.ceil(q * len(gaps)))
            lo = bisect.bisect_left(gaps, estimate)
            hi = bisect.bisect_right(gaps, estimate)
            error = (
                0 if lo + 1 <= target <= hi
                else min(abs(target - (lo + 1)), abs(target - hi))
            )
            assert error <= allowed

    def test_category_rates_track_the_mix(self, t2_log):
        monitor = FailureMonitor(rules=[])
        monitor.consume(ReplaySource(t2_log))
        rates = monitor.category_rates_per_hour()
        # GPU dominates Tsubame-2; its EWMA rate should too.
        assert max(rates, key=rates.get) == "GPU"


class TestSources:
    def test_synthetic_source_replays_generated_log(self):
        source = SyntheticSource("tsubame3", seed=42)
        events = list(source)
        assert len(events) == 338
        assert source.machine == "tsubame3"

    def test_simulation_source_records_failures_and_repairs(self):
        simulator = ClusterSimulator("tsubame2", seed=11)
        source = SimulationSource(simulator, horizon_hours=800.0)
        events = list(source)
        assert source.report is not None
        failures = [e for e in events if e.is_failure]
        repairs = [e for e in events if e.is_repair]
        assert len(failures) == source.report.failures_injected
        assert len(repairs) == source.report.repairs_completed
        times = [e.time_hours for e in events]
        assert times == sorted(times)
        # Second iteration replays the recording, not a new run.
        assert list(source) == events

    def test_simulation_source_rejects_bad_horizon(self):
        with pytest.raises(StreamError):
            SimulationSource(
                ClusterSimulator("tsubame2"), horizon_hours=0.0
            )

    def test_live_attach_sees_same_failures_as_injector(self):
        simulator = ClusterSimulator("tsubame3", seed=5)
        monitor = FailureMonitor(rules=[])
        monitor.attach(simulator.engine)
        report = simulator.run(1500.0)
        assert monitor.failures_seen == report.failures_injected
        assert monitor.repairs_seen == report.repairs_completed
        # The monitor's running MTTR equals the injected hands-on
        # mean, since both stream the same records.
        injected = simulator.injected_log()
        assert monitor.snapshot().mttr_hours == pytest.approx(
            metrics.mttr(injected), rel=1e-9
        )


class TestObserveMany:
    def _events(self, n=150, seed=3):
        rng = np.random.default_rng(seed)
        times = np.cumsum(rng.exponential(12.0, size=n))
        records = [
            make_record(record_id=i, hours=float(t), ttr_hours=6.0)
            for i, t in enumerate(times)
        ]
        log = make_log(records, span_hours=float(times[-1]) + 10.0)
        return list(ReplaySource(log, include_repairs=True))

    def test_parity_with_single_event_observe(self):
        events = self._events()
        one = FailureMonitor()
        batched = FailureMonitor()
        fired_single = []
        for event in events:
            fired_single.extend(one.observe(event))
        fired_batch = batched.observe_many(events)
        assert batched.snapshot() == one.snapshot()
        assert len(fired_batch) == len(fired_single)
        for a, b in zip(fired_batch, fired_single):
            assert a.rule == b.rule
            assert a.time_hours == b.time_hours

    def test_parity_across_split_batches(self):
        events = self._events()
        whole = FailureMonitor()
        split = FailureMonitor()
        whole.observe_many(events)
        split.observe_many(events[:40])
        split.observe_many(events[40:])
        assert whole.snapshot() == split.snapshot()

    def test_out_of_order_stops_at_offender(self):
        events = self._events(n=10)
        monitor = FailureMonitor()
        bad = events[:5] + [events[2]] + events[5:]
        with pytest.raises(StreamError):
            monitor.observe_many(bad)
        # Everything before the offender was folded in.
        assert monitor.events_seen == 5
