"""Fault-tolerance tests for the sweep engine.

The chaos wrappers of :mod:`repro.testing.chaos` supply the faults:
poisoned items (always raise), flaky items (transient, succeed on
retry), and worker crashes (break the process pool).
"""

import pickle

import pytest

from repro.errors import SweepError, ValidationError
from repro.parallel import (
    SweepItemError,
    SweepOutcome,
    pool_stats,
    shutdown_pool,
    sweep,
    sweep_iter,
)
from repro.testing.chaos import (
    ChaosInjectedError,
    CrashOnce,
    FlakyFunction,
    PoisonedFunction,
)


def _square(seed: int) -> int:
    return seed * seed


class TestAttribution:
    """Regression: a worker exception used to surface bare, with no
    indication of which seed failed."""

    def test_serial_failure_names_item_and_index(self):
        poisoned = PoisonedFunction(_square, poisoned=[13])
        with pytest.raises(SweepItemError) as excinfo:
            sweep(poisoned, [11, 12, 13, 14])
        assert excinfo.value.index == 2
        assert excinfo.value.item == 13
        assert "13" in str(excinfo.value)
        assert isinstance(excinfo.value.__cause__, ChaosInjectedError)

    def test_parallel_failure_names_item_and_index(self):
        poisoned = PoisonedFunction(_square, poisoned=[5])
        with pytest.raises(SweepItemError) as excinfo:
            sweep(poisoned, list(range(10)), processes=2)
        assert excinfo.value.index == 5
        assert excinfo.value.item == 5
        assert isinstance(excinfo.value.__cause__, ChaosInjectedError)

    def test_error_is_a_repro_error(self):
        poisoned = PoisonedFunction(_square, poisoned=[0])
        with pytest.raises(SweepError):
            sweep(poisoned, [0])


class TestReturnErrors:
    def test_poisoned_seed_keeps_other_results(self):
        poisoned = PoisonedFunction(_square, poisoned=[3])
        outcomes = sweep(
            poisoned, list(range(6)), return_errors=True
        )
        assert [o.ok for o in outcomes] == [
            True, True, True, False, True, True
        ]
        assert [o.result for o in outcomes if o.ok] == [0, 1, 4, 16, 25]
        bad = outcomes[3]
        assert bad.index == 3 and bad.item == 3
        assert isinstance(bad.error, ChaosInjectedError)

    def test_parallel_outcomes_match_serial(self):
        poisoned = PoisonedFunction(_square, poisoned=[2, 7])
        serial = sweep(
            poisoned, list(range(12)), return_errors=True
        )
        parallel = sweep(
            poisoned, list(range(12)), processes=2, return_errors=True
        )
        assert [o.ok for o in parallel] == [o.ok for o in serial]
        assert [o.result for o in parallel] == [o.result for o in serial]
        assert [o.item for o in parallel] == [o.item for o in serial]

    def test_unwrap_raises_attributed(self):
        outcome = SweepOutcome(
            index=4, item="cfg", error=ValueError("boom"), attempts=2
        )
        with pytest.raises(SweepItemError) as excinfo:
            outcome.unwrap()
        assert excinfo.value.index == 4
        assert "cfg" in str(excinfo.value)

    def test_unwrap_passes_through_result(self):
        assert SweepOutcome(index=0, item=1, result=9).unwrap() == 9

    def test_all_ok_without_faults(self):
        outcomes = sweep(_square, [1, 2, 3], return_errors=True)
        assert all(o.ok for o in outcomes)
        assert [o.unwrap() for o in outcomes] == [1, 4, 9]


class TestRetries:
    def test_transient_fault_absorbed_by_retry(self, tmp_path):
        flaky = FlakyFunction(
            _square, failures=2, state_dir=tmp_path, items=[4]
        )
        assert sweep(flaky, [3, 4, 5], retries=2) == [9, 16, 25]

    def test_insufficient_retries_still_fail(self, tmp_path):
        flaky = FlakyFunction(
            _square, failures=3, state_dir=tmp_path, items=[4]
        )
        with pytest.raises(SweepItemError) as excinfo:
            sweep(flaky, [3, 4, 5], retries=1)
        assert excinfo.value.attempts == 2

    def test_retry_attempts_recorded_in_outcome(self, tmp_path):
        flaky = FlakyFunction(
            _square, failures=1, state_dir=tmp_path, items=[7]
        )
        outcomes = sweep(
            flaky, [6, 7], retries=3, return_errors=True
        )
        assert [o.attempts for o in outcomes] == [1, 2]
        assert all(o.ok for o in outcomes)

    def test_parallel_retry_matches_serial(self, tmp_path):
        serial_flaky = FlakyFunction(
            _square, failures=1, state_dir=tmp_path / "serial",
            items=[2, 5],
        )
        parallel_flaky = FlakyFunction(
            _square, failures=1, state_dir=tmp_path / "parallel",
            items=[2, 5],
        )
        (tmp_path / "serial").mkdir()
        (tmp_path / "parallel").mkdir()
        seeds = list(range(8))
        serial = sweep(serial_flaky, seeds, retries=1)
        parallel = sweep(
            parallel_flaky, seeds, retries=1, processes=2
        )
        assert parallel == serial == [s * s for s in seeds]

    def test_negative_retries_rejected(self):
        with pytest.raises(ValidationError):
            sweep(_square, [1], retries=-1)

    def test_negative_backoff_rejected(self):
        with pytest.raises(ValidationError):
            sweep(_square, [1], backoff_seconds=-0.1)


class _CtorArgsError(Exception):
    """An exception whose constructor requires arguments — the shape
    that breaks the default exception reduce on unpickling."""

    def __init__(self, code: int, detail: str) -> None:
        self.code = code
        self.detail = detail
        super().__init__(f"[{code}] {detail}")


def _raise_ctor_args_error(seed: int) -> int:
    if seed == 3:
        raise _CtorArgsError(42, "required-args exception from worker")
    return seed * seed


def _raise_nested_sweep_error(seed: int) -> int:
    if seed == 2:
        # A SweepItemError raised *inside* a worker — e.g. a nested
        # sweep failing — must survive the trip back to the parent.
        raise SweepItemError(7, "inner", 1, ValueError("inner cause"))
    return seed


class TestErrorPickling:
    """Regression: exceptions whose constructors require arguments
    pickle fine (``dumps`` succeeds) but explode with a secondary
    ``TypeError`` on ``loads``, because the default exception reduce
    replays ``__init__`` with the formatted message.  The round-trip
    audit must catch both directions, and ``SweepItemError`` itself —
    the most likely such class to cross a process boundary — must
    round-trip typed."""

    def test_sweep_item_error_roundtrips_typed(self):
        original = SweepItemError(5, "item-5", 3, ValueError("boom"))
        clone = pickle.loads(pickle.dumps(original))
        assert isinstance(clone, SweepItemError)
        assert clone.index == 5
        assert clone.item == "item-5"
        assert clone.attempts == 3
        assert isinstance(clone.cause, ValueError)
        assert str(clone) == str(original)

    def test_worker_raising_ctor_args_exception_is_captured(self):
        outcomes = sweep(
            _raise_ctor_args_error, list(range(6)), processes=2,
            return_errors=True,
        )
        assert [o.ok for o in outcomes] == [
            True, True, True, False, True, True
        ]
        error = outcomes[3].error
        # The original class does not survive unpickling; the audit
        # must degrade it to a SweepError stand-in naming the type,
        # not let a secondary TypeError kill the whole chunk.
        assert isinstance(error, SweepError)
        assert "_CtorArgsError" in str(error)

    def test_worker_raising_sweep_item_error_stays_typed(self):
        outcomes = sweep(
            _raise_nested_sweep_error, [1, 2, 3], processes=2,
            return_errors=True,
        )
        error = outcomes[1].error
        assert isinstance(error, SweepItemError)
        assert error.index == 7
        assert error.item == "inner"
        assert isinstance(error.cause, ValueError)


class TestWarmPoolCrash:
    """Chaos coverage: a worker hard-killed mid-chunk on the *warm*
    pool must not leave the singleton broken for later sweeps."""

    @pytest.fixture(autouse=True)
    def _cold_pool(self):
        shutdown_pool()
        yield
        shutdown_pool()

    def test_crash_respawns_pool_and_next_sweep_reuses_it(
        self, tmp_path
    ):
        def squares(n):
            return [s * s for s in range(n)]

        crasher = CrashOnce(
            _square, crash_items=[9], state_dir=tmp_path
        )
        assert sweep(
            crasher, list(range(20)), processes=2, chunksize=3
        ) == squares(20)
        stats = pool_stats()
        assert stats is not None and stats["alive"]
        assert stats["generation"] == 2  # respawned after the crash
        assert stats["spawns"] == 2
        # The respawned pool serves the next sweep without another
        # cold start.
        assert sweep(_square, list(range(10)), processes=2) == squares(10)
        assert pool_stats()["spawns"] == 2

    def test_crash_mid_stream_recovers_in_order(self, tmp_path):
        crasher = CrashOnce(
            _square, crash_items=[5], state_dir=tmp_path
        )
        outcomes = list(
            sweep_iter(
                crasher, list(range(12)), processes=2, chunksize=2
            )
        )
        assert [o.index for o in outcomes] == list(range(12))
        assert [o.result for o in outcomes] == [
            s * s for s in range(12)
        ]
        assert pool_stats()["generation"] == 2


class TestBrokenPoolRecovery:
    def test_worker_crash_recovers_all_results(self, tmp_path):
        """A worker hard-killed mid-sweep must not discard the sweep:
        finished chunks are kept, the unfinished tail re-runs
        serially."""
        crasher = CrashOnce(
            _square, crash_items=[9], state_dir=tmp_path
        )
        seeds = list(range(20))
        assert sweep(crasher, seeds, processes=2, chunksize=3) == [
            s * s for s in seeds
        ]

    def test_crash_with_return_errors(self, tmp_path):
        crasher = CrashOnce(
            _square, crash_items=[0], state_dir=tmp_path
        )
        outcomes = sweep(
            crasher, list(range(6)), processes=2, chunksize=2,
            return_errors=True,
        )
        assert all(o.ok for o in outcomes)
        assert [o.result for o in outcomes] == [
            s * s for s in range(6)
        ]
