"""Tests for the ASCII chart renderers."""

import pytest

from repro.errors import ValidationError
from repro.stats.ecdf import ECDF
from repro.stats.summary import five_number_summary
from repro.viz import bar_chart, boxplot_table, cdf_chart, render_table, timeline


class TestBarChart:
    def test_contains_labels_and_values(self):
        chart = bar_chart([("GPU", 44.4), ("CPU", 1.8)], title="Fig")
        assert "Fig" in chart
        assert "GPU" in chart
        assert "44.4" in chart

    def test_longest_bar_is_full_width(self):
        chart = bar_chart([("a", 10.0), ("b", 5.0)], width=20)
        lines = chart.splitlines()
        assert "#" * 20 in lines[0]
        assert "#" * 20 not in lines[1]

    def test_zero_values_render_empty_bars(self):
        chart = bar_chart([("a", 0.0), ("b", 0.0)])
        assert "#" not in chart

    def test_empty_rows_rejected(self):
        with pytest.raises(ValidationError):
            bar_chart([])

    def test_negative_values_rejected(self):
        with pytest.raises(ValidationError):
            bar_chart([("a", -1.0)])

    def test_invalid_width_rejected(self):
        with pytest.raises(ValidationError):
            bar_chart([("a", 1.0)], width=0)


class TestCdfChart:
    def test_renders_both_curves(self):
        chart = cdf_chart(
            {"t2": ECDF([1.0, 2.0, 3.0]), "t3": ECDF([10.0, 20.0])},
            num_points=5,
        )
        assert "-- t2 --" in chart
        assert "-- t3 --" in chart
        assert "100.0%" in chart

    def test_empty_curves_rejected(self):
        with pytest.raises(ValidationError):
            cdf_chart({})

    def test_too_few_points_rejected(self):
        with pytest.raises(ValidationError):
            cdf_chart({"a": ECDF([1.0])}, num_points=1)

    def test_single_value_support_handled(self):
        chart = cdf_chart({"a": ECDF([5.0, 5.0])}, num_points=3)
        assert chart  # degenerate support must not divide by zero


class TestBoxplotTable:
    def test_columns_present(self):
        summary = five_number_summary([1.0, 2.0, 3.0, 4.0])
        table = boxplot_table([("GPU", summary)])
        assert "median" in table
        assert "GPU" in table

    def test_empty_rows_rejected(self):
        with pytest.raises(ValidationError):
            boxplot_table([])


class TestTimeline:
    def test_magnitudes_rendered(self):
        line = timeline([(10.0, 1), (50.0, 3)], span=100.0, width=10)
        assert "." in line
        assert "3" in line

    def test_collision_keeps_larger_magnitude(self):
        line = timeline([(10.0, 1), (10.5, 2)], span=1000.0, width=10)
        assert "2" in line
        assert "." not in line.splitlines()[0]

    def test_bounds_validated(self):
        with pytest.raises(ValidationError):
            timeline([(200.0, 1)], span=100.0)
        with pytest.raises(ValidationError):
            timeline([(10.0, 0)], span=100.0)
        with pytest.raises(ValidationError):
            timeline([], span=0.0)
        with pytest.raises(ValidationError):
            timeline([], span=10.0, width=5)

    def test_magnitude_capped_at_nine(self):
        line = timeline([(5.0, 42)], span=10.0, width=10)
        assert "9" in line


class TestRenderTable:
    def test_alignment_and_content(self):
        table = render_table(
            ["name", "value"], [["GPU", "398"], ["CPU", "16"]],
            title="Counts",
        )
        lines = table.splitlines()
        assert lines[0] == "Counts"
        assert "name" in lines[1]
        assert "GPU" in table

    def test_row_length_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            render_table(["a", "b"], [["only-one"]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ValidationError):
            render_table([], [])

    def test_no_rows_ok(self):
        table = render_table(["a"], [])
        assert "a" in table


class TestSparkline:
    def test_levels_reflect_magnitude(self):
        from repro.viz import sparkline

        line = sparkline([0.0, 10.0])
        assert line[0] == " "
        assert line[-1] == "#"

    def test_constant_series_mid_level(self):
        from repro.viz import sparkline

        assert sparkline([5.0, 5.0, 5.0]) == "==="

    def test_downsampling(self):
        from repro.viz import sparkline

        line = sparkline(list(range(100)), width=10)
        assert len(line) == 10
        levels = " .:-=+*#"
        indices = [levels.index(ch) for ch in line]
        assert indices == sorted(indices)  # monotone series

    def test_invalid_inputs(self):
        from repro.viz import sparkline

        with pytest.raises(ValidationError):
            sparkline([])
        with pytest.raises(ValidationError):
            sparkline([1.0, float("nan")])
        with pytest.raises(ValidationError):
            sparkline([1.0, 2.0], width=0)


class TestHistogram:
    def test_bins_cover_sample(self):
        from repro.viz import histogram

        text = histogram([1.0, 2.0, 3.0, 10.0], num_bins=3)
        # Total count across rendered bins equals sample size.
        counts = [int(line.rsplit(" ", 1)[1])
                  for line in text.splitlines()]
        assert sum(counts) == 4

    def test_single_value_sample(self):
        from repro.viz import histogram

        text = histogram([7.0, 7.0], num_bins=2)
        assert "2" in text

    def test_invalid_inputs(self):
        from repro.viz import histogram

        with pytest.raises(ValidationError):
            histogram([])
        with pytest.raises(ValidationError):
            histogram([1.0], num_bins=0)
        with pytest.raises(ValidationError):
            histogram([float("inf")])
