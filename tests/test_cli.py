"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_subcommands_exist(self):
        parser = build_parser()
        for argv in (
            ["generate", "--machine", "tsubame2", "--out", "x.csv"],
            ["analyze", "x.csv"],
            ["report"],
            ["simulate", "--machine", "tsubame3"],
        ):
            args = parser.parse_args(argv)
            assert args.command == argv[0]

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_machine_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["generate", "--machine", "summit", "--out", "x.csv"]
            )


class TestCommands:
    def test_generate_then_analyze_csv(self, tmp_path, capsys):
        out = tmp_path / "log.csv"
        assert main(["generate", "--machine", "tsubame2", "--seed", "1",
                     "--out", str(out)]) == 0
        assert out.exists()
        assert main(["analyze", str(out)]) == 0
        captured = capsys.readouterr().out
        assert "MTBF" in captured
        assert "GPU" in captured

    def test_generate_jsonl(self, tmp_path):
        out = tmp_path / "log.jsonl"
        assert main(["generate", "--machine", "tsubame3",
                     "--out", str(out)]) == 0
        from repro.io import read_jsonl

        assert len(read_jsonl(out)) == 338

    def test_generate_with_size_override(self, tmp_path, capsys):
        out = tmp_path / "small.csv"
        assert main(["generate", "--machine", "tsubame2",
                     "--failures", "50", "--out", str(out)]) == 0
        assert "wrote 50 failures" in capsys.readouterr().out

    def test_report_to_file(self, tmp_path):
        out = tmp_path / "report.txt"
        assert main(["report", "--seed", "1", "--out", str(out)]) == 0
        text = out.read_text()
        assert "Table I." in text
        assert "Fig 12" in text

    def test_simulate_prints_metrics(self, capsys):
        assert main(["simulate", "--machine", "tsubame2",
                     "--horizon", "500", "--seed", "2"]) == 0
        captured = capsys.readouterr().out
        assert "effective MTTR" in captured
        assert "availability" in captured

    def test_analyze_missing_file_errors(self, tmp_path, capsys):
        # A missing path is an environment problem: exit 2 with a
        # one-line message, never a leaked traceback.
        assert main(["analyze", str(tmp_path / "nope.csv")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_repro_error_returns_exit_code_one(self, tmp_path, capsys):
        bad = tmp_path / "bad.csv"
        bad.write_text("no metadata here\n")
        assert main(["analyze", str(bad)]) == 1
        assert "error:" in capsys.readouterr().err


class TestAnalyzeFormatInference:
    def test_jsonl_extension_inferred(self, tmp_path, capsys):
        out = tmp_path / "log.jsonl"
        assert main(["generate", "--machine", "tsubame2", "--seed", "3",
                     "--out", str(out)]) == 0
        capsys.readouterr()
        assert main(["analyze", str(out)]) == 0
        assert "MTBF" in capsys.readouterr().out

    def test_csv_extension_inferred(self, tmp_path, capsys):
        out = tmp_path / "log.csv"
        assert main(["generate", "--machine", "tsubame2", "--seed", "3",
                     "--out", str(out)]) == 0
        capsys.readouterr()
        assert main(["analyze", str(out)]) == 0
        assert "MTBF" in capsys.readouterr().out

    def test_unknown_extension_errors_without_format(
        self, tmp_path, capsys
    ):
        src = tmp_path / "log.csv"
        main(["generate", "--machine", "tsubame2", "--seed", "3",
              "--out", str(src)])
        oddball = tmp_path / "log.dat"
        oddball.write_bytes(src.read_bytes())
        capsys.readouterr()
        assert main(["analyze", str(oddball)]) == 1
        assert "cannot infer log format" in capsys.readouterr().err

    def test_explicit_format_overrides_extension(
        self, tmp_path, capsys
    ):
        src = tmp_path / "log.csv"
        main(["generate", "--machine", "tsubame2", "--seed", "3",
              "--out", str(src)])
        oddball = tmp_path / "log.dat"
        oddball.write_bytes(src.read_bytes())
        capsys.readouterr()
        assert main(["analyze", str(oddball), "--format", "csv"]) == 0
        assert "MTBF" in capsys.readouterr().out

    def test_format_rejects_unknown_value(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["analyze", "x.csv", "--format", "xml"]
            )


class TestMonitorCommand:
    def test_replay_prints_snapshot_and_parity(self, tmp_path, capsys):
        out = tmp_path / "log.csv"
        main(["generate", "--machine", "tsubame2", "--seed", "9",
              "--out", str(out)])
        capsys.readouterr()
        assert main(["monitor", str(out), "--quiet-alerts"]) == 0
        text = capsys.readouterr().out
        assert "MTBF (gap mean)" in text
        assert "parity check (online vs batch)" in text
        assert "TBF p99" in text

    def test_replay_jsonl_with_rolling_reports(self, tmp_path, capsys):
        out = tmp_path / "log.jsonl"
        main(["generate", "--machine", "tsubame3", "--seed", "9",
              "--out", str(out)])
        capsys.readouterr()
        assert main(["monitor", str(out), "--quiet-alerts",
                     "--report-every", "100"]) == 0
        text = capsys.readouterr().out
        # 338 failures -> at least 3 interim snapshots + the final one.
        assert text.count("MTBF (gap mean)") >= 4

    def test_live_simulation_mode(self, capsys):
        assert main(["monitor", "--live", "--machine", "tsubame2",
                     "--horizon", "600", "--seed", "4",
                     "--quiet-alerts"]) == 0
        text = capsys.readouterr().out
        assert "live simulation" in text
        assert "failures injected" in text

    def test_path_and_live_are_mutually_exclusive(self, tmp_path,
                                                  capsys):
        assert main(["monitor"]) == 2
        assert main(["monitor", "--live", str(tmp_path / "x.csv")]) == 2
        capsys.readouterr()

    def test_live_requires_machine(self, capsys):
        assert main(["monitor", "--live"]) == 2
        assert "--machine" in capsys.readouterr().err

    def test_alerts_printed_by_default(self, tmp_path, capsys):
        out = tmp_path / "log.csv"
        main(["generate", "--machine", "tsubame2", "--seed", "9",
              "--out", str(out)])
        capsys.readouterr()
        assert main(["monitor", str(out), "--no-parity"]) == 0
        text = capsys.readouterr().out
        # Tsubame-2's 70% multi-GPU involvement always bursts.
        assert "multi-gpu-burst" in text


class TestExtendedCommands:
    def _two_logs(self, tmp_path):
        t2 = tmp_path / "t2.csv"
        t3 = tmp_path / "t3.csv"
        main(["generate", "--machine", "tsubame2", "--seed", "42",
              "--out", str(t2)])
        main(["generate", "--machine", "tsubame3", "--seed", "42",
              "--out", str(t3)])
        return t2, t3

    def test_compare(self, tmp_path, capsys):
        t2, t3 = self._two_logs(tmp_path)
        capsys.readouterr()
        assert main(["compare", str(t2), str(t3)]) == 0
        out = capsys.readouterr().out
        assert "MTBF" in out
        assert "stagnant" in out

    def test_fit(self, tmp_path, capsys):
        t2, _ = self._two_logs(tmp_path)
        capsys.readouterr()
        assert main(["fit", str(t2)]) == 0
        out = capsys.readouterr().out
        assert "TBF:" in out
        assert "TTR:" in out
        assert "KS" in out

    def test_spares(self, tmp_path, capsys):
        t2, _ = self._two_logs(tmp_path)
        capsys.readouterr()
        assert main(["spares", str(t2), "--stockout", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "GPU" in out
        assert "total spares:" in out

    def test_trends(self, tmp_path, capsys):
        t2, _ = self._two_logs(tmp_path)
        capsys.readouterr()
        assert main(["trends", str(t2), "--window", "2000"]) == 0
        out = capsys.readouterr().out
        assert "Crow-AMSAA" in out
        assert "MTBF" in out


class TestExitCodes:
    """Regression: failures used to leak raw tracebacks; now every
    failure class maps to a documented exit code."""

    def test_missing_path_exits_2(self, tmp_path, capsys):
        from repro.cli import EXIT_USAGE

        code = main(["analyze", str(tmp_path / "nope.csv")])
        assert code == EXIT_USAGE
        err = capsys.readouterr().err
        assert "error:" in err
        assert "Traceback" not in err

    def test_domain_error_exits_1(self, tmp_path, capsys):
        from repro.cli import EXIT_ERROR

        bad = tmp_path / "bad.csv"
        bad.write_text("not,a,log\n1,2,3\n")
        code = main(["analyze", str(bad)])
        assert code == EXIT_ERROR
        err = capsys.readouterr().err
        assert "error:" in err
        assert "Traceback" not in err

    def test_keyboard_interrupt_exits_130(self, capsys, monkeypatch):
        from repro import cli

        def interrupted(args):
            raise KeyboardInterrupt

        monkeypatch.setitem(cli._COMMANDS, "report", interrupted)
        assert cli.main(["report"]) == cli.EXIT_INTERRUPT
        assert "interrupted" in capsys.readouterr().err


class TestLenientFlag:
    def _corrupt_log(self, tmp_path):
        from repro.io import write_csv
        from repro.testing.chaos import corrupt_log_file
        from tests.conftest import make_log, make_record

        log = make_log(
            [
                make_record(i, hours=10.0 * (i + 1), ttr_hours=3.0)
                for i in range(8)
            ]
        )
        clean = tmp_path / "clean.csv"
        dirty = tmp_path / "dirty.csv"
        write_csv(log, clean)
        corrupt_log_file(
            clean, dirty, seed=5, kinds=("nan_time", "garbage"),
            rate=0.3,
        )
        return dirty

    def test_analyze_strict_aborts_on_corruption(self, tmp_path):
        dirty = self._corrupt_log(tmp_path)
        assert main(["analyze", str(dirty)]) == 1

    def test_analyze_lenient_prints_quarantine_summary(
        self, tmp_path, capsys
    ):
        dirty = self._corrupt_log(tmp_path)
        assert main(["analyze", str(dirty), "--lenient"]) == 0
        out = capsys.readouterr().out
        assert "lenient read:" in out
        assert "quarantined" in out
        assert "MTBF" in out

    def test_monitor_lenient_prints_quarantine_summary(
        self, tmp_path, capsys
    ):
        dirty = self._corrupt_log(tmp_path)
        assert main(
            ["monitor", str(dirty), "--lenient", "--no-parity"]
        ) == 0
        out = capsys.readouterr().out
        assert "lenient read:" in out
        assert "quarantined" in out
        assert "replayed" in out


class TestTraceCommands:
    def _record(self, tmp_path, **extra):
        path = tmp_path / "run.jsonl"
        argv = ["trace", "record", "--machine", "tsubame2",
                "--seed", "5", "--horizon", "300", "--out", str(path)]
        for flag, value in extra.items():
            argv.append(f"--{flag.replace('_', '-')}")
            if value is not True:
                argv.append(str(value))
        assert main(argv) == 0
        return path

    def test_record_then_replay(self, tmp_path, capsys):
        path = self._record(tmp_path)
        out = capsys.readouterr().out
        assert "recorded tsubame2" in out
        assert main(["trace", "replay", str(path)]) == 0
        out = capsys.readouterr().out
        assert "bit-exactly" in out
        assert "failures injected:" in out

    def test_record_workload_then_replay(self, tmp_path, capsys):
        path = self._record(
            tmp_path, workload=True, checkpoint_interval=6.0
        )
        assert main(["trace", "replay", str(path)]) == 0
        assert "bit-exactly" in capsys.readouterr().out

    def test_checkpoint_interval_requires_workload(self, tmp_path):
        argv = ["trace", "record", "--machine", "tsubame2",
                "--checkpoint-interval", "6.0",
                "--out", str(tmp_path / "x.jsonl")]
        assert main(argv) == 1

    def test_replay_to_store(self, tmp_path, capsys):
        path = self._record(tmp_path)
        store = tmp_path / "store"
        assert main(["trace", "replay", str(path),
                     "--to-store", str(store)]) == 0
        assert "stored" in capsys.readouterr().out
        from repro.store import open_store

        assert len(open_store(store).log()) > 0

    def test_replay_tampered_trace_fails(self, tmp_path, capsys):
        path = self._record(tmp_path)
        lines = path.read_text().splitlines()
        import json as _json

        for i, line in enumerate(lines):
            obj = _json.loads(line)
            if obj.get("t") == "fail":
                obj["node"] += 1
                lines[i] = _json.dumps(
                    obj, sort_keys=True, separators=(",", ":")
                )
                break
        path.write_text("\n".join(lines) + "\n")
        assert main(["trace", "replay", str(path)]) == 1
        assert "diverged" in capsys.readouterr().err

    def test_whatif_text_and_json(self, tmp_path, capsys):
        path = self._record(tmp_path)
        capsys.readouterr()
        assert main(["trace", "whatif", str(path),
                     "--technicians", "1"]) == 0
        out = capsys.readouterr().out
        assert "counterfactual replay" in out
        assert "effective_mttr_hours" in out
        assert main(["trace", "whatif", str(path),
                     "--technicians", "1", "--json"]) == 0
        import json as _json

        payload = _json.loads(capsys.readouterr().out)
        assert "effective_mttr_hours" in payload

    def test_whatif_without_overrides_fails(self, tmp_path):
        path = self._record(tmp_path)
        assert main(["trace", "whatif", str(path)]) == 1

    def test_whatif_spares_parsing(self, tmp_path, capsys):
        path = self._record(tmp_path)
        capsys.readouterr()
        assert main(["trace", "whatif", str(path),
                     "--spares", "GPU=10,CPU=5"]) == 0
        assert main(["trace", "whatif", str(path),
                     "--spares", "GPU=ten"]) == 1

    def test_info(self, tmp_path, capsys):
        path = self._record(tmp_path)
        capsys.readouterr()
        assert main(["trace", "info", str(path)]) == 0
        out = capsys.readouterr().out
        assert "machine:            tsubame2" in out
        assert "fail=" in out

    def test_monitor_consumes_trace(self, tmp_path, capsys):
        path = self._record(tmp_path)
        capsys.readouterr()
        assert main(["monitor", str(path), "--trace"]) == 0
        assert "events=" in capsys.readouterr().out
