"""Cross-registry consistency sweep over every modelled machine.

A machine is only usable when five registries agree: the spec
(``repro.machines.specs``), the failure taxonomy
(``repro.core.taxonomy``), the calibrated synth profile
(``repro.synth.profiles``), the node topology
(``repro.machines.topology``), and the rack layout
(``repro.machines.racks``).  This sweep runs every registered machine
through all five so that adding a machine to one table but not the
others fails loudly here rather than deep inside a simulation.
"""

import math

import pytest

from repro.core.taxonomy import categories_for
from repro.machines.racks import rack_layout_for
from repro.machines.specs import get_machine, known_machines
from repro.machines.topology import build_node_topology
from repro.synth.profiles import profile_for

MACHINES = known_machines()


@pytest.mark.parametrize("machine", MACHINES)
class TestRegistrySweep:
    def test_spec_is_sane(self, machine):
        spec = get_machine(machine)
        assert spec.name == machine
        assert spec.num_nodes > 0
        assert spec.gpus_per_node > 0
        assert spec.rpeak_pflops > 0
        assert spec.reported_failures > 0
        assert spec.log_span_hours > 0

    def test_taxonomy_registered(self, machine):
        categories = categories_for(machine)
        assert categories
        names = [category.name for category in categories]
        assert len(names) == len(set(names))

    def test_profile_category_weights_sum_to_one(self, machine):
        profile = profile_for(machine)
        shares = [
            profile.category_share(name)
            for name in profile.category_counts
        ]
        assert math.isclose(sum(shares), 1.0, rel_tol=1e-9)
        assert sum(profile.category_counts.values()) == (
            profile.total_failures
        )

    def test_profile_rates_strictly_positive(self, machine):
        profile = profile_for(machine)
        assert all(
            count > 0 for count in profile.category_counts.values()
        )
        assert profile.tbf_p75_hours > 0
        assert profile.mttr_target_hours > 0
        assert profile.tbf_mean_hours > 0
        assert all(
            mean > 0
            for mean in profile.category_ttr_mean_hours.values()
        )
        assert all(
            sigma >= 0
            for sigma in profile.category_ttr_sigma.values()
        )
        assert all(w > 0 for w in profile.gpu_slot_weights)
        assert all(
            p > 0 for p in profile.node_count_distribution.values()
        )

    def test_profile_categories_exist_in_taxonomy(self, machine):
        profile = profile_for(machine)
        taxonomy = {c.name for c in categories_for(machine)}
        assert set(profile.category_counts) <= taxonomy

    def test_placement_can_absorb_the_failure_count(self, machine):
        # The synth placement stage draws per-affected-node failure
        # multiplicities from node_count_distribution; its mean bounds
        # how many failures the fleet can absorb.  Require headroom so
        # sampling noise cannot push a seed over the node count.
        profile = profile_for(machine)
        spec = get_machine(machine)
        distribution = profile.node_count_distribution
        mean = sum(k * p for k, p in distribution.items())
        assert mean * spec.num_nodes > profile.total_failures

    def test_topology_builds(self, machine):
        topology = build_node_topology(machine)
        spec = get_machine(machine)
        assert len(topology.gpu_slots) == spec.gpus_per_node

    def test_rack_layout_registered(self, machine):
        layout = rack_layout_for(machine)
        assert layout.nodes_per_rack > 0
        assert layout.num_racks > 0
