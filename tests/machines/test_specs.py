"""Tests for the Table I machine specifications."""

import pytest

from repro.errors import MachineError
from repro.machines.specs import TSUBAME2, TSUBAME3, get_machine, known_machines


class TestTable1Values:
    def test_tsubame2_row(self):
        row = TSUBAME2.table1_row()
        assert row["CPU"] == "Intel Xeon X5670 (Westmere-EP, 2.93GHz)"
        assert row["Num CPUs"] == "2"
        assert row["Num GPUs"] == "3"
        assert row["Memory per Node"] == "58GB"
        assert row["SSD"] == "120 GB"

    def test_tsubame3_row(self):
        row = TSUBAME3.table1_row()
        assert row["GPU"] == "NVIDIA Tesla P100 (NVlink-Optimized)"
        assert row["Num GPUs"] == "4"
        assert row["Cores/Threads per CPU"] == "14 cores / 28 threads"
        assert "Omni-Path" in row["Interconnect"]


class TestFleetArithmetic:
    def test_component_inventories_match_paper(self):
        # Section III: "7040 for Tsubame-2 and 3240 for Tsubame-3".
        assert TSUBAME2.total_compute_components == 7040
        assert TSUBAME3.total_compute_components == 3240

    def test_gpu_counts(self):
        assert TSUBAME2.total_gpus == 1408 * 3
        assert TSUBAME3.total_gpus == 540 * 4

    def test_gpu_count_roughly_halved(self):
        ratio = TSUBAME2.total_gpus / TSUBAME3.total_gpus
        assert ratio == pytest.approx(2.0, abs=0.1)

    def test_cpu_count_roughly_third(self):
        ratio = TSUBAME2.total_cpus / TSUBAME3.total_cpus
        assert 2.3 < ratio < 2.8

    def test_gpu_slots(self):
        assert TSUBAME2.gpu_slots == (0, 1, 2)
        assert TSUBAME3.gpu_slots == (0, 1, 2, 3)


class TestLogWindows:
    def test_implied_mtbf_matches_paper(self):
        # ~15 h on Tsubame-2, >70 h on Tsubame-3.
        t2 = TSUBAME2.log_span_hours / TSUBAME2.reported_failures
        t3 = TSUBAME3.log_span_hours / TSUBAME3.reported_failures
        assert t2 == pytest.approx(15.3, abs=0.2)
        assert t3 > 70.0

    def test_reported_failure_counts(self):
        assert TSUBAME2.reported_failures == 897
        assert TSUBAME3.reported_failures == 338

    def test_rpeak_ordering(self):
        assert TSUBAME3.rpeak_pflops > 5 * TSUBAME2.rpeak_pflops


class TestRegistry:
    def test_known_machines(self):
        assert known_machines() == (
            "a100", "h100", "tsubame2", "tsubame3"
        )

    def test_get_machine(self):
        assert get_machine("tsubame2") is TSUBAME2
        assert get_machine("tsubame3") is TSUBAME3

    def test_unknown_machine_rejected(self):
        with pytest.raises(MachineError):
            get_machine("tsubame1")
