"""Tests for the Figure 1 node topology graphs."""

import pytest

from repro.errors import MachineError, ValidationError
from repro.machines.components import Component, ComponentKind
from repro.machines.topology import build_node_topology


class TestComponent:
    def test_name(self):
        assert Component(ComponentKind.GPU, 2).name == "gpu2"

    def test_negative_slot_rejected(self):
        with pytest.raises(ValidationError):
            Component(ComponentKind.CPU, -1)

    def test_str_with_model(self):
        component = Component(ComponentKind.GPU, 0, "P100")
        assert str(component) == "gpu0 (P100)"

    def test_str_without_model(self):
        assert str(Component(ComponentKind.NIC, 1)) == "nic1"


class TestTsubame2Topology:
    @pytest.fixture(scope="class")
    def topo(self):
        return build_node_topology("tsubame2")

    def test_three_gpus(self, topo):
        assert topo.gpu_slots == (0, 1, 2)

    def test_two_cpus(self, topo):
        assert len(topo.components(ComponentKind.CPU)) == 2

    def test_gpu0_alone_on_its_hub(self, topo):
        assert topo.gpus_sharing_switch(0) == (0,)

    def test_gpus_1_and_2_share_a_hub(self, topo):
        assert topo.gpus_sharing_switch(1) == (1, 2)
        assert topo.gpus_sharing_switch(2) == (1, 2)

    def test_no_nvlink_on_k20x(self, topo):
        for slot in (0, 1, 2):
            assert topo.nvlink_peers(slot) == ()

    def test_two_ib_nics(self, topo):
        assert len(topo.components(ComponentKind.NIC)) == 2

    def test_hop_distance_same_hub_shorter(self, topo):
        assert topo.hop_distance(1, 2) < topo.hop_distance(0, 1)


class TestTsubame3Topology:
    @pytest.fixture(scope="class")
    def topo(self):
        return build_node_topology("tsubame3")

    def test_four_gpus(self, topo):
        assert topo.gpu_slots == (0, 1, 2, 3)

    def test_switch_pairs(self, topo):
        assert topo.gpus_sharing_switch(0) == (0, 1)
        assert topo.gpus_sharing_switch(3) == (2, 3)

    def test_nvlink_full_mesh(self, topo):
        for slot in range(4):
            peers = topo.nvlink_peers(slot)
            assert peers == tuple(s for s in range(4) if s != slot)

    def test_four_omnipath_ports(self, topo):
        # Table I: "Intel Omni-Path HFI 100Gbps - 4 ports".
        assert len(topo.components(ComponentKind.NIC)) == 4

    def test_nvlink_makes_all_gpus_adjacent(self, topo):
        assert topo.hop_distance(0, 3) == 1


class TestTopologyErrors:
    def test_unknown_machine(self):
        with pytest.raises(MachineError):
            build_node_topology("tsubame1")

    def test_unknown_gpu_slot(self):
        topo = build_node_topology("tsubame2")
        with pytest.raises(MachineError):
            topo.gpus_sharing_switch(7)
        with pytest.raises(MachineError):
            topo.nvlink_peers(7)
        with pytest.raises(MachineError):
            topo.hop_distance(0, 9)
