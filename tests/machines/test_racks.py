"""Tests for rack layouts."""

import pytest

from repro.errors import MachineError
from repro.machines.racks import RackLayout, rack_layout_for
from repro.machines.specs import TSUBAME2, TSUBAME3


class TestRackLayout:
    def test_rack_of(self):
        layout = RackLayout("tsubame2", num_nodes=100, nodes_per_rack=32)
        assert layout.rack_of(0) == 0
        assert layout.rack_of(31) == 0
        assert layout.rack_of(32) == 1
        assert layout.rack_of(99) == 3

    def test_num_racks_rounds_up(self):
        layout = RackLayout("tsubame2", num_nodes=100, nodes_per_rack=32)
        assert layout.num_racks == 4

    def test_nodes_in_rack(self):
        layout = RackLayout("tsubame2", num_nodes=100, nodes_per_rack=32)
        assert list(layout.nodes_in_rack(0)) == list(range(32))
        assert list(layout.nodes_in_rack(3)) == list(range(96, 100))
        assert layout.rack_size(3) == 4

    def test_every_node_racked_exactly_once(self):
        layout = rack_layout_for("tsubame3")
        seen = []
        for rack in range(layout.num_racks):
            seen.extend(layout.nodes_in_rack(rack))
        assert seen == list(range(layout.num_nodes))

    def test_out_of_range_rejected(self):
        layout = RackLayout("tsubame2", num_nodes=10, nodes_per_rack=4)
        with pytest.raises(MachineError):
            layout.rack_of(10)
        with pytest.raises(MachineError):
            layout.nodes_in_rack(3)

    def test_invalid_construction_rejected(self):
        with pytest.raises(MachineError):
            RackLayout("x", num_nodes=0, nodes_per_rack=4)
        with pytest.raises(MachineError):
            RackLayout("x", num_nodes=10, nodes_per_rack=0)


class TestRegisteredLayouts:
    def test_fleet_sizes_match_specs(self):
        assert rack_layout_for("tsubame2").num_nodes == TSUBAME2.num_nodes
        assert rack_layout_for("tsubame3").num_nodes == TSUBAME3.num_nodes

    def test_reasonable_rack_counts(self):
        assert rack_layout_for("tsubame2").num_racks == 44
        assert rack_layout_for("tsubame3").num_racks == 20

    def test_unknown_machine_rejected(self):
        with pytest.raises(MachineError):
            rack_layout_for("frontier")
