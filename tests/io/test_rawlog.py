"""Tests for the raw operator-log parser."""

import pytest

from repro.errors import SerializationError, TaxonomyError
from repro.io.rawlog import normalize_category, read_raw_csv


class TestNormalizeCategory:
    def test_canonical_passthrough(self):
        assert normalize_category("tsubame2", "GPU") == "GPU"
        assert normalize_category("tsubame3", "Power-Board") == "Power-Board"

    def test_case_insensitive_canonical(self):
        assert normalize_category("tsubame2", "gpu") == "GPU"
        assert normalize_category("tsubame2", "system board") == \
            "System Board"

    def test_aliases_tsubame2(self):
        assert normalize_category("tsubame2", "GPU failure") == "GPU"
        assert normalize_category("tsubame2", "power supply") == "PSU"
        assert normalize_category("tsubame2", "Infiniband") == "IB"
        assert normalize_category("tsubame2", "batch system") == "PBS"

    def test_aliases_tsubame3(self):
        assert normalize_category("tsubame3", "OmniPath") == "Omni-Path"
        assert normalize_category("tsubame3", "gpu driver") == "GPUDriver"
        assert normalize_category("tsubame3", "power board") == \
            "Power-Board"
        assert normalize_category("tsubame3", "N/A") == "Unknown"

    def test_whitespace_stripped(self):
        assert normalize_category("tsubame2", "  fan  ") == "FAN"

    def test_unresolvable_rejected(self):
        with pytest.raises(TaxonomyError):
            normalize_category("tsubame2", "quantum flux")

    def test_empty_rejected(self):
        with pytest.raises(TaxonomyError):
            normalize_category("tsubame2", "   ")


class TestReadRawCsv:
    def test_typical_export(self, tmp_path):
        path = tmp_path / "raw.csv"
        path.write_text(
            "Date,Node,Type,Recovery\n"
            "1/7/2012 13:45,12,GPU failure,55 h\n"
            "2012-02-01,7,power supply,2.5 days\n"
            "2012-03-15 08:00,12,fan,12\n"
        )
        log = read_raw_csv(path, "tsubame2")
        assert len(log) == 3
        assert log[0].category == "GPU"
        assert log[0].timestamp.month == 1
        assert log[1].category == "PSU"
        assert log[1].ttr_hours == pytest.approx(60.0)
        assert log[2].category == "FAN"
        assert log[2].ttr_hours == pytest.approx(12.0)

    def test_gpu_column_parsed(self, tmp_path):
        path = tmp_path / "raw.csv"
        path.write_text(
            "timestamp,failure_type,ttr,gpus\n"
            "2017-06-01,gpu error,10,1+2\n"
        )
        log = read_raw_csv(path, "tsubame3")
        assert log[0].gpus_involved == (1, 2)

    def test_alternate_column_names(self, tmp_path):
        path = tmp_path / "raw.csv"
        path.write_text(
            "time,failure,repair_time,hostname\n"
            "2017-06-01 10:00,lustre fs,4 hours,77\n"
        )
        log = read_raw_csv(path, "tsubame3")
        assert log[0].category == "Lustre"
        assert log[0].node_id == 77

    def test_missing_required_column_rejected(self, tmp_path):
        path = tmp_path / "raw.csv"
        path.write_text("date,category\n2017-06-01,GPU\n")
        with pytest.raises(SerializationError):
            read_raw_csv(path, "tsubame3")

    def test_bad_row_aborts_by_default(self, tmp_path):
        path = tmp_path / "raw.csv"
        path.write_text(
            "date,type,ttr\n"
            "2017-06-01,GPU,10\n"
            "not-a-date,GPU,10\n"
        )
        with pytest.raises(SerializationError):
            read_raw_csv(path, "tsubame3")

    def test_skip_unparseable_drops_bad_rows(self, tmp_path):
        path = tmp_path / "raw.csv"
        path.write_text(
            "date,type,ttr\n"
            "2017-06-01,GPU,10\n"
            "not-a-date,GPU,10\n"
            "2017-06-03,mystery category,10\n"
            "2017-06-04,CPU,5\n"
        )
        log = read_raw_csv(path, "tsubame3", skip_unparseable=True)
        assert len(log) == 2
        assert [r.category for r in log] == ["GPU", "CPU"]

    def test_all_rows_bad_rejected(self, tmp_path):
        path = tmp_path / "raw.csv"
        path.write_text("date,type,ttr\njunk,junk,junk\n")
        with pytest.raises(SerializationError):
            read_raw_csv(path, "tsubame3", skip_unparseable=True)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "raw.csv"
        path.write_text("")
        with pytest.raises(SerializationError):
            read_raw_csv(path, "tsubame3")

    def test_negative_duration_rejected(self, tmp_path):
        path = tmp_path / "raw.csv"
        path.write_text("date,type,ttr\n2017-06-01,GPU,-5\n")
        with pytest.raises(SerializationError):
            read_raw_csv(path, "tsubame3")

    def test_result_feeds_analyses(self, tmp_path):
        path = tmp_path / "raw.csv"
        rows = "\n".join(
            f"2017-{month:02d}-01,gpu failure,{10 * month}"
            for month in range(1, 7)
        )
        path.write_text("date,type,ttr\n" + rows + "\n")
        log = read_raw_csv(path, "tsubame3")
        from repro.core.breakdown import category_breakdown

        assert category_breakdown(log).share_of("GPU") == 1.0
