"""Tests for tolerant ingest (on_error="raise"|"skip"|"collect")."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SerializationError
from repro.io import (
    LogReadReport,
    read_csv,
    read_jsonl,
    read_log,
    read_raw_csv,
    write_csv,
    write_jsonl,
)
from repro.testing.chaos import LOG_FAULT_KINDS, corrupt_log_file
from tests.conftest import make_log, make_record


def _sample_log(n: int = 8):
    return make_log(
        [
            make_record(i, hours=10.0 * (i + 1), category="GPU",
                        ttr_hours=5.0 + i)
            for i in range(n)
        ]
    )


def _write(log, path, format):
    if format == "csv":
        write_csv(log, path)
    else:
        write_jsonl(log, path)


@pytest.fixture(params=["csv", "jsonl"])
def format(request):
    return request.param


class TestCleanFileParity:
    def test_lenient_equals_strict_on_clean_file(
        self, tmp_path, format
    ):
        log = _sample_log()
        path = tmp_path / f"log.{format}"
        _write(log, path, format)
        strict = read_log(path)
        report = read_log(path, on_error="collect")
        assert isinstance(report, LogReadReport)
        assert report.ok
        assert report.num_quarantined == 0
        assert report.log.records == strict.records
        skipped = read_log(path, on_error="skip")
        assert skipped.records == strict.records

    def test_unknown_mode_rejected(self, tmp_path, format):
        log = _sample_log()
        path = tmp_path / f"log.{format}"
        _write(log, path, format)
        with pytest.raises(SerializationError):
            read_log(path, on_error="ignore")


class TestQuarantine:
    def test_bad_value_quarantined_with_field(self, tmp_path):
        log = _sample_log(3)
        path = tmp_path / "log.csv"
        write_csv(log, path)
        lines = path.read_text().splitlines()
        lines[5] = lines[5].replace(
            log.records[1].timestamp.isoformat(), "not-a-time"
        )
        path.write_text("\n".join(lines) + "\n")

        with pytest.raises(SerializationError):
            read_csv(path)
        report = read_csv(path, on_error="collect")
        assert report.num_quarantined == 1
        entry = report.quarantined[0]
        assert entry.line_number == 6
        assert entry.field == "timestamp"
        assert len(report.log) == 2

    def test_duplicate_id_quarantines_second_occurrence(
        self, tmp_path, format
    ):
        log = _sample_log(4)
        path = tmp_path / f"log.{format}"
        _write(log, path, format)
        lines = path.read_text().splitlines()
        lines.append(lines[-1])  # re-deliver the final record
        path.write_text("\n".join(lines) + "\n")

        report = read_log(path, on_error="collect")
        assert report.num_quarantined == 1
        assert report.quarantined[0].line_number == len(lines)
        assert "duplicate" in report.quarantined[0].reason
        assert report.log.records == log.records

    def test_summary_lines_name_quarantined_rows(self, tmp_path):
        log = _sample_log(3)
        path = tmp_path / "log.jsonl"
        write_jsonl(log, path)
        with path.open("a") as handle:
            handle.write("{broken json\n")
        report = read_jsonl(path, on_error="collect")
        text = "\n".join(report.summary_lines())
        assert "1 quarantined" in text
        assert "line 5" in text

    def test_raise_if_any(self, tmp_path):
        log = _sample_log(3)
        path = tmp_path / "log.jsonl"
        write_jsonl(log, path)
        report = read_jsonl(path, on_error="collect")
        assert report.raise_if_any() is report
        with path.open("a") as handle:
            handle.write("{broken json\n")
        with pytest.raises(SerializationError):
            read_jsonl(path, on_error="collect").raise_if_any()

    def test_structural_errors_still_raise_in_lenient_mode(
        self, tmp_path
    ):
        path = tmp_path / "bad.csv"
        path.write_text("record_id,timestamp\n")
        with pytest.raises(SerializationError):
            read_csv(path, on_error="collect")


class TestRawLogTolerance:
    def _write_raw(self, path, extra_rows=()):
        rows = [
            "date,category,recovery,node",
            "2012-01-07 13:45,gpu failure,55 h,3",
            "2012-02-01,cpu error,2 days,1",
        ]
        rows.extend(extra_rows)
        path.write_text("\n".join(rows) + "\n")

    def test_collect_reports_line_field_reason(self, tmp_path):
        path = tmp_path / "raw.csv"
        self._write_raw(
            path, ["garbage-date,gpu failure,5 h,2"]
        )
        report = read_raw_csv(path, "tsubame2", on_error="collect")
        assert isinstance(report, LogReadReport)
        assert len(report.log) == 2
        assert report.num_quarantined == 1
        entry = report.quarantined[0]
        assert entry.line_number == 4
        assert entry.field == "date"
        assert "unparseable timestamp" in entry.reason

    def test_unknown_category_attributed(self, tmp_path):
        path = tmp_path / "raw.csv"
        self._write_raw(path, ["2012-03-01,warp drive,5 h,2"])
        report = read_raw_csv(path, "tsubame2", on_error="collect")
        assert report.quarantined[0].field == "category"

    def test_skip_unparseable_alias_still_works(self, tmp_path):
        path = tmp_path / "raw.csv"
        self._write_raw(path, ["garbage,gpu failure,5 h,2"])
        log = read_raw_csv(path, "tsubame2", skip_unparseable=True)
        assert len(log) == 2


class TestChaosProperty:
    """Property: every chaos-injected fault is quarantined exactly
    once, every clean row survives, and lenient == strict on the
    repaired remainder."""

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        format=st.sampled_from(["csv", "jsonl"]),
        truncate=st.booleans(),
    )
    def test_quarantine_matches_manifest(
        self, tmp_path_factory, seed, format, truncate
    ):
        tmp_path = tmp_path_factory.mktemp("chaos")
        log = _sample_log(12)
        src = tmp_path / f"clean.{format}"
        dst = tmp_path / f"dirty.{format}"
        _write(log, src, format)
        manifest = corrupt_log_file(
            src, dst, seed=seed, kinds=LOG_FAULT_KINDS, rate=0.4,
            truncate=truncate,
        )
        report = read_log(dst, on_error="collect")
        expected = sorted(
            fault.line_number for fault in manifest
            if fault.line_number > 0
        )
        got = sorted(
            entry.line_number for entry in report.quarantined
        )
        assert got == expected
        # Every non-manifested line yields exactly one kept record:
        # kept + quarantined must account for every data line in dst.
        out_lines = dst.read_text().splitlines()
        if format == "csv":
            preamble = sum(
                1 for line in out_lines if line.startswith("#")
            ) + 1  # + the column-header row
        else:
            preamble = 1  # the header object
        data_lines = len(out_lines) - preamble
        assert len(report.log) == data_lines - len(expected)
        # Survivors are genuine originals, never mutants.
        originals = {r.record_id: r for r in log.records}
        for record in report.log:
            assert originals[record.record_id] == record

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_shuffled_file_parses_identically(
        self, tmp_path_factory, seed
    ):
        """Row order carries no meaning: a shuffled file must load to
        the identical log, with zero quarantines."""
        tmp_path = tmp_path_factory.mktemp("shuffle")
        log = _sample_log(10)
        src = tmp_path / "clean.csv"
        dst = tmp_path / "shuffled.csv"
        write_csv(log, src)
        manifest = corrupt_log_file(
            src, dst, seed=seed, rate=0.0, shuffle=True
        )
        assert [f.kind for f in manifest] == ["shuffle"]
        report = read_log(dst, on_error="collect")
        assert report.ok
        assert report.log.records == log.records
