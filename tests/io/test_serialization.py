"""Tests for CSV/JSONL serialization."""

import pytest

from repro.errors import SerializationError
from repro.io import (
    read_csv,
    read_jsonl,
    record_from_row,
    record_to_row,
    write_csv,
    write_jsonl,
)
from tests.conftest import make_log, make_record


def _sample_log():
    records = [
        make_record(0, hours=1, category="GPU", gpus_involved=(0, 2),
                    ttr_hours=12.5),
        make_record(1, hours=2, category="CPU", node_id=7),
    ]
    return make_log(records)


class TestRowSchema:
    def test_roundtrip(self):
        record = make_record(3, hours=9, category="GPU",
                             gpus_involved=(1, 2), ttr_hours=3.25)
        assert record_from_row(record_to_row(record)) == record

    def test_empty_gpus_roundtrip(self):
        record = make_record(0, hours=1)
        row = record_to_row(record)
        assert row["gpus"] == ""
        assert record_from_row(row).gpus_involved == ()

    def test_root_locus_roundtrip(self):
        record = make_record(0, hours=1, category="Software",
                             root_locus="gpu_driver")
        assert record_from_row(record_to_row(record)).root_locus == \
            "gpu_driver"

    def test_ttr_precision_preserved(self):
        record = make_record(0, hours=1, ttr_hours=55.123456789012)
        assert record_from_row(record_to_row(record)).ttr_hours == \
            record.ttr_hours

    def test_missing_column_rejected(self):
        row = record_to_row(make_record(0, hours=1))
        del row["category"]
        with pytest.raises(SerializationError):
            record_from_row(row)

    def test_malformed_value_rejected(self):
        row = record_to_row(make_record(0, hours=1))
        row["node_id"] = "not-a-number"
        with pytest.raises(SerializationError):
            record_from_row(row)


class TestCsv:
    def test_roundtrip(self, tmp_path):
        log = _sample_log()
        path = tmp_path / "log.csv"
        write_csv(log, path)
        back = read_csv(path)
        assert back.machine == log.machine
        assert back.window_start == log.window_start
        assert back.window_end == log.window_end
        assert back.records == log.records

    def test_calibrated_log_roundtrip(self, tmp_path, t3_log):
        path = tmp_path / "t3.csv"
        write_csv(t3_log, path)
        assert read_csv(path).records == t3_log.records

    def test_missing_metadata_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("record_id,timestamp\n")
        with pytest.raises(SerializationError):
            read_csv(path)

    def test_malformed_metadata_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("# machine tsubame2\n")
        with pytest.raises(SerializationError):
            read_csv(path)

    def test_empty_log_roundtrip(self, tmp_path):
        log = make_log([])
        path = tmp_path / "empty.csv"
        write_csv(log, path)
        assert len(read_csv(path)) == 0


class TestJsonl:
    def test_roundtrip(self, tmp_path):
        log = _sample_log()
        path = tmp_path / "log.jsonl"
        write_jsonl(log, path)
        back = read_jsonl(path)
        assert back.machine == log.machine
        assert back.records == log.records

    def test_calibrated_log_roundtrip(self, tmp_path, t2_log):
        path = tmp_path / "t2.jsonl"
        write_jsonl(t2_log, path)
        assert read_jsonl(path).records == t2_log.records

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(SerializationError):
            read_jsonl(path)

    def test_malformed_header_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(SerializationError):
            read_jsonl(path)

    def test_header_missing_keys_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"machine": "tsubame2"}\n')
        with pytest.raises(SerializationError):
            read_jsonl(path)

    def test_malformed_record_line_rejected(self, tmp_path):
        log = _sample_log()
        path = tmp_path / "log.jsonl"
        write_jsonl(log, path)
        with path.open("a") as handle:
            handle.write("{broken\n")
        with pytest.raises(SerializationError):
            read_jsonl(path)

    def test_blank_lines_skipped(self, tmp_path):
        log = _sample_log()
        path = tmp_path / "log.jsonl"
        write_jsonl(log, path)
        with path.open("a") as handle:
            handle.write("\n\n")
        assert len(read_jsonl(path)) == len(log)

    def test_csv_and_jsonl_agree(self, tmp_path):
        log = _sample_log()
        write_csv(log, tmp_path / "a.csv")
        write_jsonl(log, tmp_path / "a.jsonl")
        assert (read_csv(tmp_path / "a.csv").records
                == read_jsonl(tmp_path / "a.jsonl").records)
