"""End-to-end determinism and pipeline tests.

These lock the whole pipeline down: same seed => byte-identical full
report, full round-trip through serialization, and an
analysis-everything sweep that exercises every public analysis on both
calibrated logs without error.
"""

import hashlib

import pytest

from repro.core import report
from repro.io import read_jsonl, write_jsonl
from repro.synth import generate_log


class TestDeterminism:
    def test_full_report_reproducible(self, t2_log, t3_log):
        first = report.full_report(t2_log, t3_log)
        regenerated = report.full_report(
            generate_log("tsubame2", seed=42),
            generate_log("tsubame3", seed=42),
        )
        assert (hashlib.sha256(first.encode()).hexdigest()
                == hashlib.sha256(regenerated.encode()).hexdigest())

    def test_report_survives_serialization(self, t2_log, t3_log,
                                           tmp_path):
        write_jsonl(t2_log, tmp_path / "t2.jsonl")
        write_jsonl(t3_log, tmp_path / "t3.jsonl")
        roundtripped = report.full_report(
            read_jsonl(tmp_path / "t2.jsonl"),
            read_jsonl(tmp_path / "t3.jsonl"),
        )
        assert roundtripped == report.full_report(t2_log, t3_log)


class TestAnalyzeEverything:
    """Every public analysis runs cleanly on both calibrated logs."""

    @pytest.fixture(params=["tsubame2", "tsubame3"])
    def log(self, request, t2_log, t3_log):
        return t2_log if request.param == "tsubame2" else t3_log

    def test_core_analyses(self, log):
        import repro.core as core
        from repro.machines import get_machine, rack_layout_for

        spec = get_machine(log.machine)
        core.category_breakdown(log)
        core.node_failure_distribution(log)
        core.repeat_failure_class_split(log)
        core.gpu_slot_distribution(log.gpu_failures(), spec.gpu_slots)
        core.rack_failure_distribution(
            log, rack_layout_for(log.machine)
        )
        core.multi_gpu_involvement(log, spec.gpus_per_node)
        core.multi_gpu_clustering(log)
        core.tbf_distribution(log)
        core.tbf_by_category(log)
        core.component_class_mtbf(log)
        core.performance_error_proportionality(log, spec)
        core.ttr_distribution(log)
        core.ttr_by_category(log)
        core.class_spread_comparison(log)
        core.monthly_ttr(log)
        core.monthly_failure_counts(log)
        core.ttr_density_correlation(log)
        core.weekday_profile(log)
        core.hour_of_day_profile(log)
        core.concurrent_outages(log)
        core.crow_amsaa_fit(log)
        core.windowed_mtbf(log, 720.0)
        core.windowed_mttr(log, 720.0)
        core.ttr_survival(log)
        core.impact_ranking(log)
        core.exposure_report(log)
        core.category_rate_shifts(log)

    def test_software_loci_only_on_t3(self, log):
        import repro.core as core
        from repro.errors import AnalysisError

        if log.machine == "tsubame3":
            assert core.software_root_loci(log).total_software == 171
        else:
            with pytest.raises(AnalysisError):
                core.software_root_loci(log)

    def test_predictors_and_plans(self, log):
        from repro.predict import (
            RateBasedPredictor,
            TemporalLocalityPredictor,
            evaluate_forecaster,
            evaluate_predictor,
            fit_markov_model,
            plan_spares,
        )

        evaluate_predictor(RateBasedPredictor(), log)
        evaluate_predictor(TemporalLocalityPredictor(), log)
        evaluate_forecaster(log)
        fit_markov_model(log)
        plan = plan_spares(log)
        assert plan.total_stock > 0
