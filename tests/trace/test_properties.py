"""Property-based tests (hypothesis) for the trace codec.

The determinism contract rests on the codec being a bijection between
Trace objects and their canonical JSONL text.  Hypothesis drives both
directions: emit -> parse -> emit must be byte-identical for arbitrary
schema-conforming traces, not just the ones our simulator happens to
produce.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import RepairPolicy, SimulationConfig
from repro.trace import parse_trace, Trace

_CATEGORIES = st.sampled_from(["GPU", "CPU", "Memory", "SSD", "FAN"])
_TIMES = st.floats(
    min_value=0.0,
    max_value=1e6,
    allow_nan=False,
    allow_infinity=False,
)
_HOURS = st.floats(
    min_value=0.0,
    max_value=1e4,
    allow_nan=False,
    allow_infinity=False,
)
_NODES = st.integers(min_value=0, max_value=2000)
_JOBS = st.integers(min_value=0, max_value=10_000)

_fail = st.fixed_dictionaries(
    {
        "t": st.just("fail"),
        "time": _TIMES,
        "node": _NODES,
        "cat": _CATEGORIES,
        "ttr": _HOURS,
        "gpus": st.lists(
            st.integers(min_value=0, max_value=3), max_size=4
        ),
    }
)
_repair = st.fixed_dictionaries(
    {
        "t": st.sampled_from(["rstart", "rdone"]),
        "time": _TIMES,
        "node": _NODES,
        "cat": _CATEGORIES,
    }
)
_jsub = st.fixed_dictionaries(
    {
        "t": st.just("jsub"),
        "time": _TIMES,
        "job": _JOBS,
        "width": st.integers(min_value=1, max_value=64),
        "hours": _HOURS,
    }
)
_jstart = st.fixed_dictionaries(
    {
        "t": st.just("jstart"),
        "time": _TIMES,
        "job": _JOBS,
        "nodes": st.lists(_NODES, min_size=1, max_size=8),
    }
)
_jdone = st.fixed_dictionaries(
    {"t": st.just("jdone"), "time": _TIMES, "job": _JOBS}
)
_jkill = st.fixed_dictionaries(
    {"t": st.just("jkill"), "time": _TIMES, "job": _JOBS, "node": _NODES}
)

_events = st.lists(
    st.one_of(_fail, _repair, _jsub, _jstart, _jdone, _jkill),
    max_size=40,
)

_config = st.builds(
    SimulationConfig,
    machine=st.sampled_from(["tsubame2", "tsubame3"]),
    seed=st.integers(min_value=0, max_value=2**31),
    intensity=st.floats(
        min_value=0.01, max_value=100.0, allow_nan=False
    ),
    health_test_effectiveness=st.floats(
        min_value=0.0, max_value=1.0, allow_nan=False
    ),
    presample=st.booleans(),
    repair_policy=st.builds(
        RepairPolicy,
        num_technicians=st.integers(min_value=1, max_value=32),
        spare_lead_time_hours=_HOURS,
        hardware_categories=st.frozensets(_CATEGORIES, min_size=1),
    ),
    initial_spares=st.dictionaries(
        _CATEGORIES, st.integers(min_value=0, max_value=100)
    ),
    checkpoint_policy=st.none(),
    workload=st.none(),
)


class TestCodecRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(config=_config, horizon=_TIMES, events=_events)
    def test_emit_parse_emit_is_byte_identical(
        self, config, horizon, events
    ):
        trace = Trace(
            config=config, horizon_hours=horizon, events=events
        )
        text = trace.dumps()
        parsed, quarantined = parse_trace(text)
        assert not quarantined
        assert parsed.dumps() == text
        # And idempotent: a second round trip changes nothing.
        again, _ = parse_trace(parsed.dumps())
        assert again.dumps() == text

    @settings(max_examples=30, deadline=None)
    @given(config=_config, horizon=_TIMES, events=_events)
    def test_parsed_trace_preserves_event_order_and_values(
        self, config, horizon, events
    ):
        trace = Trace(
            config=config, horizon_hours=horizon, events=events
        )
        parsed, _ = parse_trace(trace.dumps())
        assert parsed.events == events
        assert parsed.config == config
