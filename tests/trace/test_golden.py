"""Golden-trace regression corpus.

Each committed trace under ``golden/`` must replay bit-exactly with
the current code.  A failure here means some component made a
decision differently than when the corpus was recorded — a semantic
regression even when every unit test passes.  If the change is
*intentional* (schema bump, deliberate sim change), regenerate with::

    PYTHONPATH=src python tests/trace/golden/regen.py
"""

from __future__ import annotations

import pytest

from repro.trace import read_trace, replay

from tests.trace.conftest import GOLDEN_DIR

GOLDEN_NAMES = ("a100_train", "t2_baseline", "t2_burst", "t3_workload")


@pytest.mark.parametrize("name", GOLDEN_NAMES)
def test_golden_replays_bit_exactly(name):
    trace, quarantined = read_trace(GOLDEN_DIR / f"{name}.jsonl")
    assert not quarantined
    result = replay(trace)
    assert result.bit_exact


def test_corpus_is_complete():
    found = {p.stem for p in GOLDEN_DIR.glob("*.jsonl")}
    assert found == set(GOLDEN_NAMES)


def test_burst_scenario_contains_multi_gpu_failures():
    trace, _ = read_trace(GOLDEN_DIR / "t2_burst.jsonl")
    widths = [len(e["gpus"]) for e in trace.failures]
    assert max(widths) > 1, (
        "the burst golden must exercise correlated multi-GPU failures"
    )


def test_workload_scenario_exercises_scheduler():
    trace, _ = read_trace(GOLDEN_DIR / "t3_workload.jsonl")
    kinds = {e["t"] for e in trace.events}
    assert {"jsub", "jstart", "jdone", "jkill"} <= kinds
    assert trace.config.workload is not None
    assert trace.config.checkpoint_policy is not None


def test_training_scenario_exercises_gang():
    trace, _ = read_trace(GOLDEN_DIR / "a100_train.jsonl")
    kinds = {e["t"] for e in trace.events}
    assert {"jsub", "jstart", "jkill"} <= kinds
    assert trace.config.train is not None
    assert trace.config.train.num_nodes == 64
    assert trace.report["train"]["interrupts"] > 0


def test_goldens_are_canonical_on_disk():
    # Byte-level canonical form: re-emitting the parsed trace must
    # reproduce the committed file exactly (guards hand edits and
    # codec drift alike).
    for name in GOLDEN_NAMES:
        path = GOLDEN_DIR / f"{name}.jsonl"
        trace, _ = read_trace(path)
        assert trace.dumps() == path.read_text(), name
