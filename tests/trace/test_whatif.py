"""Counterfactual replay: same failures, different operations."""

from __future__ import annotations

import pytest

from repro.errors import TraceError
from repro.sim import CheckpointPolicy
from repro.trace import WhatIf, run_whatif

from tests.trace.conftest import copy_trace


class TestWhatIf:
    def test_empty_overrides_rejected(self, headless_trace):
        assert WhatIf().empty
        with pytest.raises(TraceError, match="overrides are empty"):
            run_whatif(headless_trace, WhatIf())

    def test_fewer_technicians_slows_repair(self, headless_trace):
        result = run_whatif(
            headless_trace, WhatIf(num_technicians=1)
        )
        diff = result.diff
        assert diff["effective_mttr_hours"].delta > 0
        assert diff["mean_waiting_hours"].delta > 0
        assert diff["repairs_completed"].delta <= 0
        # The failure history itself is held fixed.
        assert diff["failures_injected"].delta == 0

    def test_infinite_spares_remove_stockouts(self, headless_trace):
        categories = {e["cat"] for e in headless_trace.failures}
        result = run_whatif(
            headless_trace,
            WhatIf(initial_spares={c: 10_000 for c in categories}),
        )
        assert result.counterfactual.spare_stockouts == 0
        assert result.baseline["spare_stockouts"] > 0

    def test_checkpoint_interval_override(self, workload_trace):
        result = run_whatif(
            workload_trace, WhatIf(checkpoint_interval_hours=48.0)
        )
        # Less checkpoint overhead, more exposure to lost work; the
        # scheduler outcome must move one way or the other.
        assert any(
            f.field.startswith("scheduler.") for f in result.diff.changed
        )

    def test_checkpoint_policy_wins_over_interval(self, workload_trace):
        overrides = WhatIf(
            checkpoint_interval_hours=48.0,
            checkpoint_policy=CheckpointPolicy(12.0, 0.4),
        )
        sim = overrides.build_simulator(workload_trace)
        assert sim.config.checkpoint_policy.interval_hours == 12.0
        assert sim.config.checkpoint_policy.cost_hours == 0.4

    def test_interval_only_inherits_recorded_costs(self, workload_trace):
        sim = WhatIf(checkpoint_interval_hours=48.0).build_simulator(
            workload_trace
        )
        recorded = workload_trace.config.checkpoint_policy
        assert sim.config.checkpoint_policy.interval_hours == 48.0
        assert (
            sim.config.checkpoint_policy.cost_hours
            == recorded.cost_hours
        )

    def test_baseline_rederived_when_report_missing(self, headless_trace):
        stripped = copy_trace(headless_trace)
        stripped.report = None
        result = run_whatif(stripped, WhatIf(num_technicians=1))
        assert result.baseline == headless_trace.report

    def test_lead_time_override_keeps_staffing(self, headless_trace):
        sim = WhatIf(spare_lead_time_hours=24.0).build_simulator(
            headless_trace
        )
        base = headless_trace.config.repair_policy
        assert sim.config.repair_policy.spare_lead_time_hours == 24.0
        assert (
            sim.config.repair_policy.num_technicians
            == base.num_technicians
        )
