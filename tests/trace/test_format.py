"""Trace codec: canonical lines, header round-trip, tolerant parsing."""

from __future__ import annotations

import json

import pytest

from repro.errors import TraceError
from repro.sim import (
    CheckpointPolicy,
    RepairPolicy,
    SimulationConfig,
    WorkloadConfig,
)
from repro.trace import (
    SCHEMA_VERSION,
    Trace,
    canonical_line,
    config_from_dict,
    config_to_dict,
    parse_trace,
    read_trace,
    write_trace,
)

from tests.trace.conftest import copy_trace


def make_config(**overrides) -> SimulationConfig:
    defaults = dict(
        machine="tsubame2",
        seed=3,
        intensity=1.0,
        health_test_effectiveness=0.0,
        presample=True,
        repair_policy=RepairPolicy(
            hardware_categories=frozenset({"GPU", "CPU"})
        ),
        initial_spares={"GPU": 2, "CPU": 1},
        checkpoint_policy=None,
        workload=None,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestCanonicalLine:
    def test_sorted_compact_deterministic(self):
        assert (
            canonical_line({"b": 1, "a": [1.5, "x"]})
            == '{"a":[1.5,"x"],"b":1}'
        )

    def test_nan_rejected(self):
        with pytest.raises(TraceError, match="not canonical JSON"):
            canonical_line({"time": float("nan")})

    def test_non_serializable_rejected(self):
        with pytest.raises(TraceError):
            canonical_line({"policy": object()})


class TestConfigRoundTrip:
    def test_minimal(self):
        config = make_config()
        assert config_from_dict(config_to_dict(config)) == config

    def test_full(self):
        config = make_config(
            checkpoint_policy=CheckpointPolicy(6.0, 0.2),
            workload=WorkloadConfig(),
            health_test_effectiveness=0.5,
            presample=False,
        )
        assert config_from_dict(config_to_dict(config)) == config

    def test_malformed_raises(self):
        data = config_to_dict(make_config())
        del data["repair"]
        with pytest.raises(TraceError, match="malformed"):
            config_from_dict(data)


class TestTrace:
    def test_horizon_canonicalized_to_float(self):
        # Regression: an int horizon used to serialize as "600" but
        # parse back as 600.0 and re-emit as "600.0", breaking every
        # byte-identical codec round-trip and bit-exact replay.
        trace = Trace(config=make_config(), horizon_hours=600)
        assert trace.horizon_hours == 600.0
        assert isinstance(trace.horizon_hours, float)
        assert '"horizon_hours":600.0' in trace.lines()[0]

    def test_failures_and_jobs_selectors(self, workload_trace):
        kinds = {event["t"] for event in workload_trace.events}
        assert "fail" in kinds and "jsub" in kinds
        assert all(e["t"] == "fail" for e in workload_trace.failures)
        assert all(e["t"] == "jsub" for e in workload_trace.jobs)

    def test_dumps_parses_byte_identical(self, headless_trace):
        text = headless_trace.dumps()
        parsed, quarantined = parse_trace(text)
        assert not quarantined
        assert parsed.dumps() == text

    def test_event_lines_exclude_header_report_end(self, headless_trace):
        for line in headless_trace.event_lines():
            assert json.loads(line)["t"] not in ("header", "report", "end")


class TestParseTrace:
    def test_empty_text_raises(self):
        with pytest.raises(TraceError, match="no header"):
            parse_trace("")

    def test_first_line_must_be_header(self):
        with pytest.raises(TraceError, match="must be the header"):
            parse_trace('{"t":"fail","time":1.0}')

    def test_header_not_json_raises_even_lenient(self):
        with pytest.raises(TraceError, match="header"):
            parse_trace("not json at all", on_error="quarantine")

    def test_unsupported_schema_rejected(self, headless_trace):
        header = headless_trace.header_dict()
        header["schema"] = SCHEMA_VERSION + 1
        with pytest.raises(TraceError, match="unsupported trace schema"):
            parse_trace(canonical_line(header))

    def test_bad_event_raises_by_default(self, headless_trace):
        text = headless_trace.dumps() + "garbage\n"
        with pytest.raises(TraceError, match="not valid JSON"):
            parse_trace(text)

    def test_quarantine_sets_lines_aside(self, headless_trace):
        lines = headless_trace.dumps().splitlines()
        lines.insert(2, "garbage")
        lines.insert(5, '{"t":"warp_drive"}')
        lines.insert(7, '{"t":"fail","node":3}')  # missing keys
        trace, quarantined = parse_trace(
            "\n".join(lines), on_error="quarantine"
        )
        assert [q.line_number for q in quarantined] == [3, 6, 8]
        reasons = [q.reason for q in quarantined]
        assert "not valid JSON" in reasons[0]
        assert "unknown event type" in reasons[1]
        assert "missing keys" in reasons[2]
        # Everything else survived.
        assert len(trace.events) == len(headless_trace.events)

    def test_duplicate_header_quarantined(self, headless_trace):
        lines = headless_trace.dumps().splitlines()
        lines.insert(3, lines[0])
        trace, quarantined = parse_trace(
            "\n".join(lines), on_error="quarantine"
        )
        assert [q.reason for q in quarantined] == ["duplicate header"]
        assert len(trace.events) == len(headless_trace.events)

    def test_invalid_on_error_value(self):
        with pytest.raises(TraceError, match="on_error"):
            parse_trace("{}", on_error="ignore")

    def test_blank_lines_skipped(self, headless_trace):
        lines = headless_trace.dumps().splitlines()
        lines.insert(1, "")
        lines.insert(4, "   ")
        trace, quarantined = parse_trace("\n".join(lines))
        assert not quarantined
        assert trace.dumps() == headless_trace.dumps()


class TestReadWrite:
    def test_write_then_read_byte_identical(self, tmp_path, headless_trace):
        path = tmp_path / "run.jsonl"
        write_trace(headless_trace, path)
        trace, quarantined = read_trace(path)
        assert not quarantined
        assert trace.dumps() == path.read_text()

    def test_missing_file_raises_trace_error(self, tmp_path):
        with pytest.raises(TraceError, match="cannot read"):
            read_trace(tmp_path / "absent.jsonl")

    def test_unwritable_path_raises_trace_error(
        self, tmp_path, headless_trace
    ):
        with pytest.raises(TraceError, match="cannot write"):
            write_trace(headless_trace, tmp_path / "no" / "dir.jsonl")

    def test_tamper_survives_copy_helper(self, headless_trace):
        copied = copy_trace(headless_trace)
        copied.events[0]["node"] = -1
        assert headless_trace.events[0]["node"] != -1
