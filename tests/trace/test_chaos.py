"""Chaos: corrupt and truncated traces must quarantine, not crash."""

from __future__ import annotations

import pytest

from repro.errors import TraceError
from repro.stream import TraceSource
from repro.testing import TRACE_FAULT_KINDS, corrupt_trace_file
from repro.trace import read_trace, write_trace


@pytest.fixture()
def clean_path(tmp_path, headless_trace):
    path = tmp_path / "clean.jsonl"
    write_trace(headless_trace, path)
    return path


class TestCorruptTraceFile:
    def test_manifest_matches_quarantine_exactly(
        self, tmp_path, clean_path
    ):
        dirty = tmp_path / "dirty.jsonl"
        manifest = corrupt_trace_file(clean_path, dirty, seed=3)
        assert manifest, "rate=0.2 over ~100 lines must corrupt some"
        trace, quarantined = read_trace(dirty, on_error="quarantine")
        assert [q.line_number for q in quarantined] == [
            fault.line_number for fault in manifest
        ]
        # Clean lines all survived.
        clean, _ = read_trace(clean_path)
        assert len(trace.events) == (
            len(clean.events) - len(manifest)
        )

    def test_strict_read_refuses_corruption(self, tmp_path, clean_path):
        dirty = tmp_path / "dirty.jsonl"
        corrupt_trace_file(clean_path, dirty, seed=3)
        with pytest.raises(TraceError):
            read_trace(dirty)

    def test_each_kind_individually(self, tmp_path, clean_path):
        for kind in TRACE_FAULT_KINDS:
            dirty = tmp_path / f"{kind}.jsonl"
            manifest = corrupt_trace_file(
                clean_path, dirty, seed=11, kinds=(kind,), rate=0.3
            )
            _, quarantined = read_trace(dirty, on_error="quarantine")
            assert len(quarantined) == len(manifest), kind

    def test_truncated_tail_quarantined(self, tmp_path, clean_path):
        dirty = tmp_path / "torn.jsonl"
        manifest = corrupt_trace_file(
            clean_path, dirty, seed=3, rate=0.0, truncate=True
        )
        assert [f.kind for f in manifest] == ["truncated"]
        trace, quarantined = read_trace(dirty, on_error="quarantine")
        assert len(quarantined) == 1
        assert quarantined[0].line_number == manifest[0].line_number

    def test_deterministic_given_seed(self, tmp_path, clean_path):
        a = corrupt_trace_file(clean_path, tmp_path / "a.jsonl", seed=5)
        b = corrupt_trace_file(clean_path, tmp_path / "b.jsonl", seed=5)
        assert a == b
        assert (
            (tmp_path / "a.jsonl").read_text()
            == (tmp_path / "b.jsonl").read_text()
        )

    def test_unknown_kind_rejected(self, tmp_path, clean_path):
        with pytest.raises(ValueError, match="unknown fault kinds"):
            corrupt_trace_file(
                clean_path, tmp_path / "x.jsonl", kinds=("gremlins",)
            )

    def test_header_never_corrupted(self, tmp_path, clean_path):
        # Even at rate=1.0 the header survives, so a lenient read
        # still yields a usable trace.
        dirty = tmp_path / "all.jsonl"
        corrupt_trace_file(clean_path, dirty, seed=1, rate=1.0)
        trace, quarantined = read_trace(dirty, on_error="quarantine")
        assert trace.config.machine == "tsubame2"
        assert quarantined  # everything else got hit


class TestLenientTraceSource:
    def test_streams_surviving_events(self, tmp_path, clean_path):
        dirty = tmp_path / "dirty.jsonl"
        corrupt_trace_file(clean_path, dirty, seed=3)
        source = TraceSource(dirty, on_error="quarantine")
        assert source.quarantined
        events = list(source)
        assert events, "surviving failures must still stream"
        assert all(e.is_failure for e in events)

    def test_strict_source_raises(self, tmp_path, clean_path):
        dirty = tmp_path / "dirty.jsonl"
        corrupt_trace_file(clean_path, dirty, seed=3)
        with pytest.raises(TraceError):
            TraceSource(dirty)
