"""TraceSource: streaming a recorded trace file."""

from __future__ import annotations

import pytest

from repro.errors import TraceError
from repro.stream import FailureMonitor, TraceSource
from repro.trace import write_trace


@pytest.fixture()
def trace_path(tmp_path, headless_trace):
    path = tmp_path / "run.jsonl"
    write_trace(headless_trace, path)
    return path


class TestTraceSource:
    def test_yields_failures_in_recorded_order(
        self, trace_path, headless_trace
    ):
        events = list(TraceSource(trace_path))
        assert all(e.is_failure for e in events)
        assert len(events) == len(headless_trace.failures)
        times = [e.time_hours for e in events]
        assert times == sorted(times)
        assert [e.record.record_id for e in events] == list(
            range(len(events))
        )

    def test_include_repairs(self, trace_path, headless_trace):
        events = list(TraceSource(trace_path, include_repairs=True))
        repairs = [e for e in events if e.is_repair]
        rdone = [
            e for e in headless_trace.events if e["t"] == "rdone"
        ]
        assert len(repairs) == len(rdone)

    def test_metadata_properties(self, trace_path, headless_trace):
        source = TraceSource(trace_path)
        assert source.machine == "tsubame2"
        assert source.span_hours == headless_trace.horizon_hours
        assert source.quarantined == []

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(TraceError, match="cannot read"):
            TraceSource(tmp_path / "absent.jsonl")

    def test_feeds_failure_monitor(self, trace_path, headless_trace):
        monitor = FailureMonitor()
        for event in TraceSource(trace_path):
            monitor.observe(event)
        snapshot = monitor.snapshot()
        assert snapshot.events_seen == len(headless_trace.failures)
