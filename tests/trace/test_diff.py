"""Structured report diffs."""

from __future__ import annotations

import json

import pytest

from repro.trace import diff_reports


BASE = {
    "machine": "tsubame2",
    "horizon_hours": 600.0,
    "availability": 0.99,
    "spare_stockouts": 3,
    "scheduler": None,
}


class TestDiffReports:
    def test_identical_reports_have_no_changes(self):
        diff = diff_reports(BASE, dict(BASE))
        assert diff.changed == ()
        assert diff.format_text() == "no outcome differences"

    def test_numeric_delta(self):
        other = {**BASE, "availability": 0.95, "spare_stockouts": 0}
        diff = diff_reports(BASE, other)
        assert diff["availability"].delta == pytest.approx(-0.04)
        assert diff["spare_stockouts"].delta == -3
        assert {f.field for f in diff.changed} == {
            "availability",
            "spare_stockouts",
        }

    def test_non_numeric_pairs_have_no_delta(self):
        other = {**BASE, "machine": "tsubame3"}
        entry = diff_reports(BASE, other)["machine"]
        assert entry.changed
        assert entry.delta is None

    def test_scheduler_fields_flattened(self):
        left = {**BASE, "scheduler": {"jobs_completed": 10}}
        right = {**BASE, "scheduler": {"jobs_completed": 12}}
        diff = diff_reports(left, right)
        assert diff["scheduler.jobs_completed"].delta == 2

    def test_one_sided_scheduler(self):
        right = {**BASE, "scheduler": {"jobs_completed": 12}}
        diff = diff_reports(BASE, right)
        assert diff["scheduler"].baseline is None
        assert diff["scheduler.jobs_completed"].baseline is None
        assert diff["scheduler.jobs_completed"].counterfactual == 12

    def test_unknown_field_raises_key_error(self):
        with pytest.raises(KeyError):
            diff_reports(BASE, BASE)["no_such_field"]

    def test_to_dict_is_json_ready(self):
        other = {**BASE, "availability": 0.95}
        payload = diff_reports(BASE, other).to_dict()
        parsed = json.loads(json.dumps(payload))
        assert parsed["availability"]["baseline"] == 0.99
        assert parsed["availability"]["counterfactual"] == 0.95

    def test_format_text_shows_deltas(self):
        other = {**BASE, "spare_stockouts": 5}
        text = diff_reports(BASE, other).format_text()
        assert "spare_stockouts" in text
        assert "(+2)" in text

    def test_format_text_all_fields(self):
        text = diff_reports(BASE, dict(BASE)).format_text(
            changed_only=False
        )
        assert "machine" in text and "availability" in text
