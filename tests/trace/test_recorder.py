"""TraceRecorder: bus capture, deferred serialization, one-shot use."""

from __future__ import annotations

import pytest

from repro.errors import TraceError
from repro.sim import ClusterSimulator, WorkloadConfig
from repro.trace import TraceRecorder, parse_trace, record_run


class TestRecording:
    def test_record_run_returns_report_and_trace(self):
        sim = ClusterSimulator("tsubame2", seed=5)
        report, trace = record_run(sim, 300)
        assert trace.config == sim.config
        assert trace.horizon_hours == 300.0
        assert len(trace.failures) == report.failures_injected
        rdone = [e for e in trace.events if e["t"] == "rdone"]
        assert len(rdone) == report.repairs_completed

    def test_event_times_monotonic_nondecreasing(self):
        sim = ClusterSimulator("tsubame2", seed=5)
        _, trace = record_run(sim, 300)
        times = [event["time"] for event in trace.events]
        assert times == sorted(times)

    def test_workload_jobs_recorded(self):
        sim = ClusterSimulator(
            "tsubame3", seed=2, workload=WorkloadConfig()
        )
        report, trace = record_run(sim, 200)
        kinds = {event["t"] for event in trace.events}
        assert {"jsub", "jstart", "jdone"} <= kinds
        assert len(trace.jobs) == report.scheduler.jobs_submitted

    def test_report_and_end_lines_present(self):
        sim = ClusterSimulator("tsubame2", seed=5)
        report, trace = record_run(sim, 300)
        assert trace.report["failures_injected"] == (
            report.failures_injected
        )
        assert trace.end["events"] == len(trace.events)
        assert trace.end["wall_s"] >= 0.0

    def test_trace_parses_byte_identical(self):
        sim = ClusterSimulator("tsubame2", seed=5)
        _, trace = record_run(sim, 300)
        parsed, quarantined = parse_trace(trace.dumps())
        assert not quarantined
        assert parsed.dumps() == trace.dumps()


class TestLifecycle:
    def test_finalize_is_one_shot(self):
        sim = ClusterSimulator("tsubame2", seed=5)
        recorder = TraceRecorder.attach(sim)
        report = sim.run(100)
        recorder.finalize(report, 100)
        with pytest.raises(TraceError, match="already finalized"):
            recorder.finalize(report, 100)

    def test_event_count_tracks_buffer(self):
        sim = ClusterSimulator("tsubame2", seed=5)
        recorder = TraceRecorder.attach(sim)
        assert recorder.event_count == 0
        sim.run(300)
        assert recorder.event_count > 0

    def test_attach_before_run_misses_nothing(self):
        # The recorder must see the very first failure: compare with a
        # twin run counted via a direct subscription.
        twin = ClusterSimulator("tsubame2", seed=5)
        seen = []
        twin.engine.subscribe(
            "failure", lambda record, time_hours: seen.append(record)
        )
        twin.run(300)
        sim = ClusterSimulator("tsubame2", seed=5)
        _, trace = record_run(sim, 300)
        assert len(trace.failures) == len(seen)
