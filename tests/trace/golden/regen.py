"""Regenerate the golden trace corpus.

Run from the repo root::

    PYTHONPATH=src python tests/trace/golden/regen.py

Each scenario below is recorded fresh and written in canonical form.
The corpus is committed; regenerate it only when the trace schema
version is bumped or the simulation's event stream changes *on
purpose* — tests/trace/test_golden.py treats any replay divergence
against these files as a regression.
"""

from __future__ import annotations

from pathlib import Path

from repro.sim import CheckpointPolicy, ClusterSimulator, WorkloadConfig
from repro.train import TrainingJobConfig
from repro.trace import record_run, write_trace

GOLDEN_DIR = Path(__file__).parent

#: name -> ClusterSimulator kwargs + horizon.  Keep horizons short:
#: every scenario is replayed bit-exactly in tier-1.
SCENARIOS: dict[str, dict] = {
    # Plain headless run, default calibration.
    "t2_baseline": {
        "machine": "tsubame2",
        "kwargs": {"seed": 7},
        "horizon": 600,
    },
    # Elevated intensity so correlated multi-GPU bursts occur; the
    # golden test asserts at least one fail event with >1 GPU.
    "t2_burst": {
        "machine": "tsubame2",
        "kwargs": {"seed": 8, "intensity": 2.0},
        "horizon": 500,
    },
    # Full stack: workload scheduler + checkpointing + health tests.
    "t3_workload": {
        "machine": "tsubame3",
        "kwargs": {
            "seed": 11,
            "intensity": 3.0,
            "health_test_effectiveness": 0.5,
            "workload": WorkloadConfig(),
            "checkpoint_policy": CheckpointPolicy(6.0, 0.2),
        },
        "horizon": 400,
    },
    # Gang-scheduled training job on the modern A100 fleet: the
    # trace carries the training config in its header and the gang's
    # job lifecycle (jsub/jstart/jkill) in its event stream.
    "a100_train": {
        "machine": "a100",
        "kwargs": {
            "seed": 7,
            "checkpoint_policy": CheckpointPolicy(2.0, 0.25),
            "train": TrainingJobConfig(num_nodes=64),
        },
        "horizon": 240,
    },
}


def regenerate() -> None:
    for name, scenario in SCENARIOS.items():
        sim = ClusterSimulator(scenario["machine"], **scenario["kwargs"])
        _, trace = record_run(sim, scenario["horizon"])
        path = GOLDEN_DIR / f"{name}.jsonl"
        write_trace(trace, path)
        print(f"{path}: {len(trace.events)} events")


if __name__ == "__main__":
    regenerate()
