"""Record/replay of gang-training runs.

The gang publishes the scheduler's job topics, so the recorder needs
no training-specific hooks; the trace header carries the training
config and the footer the :class:`TrainStats`, and replay rebuilds the
gang instead of a batch scheduler.
"""

import pytest

from repro.errors import TraceError
from repro.sim import ClusterSimulator, young_daly_policy
from repro.train import TrainingJobConfig
from repro.trace import record_run, replay
from repro.trace.format import (
    config_from_dict,
    config_to_dict,
    parse_trace,
)
from repro.trace.replay import ReplaySimulator

from tests.trace.conftest import copy_trace

POLICY = young_daly_policy(0.1, 24.0)


@pytest.fixture(scope="module")
def training_run():
    simulator = ClusterSimulator(
        "a100",
        seed=7,
        checkpoint_policy=POLICY,
        train=TrainingJobConfig(num_nodes=64),
    )
    return record_run(simulator, 240.0)


class TestTrainingTrace:
    def test_header_carries_training_config(self, training_run):
        _, trace = training_run
        assert trace.config.train == TrainingJobConfig(num_nodes=64)

    def test_footer_carries_train_stats(self, training_run):
        report, trace = training_run
        assert trace.report["train"]["interrupts"] == (
            report.train.interrupts
        )
        assert trace.report["train"]["work_committed_hours"] == (
            report.train.work_committed_hours
        )

    def test_job_events_recorded(self, training_run):
        _, trace = training_run
        kinds = {event["t"] for event in trace.events}
        assert {"jsub", "jstart", "jkill"} <= kinds

    def test_replays_bit_exactly(self, training_run):
        report, trace = training_run
        result = replay(copy_trace(trace))
        assert result.bit_exact
        assert result.report.train.ettr == report.train.ettr
        assert result.report.train.lost_work_by_category == (
            report.train.lost_work_by_category
        )

    def test_round_trips_through_text(self, training_run):
        _, trace = training_run
        reparsed, quarantined = parse_trace(trace.dumps())
        assert not quarantined
        assert reparsed.dumps() == trace.dumps()

    def test_checkpoint_none_override_rejected(self, training_run):
        _, trace = training_run
        with pytest.raises(TraceError):
            ReplaySimulator(copy_trace(trace), checkpoint_policy=None)


class TestConfigDictStability:
    def test_train_key_absent_without_training(self):
        simulator = ClusterSimulator("tsubame2", seed=7)
        data = config_to_dict(simulator.config)
        assert "train" not in data
        assert config_from_dict(data).train is None

    def test_train_key_round_trips(self, training_run):
        _, trace = training_run
        data = config_to_dict(trace.config)
        assert data["train"]["num_nodes"] == 64
        assert config_from_dict(data).train == trace.config.train
