"""Shared fixtures for the trace/replay suite.

Recording a run is the expensive part, so the recorded traces are
session-scoped; tests that need to tamper with one work on copies
(:func:`Trace` is mutable — copy before editing).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.sim import (
    CheckpointPolicy,
    ClusterSimulator,
    WorkloadConfig,
)
from repro.trace import Trace, parse_trace, record_run

GOLDEN_DIR = Path(__file__).parent / "golden"


def copy_trace(trace: Trace) -> Trace:
    """A deep, independent copy safe for tampering."""
    copied, quarantined = parse_trace(trace.dumps())
    assert not quarantined
    return copied


@pytest.fixture(scope="session")
def headless_trace() -> Trace:
    """A recorded headless tsubame2 run (no workload)."""
    sim = ClusterSimulator("tsubame2", seed=7)
    _, trace = record_run(sim, 400)
    return trace


@pytest.fixture(scope="session")
def workload_trace() -> Trace:
    """A recorded tsubame3 run with scheduler + checkpointing."""
    sim = ClusterSimulator(
        "tsubame3",
        seed=11,
        intensity=3.0,
        health_test_effectiveness=0.5,
        workload=WorkloadConfig(),
        checkpoint_policy=CheckpointPolicy(6.0, 0.2),
    )
    _, trace = record_run(sim, 300)
    return trace
