"""Replay: bit-exact reproduction, divergence diagnosis, sinks."""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.errors import ReplayDivergenceError, TraceError
from repro.sim import ClusterSimulator
from repro.store import open_store
from repro.trace import (
    ReplaySimulator,
    compare_traces,
    record_run,
    replay,
    report_to_dict,
    write_trace,
)

from tests.trace.conftest import copy_trace

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestBitExactReplay:
    def test_headless(self, headless_trace):
        result = replay(headless_trace)
        assert result.bit_exact
        assert result.divergence is None
        assert report_to_dict(result.report) == headless_trace.report

    def test_workload(self, workload_trace):
        result = replay(workload_trace)
        assert result.bit_exact
        assert report_to_dict(result.report) == workload_trace.report

    def test_replayed_trace_is_byte_identical(self, headless_trace):
        result = replay(headless_trace)
        assert (
            result.trace.event_lines() == headless_trace.event_lines()
        )

    def test_int_horizon_regression(self):
        # Regression (determinism sweep): record_run(sim, 600) with an
        # int horizon leaked "600" into the recorded report while the
        # replayed run, driven by the parsed (float) header, reported
        # 600.0 — every replay flagged a phantom report divergence.
        sim = ClusterSimulator("tsubame2", seed=0)
        _, trace = record_run(sim, 300)
        assert '"horizon_hours":300.0' in trace.lines()[0]
        assert replay(trace).bit_exact


class TestDivergenceDiagnosis:
    def test_tampered_event_diagnosed_at_index(self, headless_trace):
        tampered = copy_trace(headless_trace)
        victim = next(
            i for i, e in enumerate(tampered.events) if e["t"] == "fail"
        )
        tampered.events[victim]["node"] += 1
        result = replay(tampered, verify=False)
        assert not result.bit_exact
        # The mismatch may surface just *before* the tampered fail
        # line: the rstart for a failure is recorded first (repair
        # submission precedes the failure record on the bus), and it
        # carries the original node id.
        assert result.divergence.kind == "event"
        assert result.divergence.index <= victim
        assert result.divergence.expected != result.divergence.actual
        assert "diverged at event" in result.divergence.describe()

    def test_verify_raises_with_divergence_payload(self, headless_trace):
        tampered = copy_trace(headless_trace)
        tampered.events[0]["time"] += 0.125
        with pytest.raises(ReplayDivergenceError) as excinfo:
            replay(tampered)
        assert excinfo.value.divergence.kind == "event"

    def test_extra_recorded_events_diagnosed_as_count(
        self, headless_trace
    ):
        tampered = copy_trace(headless_trace)
        # Append a phantom repair completion: the replayed repair
        # service never produces it, so the recording has one extra
        # line.  (A duplicated *fail* would be re-injected and match.)
        rdone = next(
            e for e in tampered.events if e["t"] == "rdone"
        )
        tampered.events.append(dict(rdone))
        result = replay(tampered, verify=False)
        assert result.divergence.kind == "event_count"
        assert "different number of events" in (
            result.divergence.describe()
        )

    def test_tampered_report_diagnosed(self, headless_trace):
        tampered = copy_trace(headless_trace)
        tampered.report["spares_consumed"] += 1
        result = replay(tampered, verify=False)
        assert result.divergence.kind == "report"
        assert "final report differs" in result.divergence.describe()

    def test_compare_traces_identical_is_none(self, headless_trace):
        assert compare_traces(headless_trace, headless_trace) is None


class TestReplaySimulator:
    def test_run_is_one_shot(self, headless_trace):
        sim = ReplaySimulator(headless_trace)
        sim.run()
        with pytest.raises(TraceError, match="already ran"):
            sim.run()

    def test_headless_trace_gets_no_scheduler(self, headless_trace):
        assert ReplaySimulator(headless_trace).scheduler is None

    def test_workload_trace_gets_scheduler(self, workload_trace):
        assert ReplaySimulator(workload_trace).scheduler is not None

    def test_injected_log_matches_original(self, headless_trace):
        sim = ClusterSimulator("tsubame2", seed=7)
        report = sim.run(400)
        original = sim.injected_log()
        result = replay(headless_trace)
        replayed = result.simulator.injected_log()
        assert len(replayed) == len(original)
        for a, b in zip(original.records, replayed.records):
            assert (a.node_id, a.category, a.ttr_hours) == (
                b.node_id,
                b.category,
                b.ttr_hours,
            )

    def test_to_store_persists_replayed_failures(
        self, tmp_path, headless_trace
    ):
        result = replay(headless_trace)
        summary = result.simulator.to_store(tmp_path / "store")
        assert summary["rows"] == len(headless_trace.failures)
        store = open_store(tmp_path / "store")
        assert len(store.log()) == len(headless_trace.failures)


class TestCrossProcessDeterminism:
    def test_replay_is_hash_seed_independent(self, tmp_path):
        # Record under one PYTHONHASHSEED, replay under another: any
        # dict/set iteration-order dependence in the sim or the codec
        # shows up as a divergence.  (CI repeats this across Python
        # versions; here we cross processes only.)
        trace_path = tmp_path / "run.jsonl"
        env = {
            **os.environ,
            "PYTHONPATH": str(REPO_ROOT / "src"),
            "PYTHONHASHSEED": "1",
        }
        record = subprocess.run(
            [
                sys.executable, "-m", "repro.cli", "trace", "record",
                "--machine", "tsubame2", "--seed", "5",
                "--horizon", "300", "--out", str(trace_path),
            ],
            env=env, capture_output=True, text=True,
        )
        assert record.returncode == 0, record.stderr
        env["PYTHONHASHSEED"] = "2"
        verify = subprocess.run(
            [
                sys.executable, "-m", "repro.cli",
                "trace", "replay", str(trace_path),
            ],
            env=env, capture_output=True, text=True,
        )
        assert verify.returncode == 0, (
            verify.stdout + verify.stderr
        )
        assert "bit-exact" in verify.stdout
